"""Simulation-as-a-service: HTTP submission/query server over the store.

The service turns the repo's batch experiment machinery into a
long-running process: clients POST :class:`~repro.orchestration.spec.RunSpec`
or :class:`~repro.orchestration.spec.SweepGrid` payloads, identical
cells are deduplicated across concurrent clients by spec content hash,
execution happens through :class:`~repro.orchestration.pool.ExperimentPool`
on a background worker, and results are served straight from the shared
:class:`~repro.results.store.ResultStore` (one writer, many read-only
readers; see that module's concurrency notes).

Layers:

* :mod:`repro.service.http` — zero-dependency asyncio HTTP/1.1 core;
* :mod:`repro.service.jobs` — HTTP-free job manager (dedup registry,
  FIFO worker, progress events);
* :mod:`repro.service.app` — routes + request enveloping, and the
  blocking :func:`serve` entry point used by ``repro serve``;
* :mod:`repro.service.client` — stdlib client used by ``repro submit``
  / ``repro jobs`` and the end-to-end tests.
"""

from repro.service.app import ServiceApp, serve
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager

__all__ = [
    "Job",
    "JobManager",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "serve",
]
