"""Job submission, deduplication and background execution.

This is the service's engine room, deliberately HTTP-free (plain
threads + condition variables) so the whole submission lifecycle is
testable without a socket:

* a **cell registry** maps spec content hashes to in-flight/completed
  cells.  Two clients submitting the identical :class:`RunSpec` —
  concurrently or seconds apart — share one cell: the first submission
  *owns* it (its job executes the cell), every later submission
  attaches as a waiter.  That is the multi-tenant dedup story: one
  computation, many subscribers;
* a single **worker thread** drains submitted jobs FIFO and executes
  each job's owned cells through an
  :class:`~repro.orchestration.pool.ExperimentPool` bound to the
  service's result store — so a cell already in the store is satisfied
  without simulating (``source="store"``), and everything the worker
  computes is committed incrementally.  The pool (and with it the one
  writable SQLite connection) is created *inside* the worker thread:
  the worker is the store's single writer, HTTP readers open their own
  read-only connections;
* every state change appends a structured **event** to each waiting
  job (``job_queued``, ``job_started``, ``cell_completed``,
  ``cell_failed``, ``job_completed``) with a per-job sequence number —
  the NDJSON feed streams exactly this list.

Because the worker is single-threaded and jobs are FIFO, a job's
shared cells (owned by an earlier job) are always resolved by the time
its own turn comes; job finalization never blocks on another job.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import RunResult
from repro.orchestration.pool import ExperimentPool
from repro.orchestration.spec import RunSpec
from repro.results.store import ResultStore
from repro.util.logging import get_logger, log_context

__all__ = ["Job", "JobManager"]

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class _Cell:
    """One unique spec's lifecycle, shared by every job that names it."""

    spec: RunSpec
    spec_hash: str
    status: str = "pending"  # pending | done | failed
    source: Optional[str] = None  # "store" | "executed" once done
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Ids of every job (owner first) subscribed to this cell.
    job_ids: List[str] = field(default_factory=list)


@dataclass
class Job:
    """One submission: an ordered set of unique cells plus its events."""

    job_id: str
    request_id: Optional[str]
    cell_hashes: List[str]
    owned_hashes: List[str]
    created_at: float = field(default_factory=time.time)
    state: str = "queued"
    error: Optional[str] = None
    #: ``(index, count)`` when this job is one shard of a larger grid.
    shard: Optional[Tuple[int, int]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)

    def add_event(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event to the job's bounded event log."""
        record: Dict[str, Any] = {
            "seq": len(self.events),
            "ts": time.time(),
            "job_id": self.job_id,
            "event": event,
        }
        record.update(fields)
        self.events.append(record)
        return record


class JobManager:
    """The cell registry + FIFO worker behind the HTTP service.

    Parameters
    ----------
    store_path:
        The SQLite result store file; created (and WAL-audited) on
        construction so read-only request connections can open it
        immediately.
    workers / batch_size:
        Forwarded to the worker's :class:`ExperimentPool` (process
        fan-out within a job, seed-batching on batch engines).
    """

    def __init__(
        self,
        store_path: str,
        workers: int = 1,
        batch_size: int = 16,
    ):
        self.store_path = str(store_path)
        self.workers = int(workers)
        self.batch_size = int(batch_size)
        self._log = get_logger("jobs")
        # Create/upgrade the store file eagerly and audit its journal
        # mode: the one-writer/many-readers contract relies on WAL.
        with ResultStore(self.store_path) as store:
            self.journal_mode = store.journal_mode
        if self.journal_mode != "wal":
            raise RuntimeError(
                f"store {self.store_path} is in journal mode "
                f"{self.journal_mode!r}; the service requires WAL for "
                f"concurrent readers"
            )
        self._condition = threading.Condition()
        self._cells: Dict[str, _Cell] = {}
        self._jobs: Dict[str, Job] = {}
        self._queue: Deque[str] = deque()
        self._owned_specs: Dict[str, List[RunSpec]] = {}
        self._pool: Optional[ExperimentPool] = None
        self._worker: Optional[threading.Thread] = None
        self._stopping = False
        self._job_counter = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the background worker thread (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._stopping = False
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-job-worker", daemon=True
        )
        self._worker.start()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the worker after the in-flight job (idempotent)."""
        with self._condition:
            self._stopping = True
            self._condition.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=timeout)
            self._worker = None

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        specs: Sequence[RunSpec],
        request_id: Optional[str] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> str:
        """Register a job for the given specs; returns its job id.

        Duplicate specs within the submission collapse to one cell;
        cells already known to the registry (in flight or completed)
        are *shared*, not re-executed.  ``shard=(index, count)`` tags
        the job as one shard of a larger grid — the caller is expected
        to have partitioned the specs already (the HTTP layer applies
        :meth:`SweepGrid.shard` before calling here), so the tag is
        bookkeeping that surfaces in ``describe`` and the event feed.
        """
        if not specs:
            raise ValueError("a job needs at least one spec")
        if shard is not None:
            index, count = shard
            if not 0 <= index < count:
                raise ValueError(
                    f"shard index {index} out of range for count {count}"
                )
        with self._condition:
            self._job_counter += 1
            job_id = f"job-{self._job_counter:06d}"
            cell_hashes: List[str] = []
            owned: List[RunSpec] = []
            owned_hashes: List[str] = []
            shared = 0
            for spec in specs:
                spec_hash = spec.spec_hash()
                if spec_hash in cell_hashes:
                    continue  # duplicate within this submission
                cell_hashes.append(spec_hash)
                cell = self._cells.get(spec_hash)
                if cell is None or cell.status == "failed":
                    # Failed cells are retryable: a resubmission owns a
                    # fresh cell instead of inheriting the stale error.
                    cell = _Cell(spec=spec, spec_hash=spec_hash)
                    self._cells[spec_hash] = cell
                    owned.append(spec)
                    owned_hashes.append(spec_hash)
                else:
                    shared += 1
                cell.job_ids.append(job_id)
            job = Job(
                job_id=job_id,
                request_id=request_id,
                cell_hashes=cell_hashes,
                owned_hashes=owned_hashes,
                shard=shard,
            )
            queued_fields: Dict[str, Any] = {
                "cells": len(cell_hashes),
                "owned": len(owned),
                "shared": shared,
            }
            if shard is not None:
                queued_fields["shard"] = f"{shard[0]}/{shard[1]}"
            job.add_event("job_queued", **queued_fields)
            # Cells that completed before this job arrived surface as
            # immediate events, so a late subscriber still sees every
            # cell exactly once in its feed.
            for spec_hash in cell_hashes:
                cell = self._cells[spec_hash]
                if cell.status == "done":
                    job.add_event(
                        "cell_completed",
                        spec_hash=spec_hash,
                        source=cell.source,
                        label=cell.spec.label(),
                    )
            self._jobs[job_id] = job
            self._owned_specs[job_id] = owned
            self._queue.append(job_id)
            self._condition.notify_all()
            self._log.info(
                "job_submitted",
                job_id=job_id,
                cells=len(cell_hashes),
                owned=len(owned),
                shared=shared,
                shard=None if shard is None else f"{shard[0]}/{shard[1]}",
            )
            return job_id

    # -- views (all thread-safe snapshots) ----------------------------------

    def describe(self, job_id: str, include_cells: bool = True) -> Dict[str, Any]:
        """A JSON-ready snapshot of one job (raises ``KeyError``)."""
        with self._condition:
            job = self._jobs[job_id]
            cells = [self._cells[h] for h in job.cell_hashes]
            counts = {
                "total": len(cells),
                "done": sum(c.status == "done" for c in cells),
                "failed": sum(c.status == "failed" for c in cells),
                "pending": sum(c.status == "pending" for c in cells),
                "from_store": sum(c.source == "store" for c in cells),
                "executed": sum(c.source == "executed" for c in cells),
                "shared": len(job.cell_hashes) - len(job.owned_hashes),
            }
            view: Dict[str, Any] = {
                "job_id": job.job_id,
                "state": job.state,
                "request_id": job.request_id,
                "created_at": job.created_at,
                "counts": counts,
                "error": job.error,
                "shard": (
                    None
                    if job.shard is None
                    else {"index": job.shard[0], "count": job.shard[1]}
                ),
            }
            if include_cells:
                view["cells"] = [
                    {
                        "spec_hash": cell.spec_hash,
                        "label": cell.spec.label(),
                        "status": cell.status,
                        "source": cell.source,
                        "error": cell.error,
                    }
                    for cell in cells
                ]
            return view

    def jobs(self) -> List[Dict[str, Any]]:
        """Summaries of every known job, oldest first."""
        with self._condition:
            ids = list(self._jobs)
        return [self.describe(job_id, include_cells=False) for job_id in ids]

    def job_results(self, job_id: str, full: bool = False) -> List[Dict[str, Any]]:
        """Completed cells of a job: spec + summary (+ full payload)."""
        with self._condition:
            job = self._jobs[job_id]
            out = []
            for spec_hash in job.cell_hashes:
                cell = self._cells[spec_hash]
                if cell.status != "done" or cell.payload is None:
                    continue
                entry: Dict[str, Any] = {
                    "spec_hash": spec_hash,
                    "label": cell.spec.label(),
                    "source": cell.source,
                    "spec": cell.spec.to_dict(),
                    "summary": dict(cell.payload.get("summary") or {}),
                }
                if full:
                    entry["result"] = cell.payload
                out.append(entry)
            return out

    def events_since(self, job_id: str, start: int) -> tuple:
        """``(new events, job is terminal)`` from sequence ``start``."""
        with self._condition:
            job = self._jobs[job_id]
            return (
                list(job.events[start:]),
                job.state in ("done", "failed"),
            )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; True if it finished in time."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                job = self._jobs[job_id]
                if job.state in ("done", "failed"):
                    return True
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._condition.wait(timeout=remaining)

    def stats(self) -> Dict[str, int]:
        """Cumulative pool stats: unique cells executed vs store-served."""
        pool = self._pool
        with self._condition:
            jobs = len(self._jobs)
            cells = len(self._cells)
        return {
            "executed": 0 if pool is None else pool.stats.executed,
            "cache_hits": 0 if pool is None else pool.stats.cache_hits,
            "jobs": jobs,
            "cells": cells,
        }

    # -- worker -------------------------------------------------------------

    def _ensure_pool(self) -> ExperimentPool:
        # Created lazily inside the worker thread: this pool's store
        # connection is the service's single writer.
        if self._pool is None:
            self._pool = ExperimentPool(
                workers=self.workers,
                store=self.store_path,
                batch_size=self.batch_size,
            )
        return self._pool

    def _worker_loop(self) -> None:
        while True:
            with self._condition:
                while not self._queue and not self._stopping:
                    self._condition.wait()
                if self._stopping and not self._queue:
                    return
                job_id = self._queue.popleft()
                job = self._jobs[job_id]
                owned = self._owned_specs.pop(job_id, [])
                job.state = "running"
                job.add_event("job_started", owned=len(owned))
                self._condition.notify_all()
            with log_context(job_id=job_id, request_id=job.request_id):
                self._log.info("job_started", owned=len(owned))
                error: Optional[BaseException] = None
                if owned:
                    try:
                        self._ensure_pool().run(owned, on_cell=self._on_cell)
                    except BaseException as exc:  # noqa: BLE001 - reported on the job
                        error = exc
                self._finalize(job_id, error)

    def _on_cell(self, spec: RunSpec, result: RunResult, source: str) -> None:
        """Pool callback (worker thread): fan one completed cell out."""
        spec_hash = spec.spec_hash()
        with self._condition:
            cell = self._cells[spec_hash]
            cell.status = "done"
            cell.source = source
            cell.payload = result.to_dict()
            for job_id in cell.job_ids:
                job = self._jobs.get(job_id)
                if job is not None:
                    job.add_event(
                        "cell_completed",
                        spec_hash=spec_hash,
                        source=source,
                        label=spec.label(),
                    )
            self._condition.notify_all()
        self._log.info(
            "cell_completed", spec_hash=spec_hash, source=source,
            label=spec.label(),
        )

    def _finalize(self, job_id: str, error: Optional[BaseException]) -> None:
        with self._condition:
            job = self._jobs[job_id]
            if error is not None:
                # Owned cells the pool never completed carry the error;
                # completed ones keep their results.
                for spec_hash in job.owned_hashes:
                    cell = self._cells[spec_hash]
                    if cell.status == "pending":
                        cell.status = "failed"
                        cell.error = str(error)
                        for waiter_id in cell.job_ids:
                            waiter = self._jobs.get(waiter_id)
                            if waiter is not None:
                                waiter.add_event(
                                    "cell_failed",
                                    spec_hash=spec_hash,
                                    error=str(error),
                                )
                job.error = str(error)
            cells = [self._cells[h] for h in job.cell_hashes]
            failed = sum(c.status == "failed" for c in cells)
            job.state = "failed" if failed else "done"
            job.add_event(
                "job_completed",
                state=job.state,
                done=sum(c.status == "done" for c in cells),
                failed=failed,
                from_store=sum(c.source == "store" for c in cells),
                executed=sum(c.source == "executed" for c in cells),
            )
            self._condition.notify_all()
        if error is not None:
            self._log.error("job_failed", error=str(error))
        else:
            self._log.info("job_completed", state=job.state)
