"""A zero-dependency asyncio HTTP/1.1 micro-core.

The simulation service needs exactly four things from an HTTP layer:
parse a request, route it by method + path template, serialize a JSON
response, and stream NDJSON progress lines.  Pulling in a framework
for that would add the repo's first hard web dependency, so this
module implements the minimal core on ``asyncio.start_server``:

* one request per connection (``Connection: close``) — no keep-alive
  state machine to get wrong; clients of a result server poll, they
  don't pipeline;
* request bodies are read by ``Content-Length`` (chunked request
  bodies are rejected with 501) and capped at
  :data:`MAX_BODY_BYTES`;
* responses either carry a ``Content-Length`` (JSON/plain bodies) or
  stream an async iterator of byte chunks and delimit by closing the
  connection — which is exactly the shape an NDJSON event feed wants;
* routes are declared as ``(method, "/jobs/{job_id}/events")``
  templates; ``{name}`` segments are captured into
  ``request.path_params``.

Handlers are ``async def handler(request) -> Response``.  Anything
they raise is turned into a structured-logged 500 carrying the request
id; malformed requests get a 400 without reaching a handler.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
)
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpServer",
    "MAX_BODY_BYTES",
    "Request",
    "Response",
    "Router",
]

#: Largest accepted request body; a sweep-grid submission is a few KB.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Largest accepted request line / header line.
_MAX_LINE = 16 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class HttpError(Exception):
    """Raise from a handler to produce a clean JSON error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""
    path_params: Dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        """The body decoded as JSON (400 on syntax errors)."""
        if not self.body:
            raise HttpError(400, "request body is empty; expected JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """A query-string parameter (last occurrence wins)."""
        return self.query.get(name, default)


@dataclass
class Response:
    """An HTTP response: a sized body, or a streamed chunk iterator."""

    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    #: When set, the response streams these chunks and is delimited by
    #: connection close (``body`` is ignored).
    stream: Optional[AsyncIterator[bytes]] = None

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        """A JSON response (sorted keys, trailing newline for curl)."""
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        merged = {"Content-Type": "application/json; charset=utf-8"}
        merged.update(headers or {})
        return cls(status=status, headers=merged, body=body)

    @classmethod
    def ndjson(cls, chunks: AsyncIterator[bytes]) -> "Response":
        """A streamed NDJSON response (close-delimited)."""
        return cls(
            status=200,
            headers={"Content-Type": "application/x-ndjson; charset=utf-8"},
            stream=chunks,
        )


Handler = Callable[[Request], Awaitable[Response]]


class Router:
    """Method + path-template dispatch (``{name}`` captures a segment)."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        """Register a handler for a method and path template."""
        parts = tuple(template.strip("/").split("/")) if template.strip("/") else ()
        self._routes.append((method.upper(), parts, handler))

    def match(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Dict[str, str], bool]:
        """Resolve ``(handler, path_params, path_known)``.

        ``path_known`` distinguishes a 404 (no route shape matches)
        from a 405 (the path exists under another method).
        """
        segments = tuple(path.strip("/").split("/")) if path.strip("/") else ()
        path_known = False
        for route_method, parts, handler in self._routes:
            if len(parts) != len(segments):
                continue
            params: Dict[str, str] = {}
            for part, segment in zip(parts, segments):
                if part.startswith("{") and part.endswith("}"):
                    params[part[1:-1]] = unquote(segment)
                elif part != segment:
                    break
            else:
                path_known = True
                if route_method == method.upper():
                    return handler, params, True
        return None, {}, path_known


class HttpServer:
    """The asyncio server loop around a :class:`Router`.

    ``port=0`` binds an ephemeral port; read the actual one from
    :attr:`port` after :meth:`start`.  ``on_request`` (when given)
    wraps every dispatch — the application layer uses it to assign
    request ids, log, and envelope errors.
    """

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 0,
        on_request: Optional[Callable[[Request, Handler], Awaitable[Response]]] = None,
    ):
        self.router = router
        self.host = host
        self.port = port
        self.on_request = on_request
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Serve requests until cancelled."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Close the listening socket and connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await self._read_request(reader)
            except HttpError as error:
                await self._write_response(
                    writer,
                    Response.json({"error": error.message}, error.status),
                )
                return
            if request is None:
                return  # client closed without sending a request
            response = await self._dispatch(request)
            await self._write_response(writer, response)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(self, request: Request) -> Response:
        handler, params, path_known = self.router.match(
            request.method, request.path
        )
        if handler is None:
            status = 405 if path_known else 404
            return Response.json(
                {"error": f"{_REASONS[status].lower()}: "
                          f"{request.method} {request.path}"},
                status,
            )
        request.path_params = params
        if self.on_request is not None:
            return await self.on_request(request, handler)
        try:
            return await handler(request)
        except HttpError as error:
            return Response.json({"error": error.message}, error.status)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Request]:
        line = await reader.readline()
        if not line.strip():
            return None
        if len(line) > _MAX_LINE:
            raise HttpError(400, "request line too long")
        try:
            method, target, _version = line.decode("latin-1").split(None, 2)
        except ValueError:
            raise HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if len(line) > _MAX_LINE:
                raise HttpError(400, "header line too long")
            if not line or line in (b"\r\n", b"\n"):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        if "chunked" in headers.get("transfer-encoding", "").lower():
            raise HttpError(501, "chunked request bodies are not supported")
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise HttpError(400, "malformed Content-Length")
            if length < 0 or length > MAX_BODY_BYTES:
                raise HttpError(
                    413, f"request body exceeds {MAX_BODY_BYTES} bytes"
                )
            body = await reader.readexactly(length)
        split = urlsplit(target)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        return Request(
            method=method.upper(),
            path=unquote(split.path) or "/",
            query=query,
            headers=headers,
            body=body,
        )

    async def _write_response(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        headers = dict(response.headers)
        headers.setdefault("Connection", "close")
        if response.stream is None:
            headers.setdefault("Content-Length", str(len(response.body)))
        head_lines = [f"HTTP/1.1 {response.status} {reason}"]
        head_lines += [f"{name}: {value}" for name, value in headers.items()]
        writer.write(("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1"))
        if response.stream is None:
            writer.write(response.body)
            await writer.drain()
            return
        async for chunk in response.stream:
            writer.write(chunk)
            await writer.drain()
