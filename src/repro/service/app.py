"""The simulation service application: routes over store + jobs.

Endpoints (all responses are JSON carrying ``api_version`` and
``request_id``; see the README "Serving results" section for the
schema of each):

========  ==============================  =====================================
GET       ``/healthz``                    liveness + store + cumulative stats
GET       ``/api``                        API version and endpoint map
POST      ``/jobs``                       submit a ``RunSpec`` / ``SweepGrid``
GET       ``/jobs``                       list jobs
GET       ``/jobs/{job_id}``              poll one job (``?wait=SECONDS``)
GET       ``/jobs/{job_id}/events``       NDJSON event stream (``?follow=0``)
GET       ``/jobs/{job_id}/results``      completed cells (``?full=1``)
GET       ``/results/query``              filter stored cells by spec axes
GET       ``/results/aggregate``          mean/std/ci95 across store groups
GET       ``/results/{hash_prefix}``      one stored cell by hash prefix
========  ==============================  =====================================

Submission body: ``{"spec": {...}}`` (one ``RunSpec.to_dict`` form),
``{"specs": [...]}`` or ``{"grid": {...}}`` (``SweepGrid.from_dict``
form).  A grid submission may add ``"shard": "i/N"`` (or ``[i, N]``)
to submit only that deterministic shard of the grid — the same
partition ``repro sweep --shard`` computes — so N clients can split
one grid and the registry still deduplicates any overlap.  Identical
cells are deduplicated across jobs and clients by spec content hash —
the cell registry shares one computation — and cells already in the
store are served without simulating.

Concurrency contract: the job worker owns the single writable store
connection; every query endpoint opens a fresh **read-only** SQLite
connection for the duration of the request, so readers never block the
writer (WAL) and physically cannot corrupt the store.

Every request gets a ``request_id`` bound into the structured-log
context, so each log line of a request (and of the jobs it submitted)
is attributable.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import secrets
import sqlite3
from typing import Any, Dict, List, Optional

from repro.api import API_VERSION
from repro.orchestration.spec import (
    SPEC_SCHEMA_VERSION,
    RunSpec,
    SweepGrid,
    parse_shard,
)
from repro.results.aggregate import AXES, DEFAULT_METRICS, aggregate
from repro.results.store import ResultStore
from repro.service.http import Handler, HttpError, HttpServer, Request, Response, Router
from repro.service.jobs import JobManager
from repro.util.logging import context_fields, get_logger, log_context

__all__ = ["ServiceApp", "serve"]

_request_counter = itertools.count(1)


def _new_request_id() -> str:
    return f"req-{next(_request_counter):06d}-{secrets.token_hex(3)}"


class ServiceApp:
    """Routes + handlers bound to one :class:`JobManager` and store."""

    def __init__(
        self,
        store_path: str,
        workers: int = 1,
        batch_size: int = 16,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.store_path = str(store_path)
        self.manager = JobManager(
            self.store_path, workers=workers, batch_size=batch_size
        )
        self._log = get_logger("service")
        router = Router()
        router.add("GET", "/healthz", self.healthz)
        router.add("GET", "/api", self.api_info)
        router.add("POST", "/jobs", self.submit_job)
        router.add("GET", "/jobs", self.list_jobs)
        router.add("GET", "/jobs/{job_id}", self.get_job)
        router.add("GET", "/jobs/{job_id}/events", self.job_events)
        router.add("GET", "/jobs/{job_id}/results", self.job_results)
        router.add("GET", "/results/query", self.results_query)
        router.add("GET", "/results/aggregate", self.results_aggregate)
        router.add("GET", "/results/changepoints", self.results_changepoints)
        router.add("GET", "/results/{hash_prefix}", self.results_get)
        self.server = HttpServer(
            router, host=host, port=port, on_request=self._wrap_request
        )

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Start the job worker and bind the listening socket."""
        self.manager.start()
        await self.server.start()
        self._log.info(
            "service_started",
            host=self.server.host,
            port=self.server.port,
            store=self.store_path,
            journal_mode=self.manager.journal_mode,
            api_version=API_VERSION,
        )

    async def serve_forever(self) -> None:
        """Serve requests until cancelled."""
        await self.server.serve_forever()

    async def close(self) -> None:
        """Stop the server and the job worker."""
        await self.server.close()
        self.manager.stop()
        self._log.info("service_stopped")

    @property
    def port(self) -> int:
        """The bound listening port."""
        return self.server.port

    # -- request plumbing ---------------------------------------------------

    async def _wrap_request(self, request: Request, handler: Handler) -> Response:
        """Assign a request id, log, and envelope handler errors."""
        request_id = request.headers.get("x-request-id") or _new_request_id()
        with log_context(request_id=request_id):
            self._log.info(
                "request_received", method=request.method, path=request.path
            )
            try:
                response = await handler(request)
            except HttpError as error:
                response = Response.json(
                    self._envelope({"error": error.message}, request_id),
                    error.status,
                )
            except Exception as error:  # noqa: BLE001 - becomes a 500
                self._log.error(
                    "request_crashed",
                    method=request.method,
                    path=request.path,
                    error=f"{type(error).__name__}: {error}",
                )
                response = Response.json(
                    self._envelope(
                        {"error": f"internal error ({type(error).__name__})"},
                        request_id,
                    ),
                    500,
                )
            response.headers.setdefault("X-Request-Id", request_id)
            self._log.info(
                "request_completed",
                method=request.method,
                path=request.path,
                status=response.status,
            )
            return response

    @staticmethod
    def _envelope(payload: Dict[str, Any], request_id: str) -> Dict[str, Any]:
        """The versioned response envelope every endpoint shares."""
        merged = {"api_version": API_VERSION, "request_id": request_id}
        merged.update(payload)
        return merged

    def _respond(
        self, request: Request, payload: Dict[str, Any], status: int = 200
    ) -> Response:
        request_id = context_fields().get("request_id") or _new_request_id()
        return Response.json(self._envelope(payload, request_id), status)

    def _reader(self) -> Optional[ResultStore]:
        """A fresh read-only store connection (None if unreadable)."""
        try:
            return ResultStore(self.store_path, read_only=True)
        except (ValueError, sqlite3.OperationalError):
            return None

    # -- handlers: service --------------------------------------------------

    async def healthz(self, request: Request) -> Response:
        """Liveness: store view, journal mode, cumulative stats."""
        store_view: Dict[str, Any] = {
            "path": self.store_path,
            "rows": 0,
            "layout_version": None,
            "spec_schema_version": SPEC_SCHEMA_VERSION,
        }
        reader = self._reader()
        if reader is not None:
            with reader:
                store_view["rows"] = len(reader)
                store_view["layout_version"] = reader.layout_version
        return self._respond(
            request,
            {
                "status": "ok",
                "store": store_view,
                "journal_mode": self.manager.journal_mode,
                "stats": self.manager.stats(),
            },
        )

    async def api_info(self, request: Request) -> Response:
        """Describe the endpoint surface and server versions."""
        from repro.api import package_version

        return self._respond(
            request,
            {
                "package_version": package_version(),
                "endpoints": {
                    "GET /healthz": "liveness + cumulative stats",
                    "POST /jobs": "submit {'spec': ...} | {'specs': [...]} "
                                  "| {'grid': ..., 'shard': 'i/N'?}",
                    "GET /jobs": "list jobs",
                    "GET /jobs/{job_id}": "poll one job (?wait=SECONDS)",
                    "GET /jobs/{job_id}/events": "NDJSON events (?follow=0)",
                    "GET /jobs/{job_id}/results": "completed cells (?full=1)",
                    "GET /results/query": "filter stored cells by spec axes",
                    "GET /results/aggregate": "grouped mean/std/ci95",
                    "GET /results/changepoints": "CUSUM stability verdicts "
                                                 "per cell",
                    "GET /results/{hash_prefix}": "one stored cell",
                },
            },
        )

    # -- handlers: jobs -----------------------------------------------------

    @staticmethod
    def _parse_shard_field(value: Any) -> "tuple[int, int]":
        """``"i/N"`` or ``[i, N]`` → validated ``(index, count)``."""
        if isinstance(value, str):
            return parse_shard(value)
        if (
            isinstance(value, (list, tuple))
            and len(value) == 2
            and all(isinstance(item, int) for item in value)
        ):
            return parse_shard(f"{value[0]}/{value[1]}")
        raise ValueError(
            f"malformed shard {value!r}; expected 'INDEX/COUNT' or "
            f"[index, count]"
        )

    def _parse_submission(
        self, payload: Any
    ) -> "tuple[List[RunSpec], Optional[tuple[int, int]]]":
        if not isinstance(payload, dict):
            raise HttpError(400, "submission body must be a JSON object")
        keys = [k for k in ("spec", "specs", "grid") if k in payload]
        if len(keys) != 1:
            raise HttpError(
                400,
                "submission must carry exactly one of 'spec', 'specs' "
                "or 'grid'",
            )
        key = keys[0]
        if "shard" in payload and key != "grid":
            raise HttpError(
                400, "'shard' is only valid on a 'grid' submission"
            )
        try:
            if key == "spec":
                return [RunSpec.from_dict(payload["spec"])], None
            if key == "specs":
                entries = payload["specs"]
                if not isinstance(entries, list) or not entries:
                    raise ValueError("'specs' must be a non-empty list")
                return [RunSpec.from_dict(e) for e in entries], None
            grid = SweepGrid.from_dict(payload["grid"])
            if "shard" not in payload:
                return list(grid.specs()), None
            shard = self._parse_shard_field(payload["shard"])
            specs = list(grid.shard(*shard))
            if not specs:
                raise ValueError(
                    f"shard {shard[0]}/{shard[1]} of this grid is empty "
                    f"({len(grid)} cells across {shard[1]} shards)"
                )
            return specs, shard
        except HttpError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise HttpError(400, f"invalid {key!r} submission: {error}")

    async def submit_job(self, request: Request) -> Response:
        """Accept a spec/grid submission and enqueue a job."""
        specs, shard = self._parse_submission(request.json())
        request_id = context_fields().get("request_id")
        job_id = self.manager.submit(
            specs, request_id=request_id, shard=shard
        )
        return self._respond(
            request, {"job": self.manager.describe(job_id)}, status=202
        )

    async def list_jobs(self, request: Request) -> Response:
        """List every job the manager knows about."""
        return self._respond(request, {"jobs": self.manager.jobs()})

    def _job_or_404(self, job_id: str) -> None:
        try:
            self.manager.describe(job_id, include_cells=False)
        except KeyError:
            raise HttpError(404, f"unknown job {job_id!r}")

    async def get_job(self, request: Request) -> Response:
        """Poll one job (``?wait=SECONDS`` blocks until terminal)."""
        job_id = request.path_params["job_id"]
        self._job_or_404(job_id)
        wait = request.param("wait")
        if wait is not None:
            try:
                timeout = min(float(wait), 300.0)
            except ValueError:
                raise HttpError(400, f"malformed wait={wait!r}")
            # Block in a thread so the event loop keeps serving.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.manager.wait(job_id, timeout=timeout)
            )
        return self._respond(request, {"job": self.manager.describe(job_id)})

    async def job_events(self, request: Request) -> Response:
        """Stream a job's recorded events as NDJSON."""
        job_id = request.path_params["job_id"]
        self._job_or_404(job_id)
        follow = request.param("follow", "1") not in ("0", "false", "no")
        manager = self.manager

        async def stream():
            """Yield the event payloads (NDJSON body generator)."""
            seq = 0
            while True:
                events, terminal = manager.events_since(job_id, seq)
                for event in events:
                    yield (json.dumps(event) + "\n").encode("utf-8")
                seq += len(events)
                if terminal or not follow:
                    return
                await asyncio.sleep(0.05)

        return Response.ndjson(stream())

    async def job_results(self, request: Request) -> Response:
        """Completed cells of one job (``?full=1`` embeds results)."""
        job_id = request.path_params["job_id"]
        self._job_or_404(job_id)
        full = request.param("full", "0") not in ("0", "false", "no")
        return self._respond(
            request,
            {
                "job_id": job_id,
                "results": self.manager.job_results(job_id, full=full),
            },
        )

    # -- handlers: stored results ------------------------------------------

    _QUERY_FILTERS = ("pattern", "controller", "engine", "seed", "delay_mode")

    def _store_filters(self, request: Request) -> Dict[str, Any]:
        filters: Dict[str, Any] = {}
        for name in self._QUERY_FILTERS:
            value = request.param(name)
            if value is None:
                continue
            if name == "seed":
                try:
                    filters[name] = int(value)
                except ValueError:
                    raise HttpError(400, f"malformed seed={value!r}")
            else:
                filters[name] = value
        return filters

    async def results_query(self, request: Request) -> Response:
        """Filter stored cells by spec axes."""
        filters = self._store_filters(request)
        limit_text = request.param("limit")
        try:
            limit = None if limit_text is None else max(int(limit_text), 0)
        except ValueError:
            raise HttpError(400, f"malformed limit={limit_text!r}")
        reader = self._reader()
        if reader is None:
            return self._respond(request, {"rows": [], "total": 0})
        with reader:
            records = reader.query(**filters)
        rows = [
            {
                "spec_hash": record.spec_hash,
                "label": record.spec.label(),
                "pattern": record.spec.pattern,
                "controller": record.spec.controller,
                "engine": record.spec.engine,
                "seed": record.spec.seed,
                "duration": record.spec.duration,
                "scenario_name": record.result.scenario_name,
                "summary": record.result.summary.to_dict(),
            }
            for record in (
                records if limit is None else records[:limit]
            )
        ]
        return self._respond(
            request, {"rows": rows, "total": len(records)}
        )

    async def results_aggregate(self, request: Request) -> Response:
        """Grouped mean/std/ci95 over stored cells."""
        by_text = request.param("by", "pattern,controller,engine")
        by = tuple(axis.strip() for axis in by_text.split(",") if axis.strip())
        unknown = [axis for axis in by if axis not in AXES]
        if unknown:
            raise HttpError(
                400, f"unknown aggregation axes {unknown}; known: {sorted(AXES)}"
            )
        metrics_text = request.param("metrics")
        metrics = (
            DEFAULT_METRICS
            if metrics_text is None
            else tuple(m.strip() for m in metrics_text.split(",") if m.strip())
        )
        filters = self._store_filters(request)
        reader = self._reader()
        if reader is None:
            return self._respond(request, {"rows": [], "cells": 0})
        with reader:
            records = reader.query(**filters)
        try:
            rows = aggregate(
                records, by=by, metrics=metrics, on_mixed_delay_mode="split"
            )
        except (AttributeError, ValueError) as error:
            raise HttpError(400, f"aggregate failed: {error}")
        return self._respond(
            request, {"rows": rows, "cells": len(records), "by": list(by)}
        )

    #: ``GET /results/changepoints`` float/int tuning parameters mapped
    #: onto :class:`repro.analysis.AnalysisOptions` fields.
    _ANALYSIS_PARAMS = (
        ("warmup_fraction", "warmup_fraction", float),
        ("min_points", "min_points", int),
        ("min_shift", "min_shift_per_series", float),
        ("quantile", "quantile", float),
        ("permutations", "n_permutations", int),
        ("block", "block_length", int),
        ("perm_seed", "seed", int),
        ("confidence", "confidence", float),
    )

    async def results_changepoints(self, request: Request) -> Response:
        """CUSUM stability verdicts per stored cell group."""
        from repro.analysis import (
            AnalysisOptions,
            analyze_records,
            verdict_rows,
        )

        overrides: Dict[str, Any] = {}
        for param, field, convert in self._ANALYSIS_PARAMS:
            text = request.param(param)
            if text is None:
                continue
            try:
                overrides[field] = convert(text)
            except ValueError:
                raise HttpError(400, f"malformed {param}={text!r}")
        try:
            options = AnalysisOptions(**overrides)
        except ValueError as error:
            raise HttpError(400, str(error))
        filters = self._store_filters(request)
        reader = self._reader()
        if reader is None:
            return self._respond(request, {"verdicts": [], "cells": 0})
        with reader:
            records = reader.query(**filters)
        verdicts = verdict_rows(analyze_records(records, options=options))
        return self._respond(
            request, {"verdicts": verdicts, "cells": len(verdicts)}
        )

    async def results_get(self, request: Request) -> Response:
        """One stored cell by spec-hash prefix."""
        prefix = request.path_params["hash_prefix"]
        full = request.param("full", "0") not in ("0", "false", "no")
        reader = self._reader()
        if reader is None:
            raise HttpError(404, f"no stored cell matches {prefix!r}")
        with reader:
            matches = reader.find(prefix)
        if not matches:
            raise HttpError(404, f"no stored cell matches {prefix!r}")
        if len(matches) > 1:
            raise HttpError(
                409,
                f"hash prefix {prefix!r} is ambiguous "
                f"({len(matches)} cells)",
            )
        record = matches[0]
        payload: Dict[str, Any] = {
            "spec_hash": record.spec_hash,
            "label": record.spec.label(),
            "spec": record.spec.to_dict(),
            "summary": record.result.summary.to_dict(),
            "created_at": record.created_at,
        }
        if full:
            payload["result"] = record.result.to_dict()
        return self._respond(request, payload)


async def _serve_async(app: ServiceApp) -> None:
    await app.start()
    try:
        await app.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await app.close()


def serve(
    store: str = "results.sqlite",
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 1,
    batch_size: int = 16,
) -> None:
    """Run the simulation service until interrupted (blocking)."""
    app = ServiceApp(
        store, workers=workers, batch_size=batch_size, host=host, port=port
    )
    try:
        asyncio.run(_serve_async(app))
    except KeyboardInterrupt:
        pass
