"""A small stdlib HTTP client for the simulation service.

Used by the ``repro submit`` / ``repro jobs`` CLI commands and by the
end-to-end tests; kept dependency-free (``urllib``) like the server.
Every method returns the decoded JSON envelope (so callers see
``api_version`` and ``request_id``), and :meth:`iter_events` yields
the NDJSON event stream line by line as it arrives.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional
from urllib.error import HTTPError
from urllib.parse import urlencode
from urllib.request import Request as UrlRequest
from urllib.request import urlopen

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response, carrying status and server message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to a running ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing -----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        url = self.base_url + path
        if params:
            url += "?" + urlencode(params)
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = UrlRequest(url, data=data, headers=headers, method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
                message = body.get("error", str(body))
            except (ValueError, UnicodeDecodeError):
                message = error.reason
            raise ServiceError(error.code, str(message)) from None

    # -- endpoints ----------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Fetch ``GET /healthz``."""
        return self._request("GET", "/healthz")

    def api_info(self) -> Dict[str, Any]:
        """Fetch ``GET /api``."""
        return self._request("GET", "/api")

    def submit(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a raw body: ``{"spec"|"specs"|"grid": ...}``."""
        return self._request("POST", "/jobs", payload=body)

    def submit_spec(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one ``RunSpec.to_dict`` payload; returns the job view."""
        return self._request("POST", "/jobs", payload={"spec": spec})

    def submit_specs(self, specs: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Submit a list of run specs as one job."""
        return self._request("POST", "/jobs", payload={"specs": specs})

    def submit_grid(
        self, grid: Dict[str, Any], shard: Optional[str] = None
    ) -> Dict[str, Any]:
        """Submit a ``SweepGrid.from_dict`` payload; returns the job view.

        ``shard="i/N"`` submits only that deterministic shard of the
        grid (the same partition ``repro sweep --shard`` computes).
        """
        payload: Dict[str, Any] = {"grid": grid}
        if shard is not None:
            payload["shard"] = shard
        return self._request("POST", "/jobs", payload=payload)

    def jobs(self) -> Dict[str, Any]:
        """Fetch the job list."""
        return self._request("GET", "/jobs")

    def job(
        self, job_id: str, wait: Optional[float] = None
    ) -> Dict[str, Any]:
        """Fetch one job view (``wait`` blocks until terminal)."""
        params = {} if wait is None else {"wait": wait}
        return self._request("GET", f"/jobs/{job_id}", params=params)

    def job_results(self, job_id: str, full: bool = False) -> Dict[str, Any]:
        """Fetch a job's completed cells."""
        params = {"full": "1"} if full else {}
        return self._request("GET", f"/jobs/{job_id}/results", params=params)

    def iter_events(
        self, job_id: str, follow: bool = True
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's NDJSON events as they stream in."""
        url = f"{self.base_url}/jobs/{job_id}/events"
        if not follow:
            url += "?follow=0"
        # No read timeout while following: the stream idles between
        # cell completions of long simulations.
        timeout = self.timeout if not follow else None
        with urlopen(UrlRequest(url), timeout=timeout) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def query(self, **filters: Any) -> Dict[str, Any]:
        """Filter stored cells by spec axes."""
        return self._request("GET", "/results/query", params=filters)

    def aggregate(
        self,
        by: str = "pattern,controller,engine",
        metrics: Optional[str] = None,
        **filters: Any,
    ) -> Dict[str, Any]:
        """Fetch grouped statistics over stored cells."""
        params: Dict[str, Any] = {"by": by}
        if metrics is not None:
            params["metrics"] = metrics
        params.update(filters)
        return self._request("GET", "/results/aggregate", params=params)

    def result(self, hash_prefix: str, full: bool = False) -> Dict[str, Any]:
        """Fetch one stored cell by hash prefix."""
        params = {"full": "1"} if full else {}
        return self._request(
            "GET", f"/results/{hash_prefix}", params=params
        )
