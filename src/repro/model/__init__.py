"""The CPS-oriented queuing-network model of Section II of the paper.

A signalized intersection is a directed graph: nodes are roads
(incoming ``N_I`` and outgoing ``N_O``), directed links ``L_i^{i'}`` are
legal *movements* between them, and a *control phase* ``c_j`` activates
a compatible subset of movements.  Vehicles queue per movement on
dedicated turning lanes (``q_i^{i'}``), roads have finite capacities
``W_i``, and arrivals are Poisson.

This package contains the pure model — no simulation dynamics and no
control logic.  The mesoscopic engine (:mod:`repro.meso`) animates this
model directly; the microscopic engine (:mod:`repro.micro`) refines it
with continuous-space car-following.
"""

from repro.model.geometry import Direction, TurnType
from repro.model.roads import Road
from repro.model.movements import Movement
from repro.model.phases import Phase, TRANSITION_PHASE_INDEX
from repro.model.intersection import Intersection, build_standard_intersection
from repro.model.conflicts import movements_conflict, phase_conflicts
from repro.model.queues import QueueObservation
from repro.model.arrivals import PoissonArrivals, ArrivalSchedule
from repro.model.network import Network, BOUNDARY

__all__ = [
    "Direction",
    "TurnType",
    "Road",
    "Movement",
    "Phase",
    "TRANSITION_PHASE_INDEX",
    "Intersection",
    "build_standard_intersection",
    "movements_conflict",
    "phase_conflicts",
    "QueueObservation",
    "PoissonArrivals",
    "ArrivalSchedule",
    "Network",
    "BOUNDARY",
]
