"""Exogenous Poisson arrival processes (Sec. II-B).

Vehicles arrive at each entry road following a Poisson process with
rate ``lambda > 0``.  The paper's Table II specifies the *average
inter-arrival time* per entry side and traffic pattern (e.g. 3 s from
the north in Pattern I, i.e. ``lambda = 1/3`` veh/s), and the mixed
pattern concatenates the four patterns over time — hence arrivals are
driven by a piecewise-constant :class:`ArrivalSchedule`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.util.validation import check_non_negative, check_positive

__all__ = ["ArrivalSchedule", "PoissonArrivals"]


@dataclass(frozen=True)
class ArrivalSchedule:
    """A piecewise-constant arrival-rate profile.

    ``segments`` is a sequence of ``(start_time, rate)`` pairs with
    strictly increasing start times; the first segment must start at
    0.  The rate of the last segment extends to infinity.
    """

    segments: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("schedule needs at least one segment")
        if self.segments[0][0] != 0.0:
            raise ValueError(
                f"first segment must start at t=0, got {self.segments[0][0]}"
            )
        previous = -1.0
        for start, rate in self.segments:
            if start <= previous:
                raise ValueError("segment start times must strictly increase")
            check_non_negative("rate", rate)
            previous = start
        # Precomputed lookup tables (the schedule is frozen): segment
        # start times and, aligned with them, each segment's end.
        starts = tuple(start for start, _ in self.segments)
        object.__setattr__(self, "_starts", starts)
        object.__setattr__(self, "_ends", starts[1:] + (float("inf"),))

    @classmethod
    def constant(cls, rate: float) -> "ArrivalSchedule":
        """A single-rate schedule (``rate`` vehicles per second)."""
        check_non_negative("rate", rate)
        return cls(segments=((0.0, float(rate)),))

    @classmethod
    def from_interarrival(cls, mean_interarrival: float) -> "ArrivalSchedule":
        """Schedule from a Table-II style mean inter-arrival time (s)."""
        check_positive("mean_interarrival", mean_interarrival)
        return cls.constant(1.0 / mean_interarrival)

    @classmethod
    def piecewise(
        cls, pieces: Sequence[Tuple[float, float]]
    ) -> "ArrivalSchedule":
        """Schedule from explicit ``(start_time, rate)`` pieces."""
        return cls(segments=tuple((float(t), float(r)) for t, r in pieces))

    def rate_at(self, time: float) -> float:
        """The arrival rate (veh/s) in force at ``time``."""
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        idx = bisect_right(self._starts, time) - 1
        return self.segments[idx][1]

    def expected_count(self, start: float, end: float) -> float:
        """Expected number of arrivals in ``[start, end)``."""
        if end < start:
            raise ValueError(f"end {end} precedes start {start}")
        # Fast path: the whole interval inside one segment (the shape
        # of every per-mini-slot query).  ``rate * (end - start)`` is
        # exactly what the general loop computes for this case.  A
        # pre-horizon start (< 0) takes the general loop, which clips.
        if start >= 0.0:
            idx = bisect_right(self._starts, start) - 1
            if end <= self._ends[idx]:
                return self.segments[idx][1] * (end - start)
        total = 0.0
        for idx, (seg_start, rate) in enumerate(self.segments):
            seg_end = self._ends[idx]
            lo = max(start, seg_start)
            hi = min(end, seg_end)
            if hi > lo:
                total += rate * (hi - lo)
        return total


class PoissonArrivals:
    """Samples Poisson arrival counts and exact arrival times.

    One instance per entry road; each owns a dedicated RNG so arrival
    streams are independent across roads and identical across paired
    controller runs.
    """

    #: Pre-drawn counts per batch; bounds the look-ahead of the stream.
    BATCH_SIZE = 64
    #: Identical-mean calls seen before batching kicks in.  Guards the
    #: pathological case of a caller whose per-call means never repeat
    #: (irregular ``dt`` grids), which would otherwise draw-and-discard.
    BATCH_AFTER = 3

    def __init__(self, schedule: ArrivalSchedule, rng: np.random.Generator):
        self.schedule = schedule
        self._rng = rng
        # Batched-draw state: numpy fills an array with exactly the
        # values repeated scalar calls would produce (verified by
        # tests), so pre-drawing a batch of same-mean counts is
        # bit-identical to drawing one per step — while paying the
        # numpy call overhead once per BATCH_SIZE steps instead of
        # every step.  Batching only engages for binary-exact ``dt``
        # (integers, halves, quarters, ... — every accumulated step
        # time and per-step mean is then float-exact and constant
        # within a segment) and batches never reach a rate-segment
        # boundary, so no pre-drawn value is ever discarded and the
        # sequence provably equals the unbatched one.  Non-dyadic
        # ``dt`` grids (0.1, 0.7, ...) accumulate rounding error that
        # makes per-step means fluctuate in the last ulp; they always
        # take the scalar path, which is the unbatched code itself.
        self._batch: List[int] = []
        self._batch_pos = 0
        self._batch_mean = -1.0
        self._streak_mean = -1.0
        self._streak = 0
        # Cursor into the schedule's segments: queries arrive with
        # (almost always) non-decreasing start times, so remembering
        # the last segment makes the lookup O(1) amortized.
        self._segment_cursor = 0

    def sample_count(self, start: float, dt: float) -> int:
        """``A(k, k+1)`` — arrivals in ``[start, start+dt)``.

        Uses the exact expected count across rate-segment boundaries,
        so the process stays Poisson even when ``[start, start+dt)``
        straddles a pattern change of the mixed schedule.
        """
        if dt <= 0:
            check_positive("dt", dt)
        schedule = self.schedule
        starts = schedule._starts
        ends = schedule._ends
        idx = self._segment_cursor
        if start < starts[idx]:
            idx = 0  # time went backwards (fresh run of a shared schedule)
        while start >= ends[idx]:
            idx += 1
        self._segment_cursor = idx
        end = start + dt
        segment_end = ends[idx]
        if end <= segment_end:
            # Same expression as expected_count's single-segment path.
            mean = schedule.segments[idx][1] * (end - start)
        else:
            mean = schedule.expected_count(start, end)
        if mean == 0.0:
            return 0
        if mean == self._batch_mean and self._batch_pos < len(self._batch):
            value = self._batch[self._batch_pos]
            self._batch_pos += 1
            return value
        if mean == self._streak_mean:
            self._streak += 1
        else:
            self._streak_mean = mean
            self._streak = 1
        if self._streak > self.BATCH_AFTER and (dt * 1048576.0).is_integer():
            # Size the batch to stay strictly inside the current rate
            # segment: the next segment's per-step mean differs, and a
            # batch drawn with the old mean must never leak across.
            # One step of slack absorbs any rounding in the division.
            if segment_end == float("inf"):
                size = self.BATCH_SIZE
            else:
                remaining = segment_end - end
                if remaining < 0:
                    remaining = 0.0
                size = min(self.BATCH_SIZE, int(remaining / dt))
            if size > 1:
                self._batch = self._rng.poisson(mean, size=size).tolist()
                self._batch_mean = mean
                self._batch_pos = 1
                return self._batch[0]
        self._batch_mean = -1.0  # no valid batch pending
        return int(self._rng.poisson(mean))

    def sample_count_block(
        self, times: Sequence[float], dt: float
    ) -> List[int]:
        """Counts for a whole block of consecutive mini-slots.

        Returns exactly the values ``[self.sample_count(t, dt) for t in
        times]`` would — same draws from the same generator in the same
        order — but amortizes the per-call Python overhead by serving
        runs of already pre-drawn batch values with one slice.  The
        bulk path is sound because a live batch only ever contains
        values for consecutive same-``dt`` slots strictly inside the
        current rate segment (see :meth:`sample_count`'s sizing), so
        none of the sliced values could have been discarded by the
        per-call logic.  Callers must pass the same accumulated slot
        times the per-call loop would (the batch engine's pulled-ahead
        arrival window does).
        """
        out: List[int] = []
        extend = out.extend
        i, total = 0, len(times)
        while i < total:
            batch_before = self._batch
            pos_before = self._batch_pos
            out.append(self.sample_count(times[i], dt))
            i += 1
            # Bulk-serve only when that call itself consumed the live
            # batch (freshly drawn, or advanced by one).  A call that
            # bypassed the batch — zero-rate segment, non-batching mean
            # — leaves it untouched, and its leftover values belong to
            # earlier slots the per-call logic would never replay.
            if self._batch_mean >= 0.0 and (
                (self._batch is batch_before
                 and self._batch_pos == pos_before + 1)
                or (self._batch is not batch_before and self._batch_pos == 1)
            ):
                batch_left = len(self._batch) - self._batch_pos
                if batch_left > 0 and i < total:
                    take = min(batch_left, total - i)
                    extend(self._batch[self._batch_pos:self._batch_pos + take])
                    self._batch_pos += take
                    i += take
        return out

    def sample_nonzero_block(
        self, times: Sequence[float], dt: float
    ) -> List[Tuple[int, int]]:
        """``(slot_index, count)`` pairs for a block, skipping zeros.

        Event-driven callers only care which slots receive vehicles.
        Returns the nonzero entries of :meth:`sample_count_block` with
        their positions in ``times`` — draw-for-draw identical RNG
        consumption to the per-slot calls.

        Fast path: when the schedule's precomputed segment tables show
        a zero expected count across the whole block (e.g. the silent
        phases of a tidal profile), every per-slot mean is zero — the
        scalar path returns 0 *before* touching the generator — so the
        block is skipped without drawing anything at all.
        """
        if not times:
            return []
        if self.schedule.expected_count(times[0], times[-1] + dt) == 0.0:
            return []
        return [
            (index, count)
            for index, count in enumerate(self.sample_count_block(times, dt))
            if count
        ]

    def sample_times(self, start: float, dt: float) -> List[float]:
        """Exact arrival instants in ``[start, start+dt)`` (sorted).

        Conditional on the count, Poisson arrival times are uniform
        over the interval within each constant-rate segment; we sample
        per segment to respect rate changes.
        """
        check_positive("dt", dt)
        times: List[float] = []
        boundaries = [seg[0] for seg in self.schedule.segments] + [float("inf")]
        for idx, (seg_start, rate) in enumerate(self.schedule.segments):
            seg_end = boundaries[idx + 1]
            lo = max(start, seg_start)
            hi = min(start + dt, seg_end)
            if hi <= lo or rate == 0.0:
                continue
            count = int(self._rng.poisson(rate * (hi - lo)))
            if count:
                times.extend(self._rng.uniform(lo, hi, size=count).tolist())
        times.sort()
        return times
