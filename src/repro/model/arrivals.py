"""Exogenous Poisson arrival processes (Sec. II-B).

Vehicles arrive at each entry road following a Poisson process with
rate ``lambda > 0``.  The paper's Table II specifies the *average
inter-arrival time* per entry side and traffic pattern (e.g. 3 s from
the north in Pattern I, i.e. ``lambda = 1/3`` veh/s), and the mixed
pattern concatenates the four patterns over time — hence arrivals are
driven by a piecewise-constant :class:`ArrivalSchedule`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.util.validation import check_non_negative, check_positive

__all__ = ["ArrivalSchedule", "PoissonArrivals"]


@dataclass(frozen=True)
class ArrivalSchedule:
    """A piecewise-constant arrival-rate profile.

    ``segments`` is a sequence of ``(start_time, rate)`` pairs with
    strictly increasing start times; the first segment must start at
    0.  The rate of the last segment extends to infinity.
    """

    segments: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("schedule needs at least one segment")
        if self.segments[0][0] != 0.0:
            raise ValueError(
                f"first segment must start at t=0, got {self.segments[0][0]}"
            )
        previous = -1.0
        for start, rate in self.segments:
            if start <= previous:
                raise ValueError("segment start times must strictly increase")
            check_non_negative("rate", rate)
            previous = start

    @classmethod
    def constant(cls, rate: float) -> "ArrivalSchedule":
        """A single-rate schedule (``rate`` vehicles per second)."""
        check_non_negative("rate", rate)
        return cls(segments=((0.0, float(rate)),))

    @classmethod
    def from_interarrival(cls, mean_interarrival: float) -> "ArrivalSchedule":
        """Schedule from a Table-II style mean inter-arrival time (s)."""
        check_positive("mean_interarrival", mean_interarrival)
        return cls.constant(1.0 / mean_interarrival)

    @classmethod
    def piecewise(
        cls, pieces: Sequence[Tuple[float, float]]
    ) -> "ArrivalSchedule":
        """Schedule from explicit ``(start_time, rate)`` pieces."""
        return cls(segments=tuple((float(t), float(r)) for t, r in pieces))

    def rate_at(self, time: float) -> float:
        """The arrival rate (veh/s) in force at ``time``."""
        if time < 0:
            raise ValueError(f"time must be >= 0, got {time}")
        starts = [seg[0] for seg in self.segments]
        idx = bisect_right(starts, time) - 1
        return self.segments[idx][1]

    def expected_count(self, start: float, end: float) -> float:
        """Expected number of arrivals in ``[start, end)``."""
        if end < start:
            raise ValueError(f"end {end} precedes start {start}")
        total = 0.0
        boundaries = [seg[0] for seg in self.segments] + [float("inf")]
        for idx, (seg_start, rate) in enumerate(self.segments):
            seg_end = boundaries[idx + 1]
            lo = max(start, seg_start)
            hi = min(end, seg_end)
            if hi > lo:
                total += rate * (hi - lo)
        return total


class PoissonArrivals:
    """Samples Poisson arrival counts and exact arrival times.

    One instance per entry road; each owns a dedicated RNG so arrival
    streams are independent across roads and identical across paired
    controller runs.
    """

    def __init__(self, schedule: ArrivalSchedule, rng: np.random.Generator):
        self.schedule = schedule
        self._rng = rng

    def sample_count(self, start: float, dt: float) -> int:
        """``A(k, k+1)`` — arrivals in ``[start, start+dt)``.

        Uses the exact expected count across rate-segment boundaries,
        so the process stays Poisson even when ``[start, start+dt)``
        straddles a pattern change of the mixed schedule.
        """
        check_positive("dt", dt)
        mean = self.schedule.expected_count(start, start + dt)
        if mean == 0.0:
            return 0
        return int(self._rng.poisson(mean))

    def sample_times(self, start: float, dt: float) -> List[float]:
        """Exact arrival instants in ``[start, start+dt)`` (sorted).

        Conditional on the count, Poisson arrival times are uniform
        over the interval within each constant-rate segment; we sample
        per segment to respect rate changes.
        """
        check_positive("dt", dt)
        times: List[float] = []
        boundaries = [seg[0] for seg in self.schedule.segments] + [float("inf")]
        for idx, (seg_start, rate) in enumerate(self.schedule.segments):
            seg_end = boundaries[idx + 1]
            lo = max(start, seg_start)
            hi = min(start + dt, seg_end)
            if hi <= lo or rate == 0.0:
                continue
            count = int(self._rng.poisson(rate * (hi - lo)))
            if count:
                times.extend(self._rng.uniform(lo, hi, size=count).tolist())
        times.sort()
        return times
