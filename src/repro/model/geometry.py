"""Compass directions and turn types for four-leg intersections.

The paper's example intersection (Fig. 1) has four incoming and four
outgoing roads.  We give them compass semantics so that routing through
a grid network and turn-probability sampling (Table I) are well
defined.  Right-hand traffic is assumed throughout, matching the
figure (e.g. the link ``L_1^6`` — from the north approach into the east
exit — is described as a *left* turn).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Direction", "TurnType"]


class Direction(Enum):
    """A compass side of an intersection.

    ``Direction.N`` as an *approach* means "the vehicle enters from the
    north side", i.e. it is heading south.
    """

    N = "N"
    E = "E"
    S = "S"
    W = "W"

    @property
    def opposite(self) -> "Direction":
        """The facing side (``N`` <-> ``S``, ``E`` <-> ``W``)."""
        return _OPPOSITE[self]

    @property
    def clockwise(self) -> "Direction":
        """The next side clockwise (``N -> E -> S -> W -> N``)."""
        return _CLOCKWISE[self]

    @property
    def counter_clockwise(self) -> "Direction":
        """The next side counter-clockwise (``N -> W -> S -> E -> N``)."""
        return _CLOCKWISE[_OPPOSITE[self]]

    def exit_side(self, turn: "TurnType") -> "Direction":
        """The exit side for a vehicle approaching from this side.

        Right-hand traffic: a vehicle entering from the north (heading
        south) exits west on a right turn, east on a left turn, and
        south when going straight.

        >>> Direction.N.exit_side(TurnType.LEFT) is Direction.E
        True
        """
        if turn is TurnType.STRAIGHT:
            return self.opposite
        if turn is TurnType.RIGHT:
            return self.counter_clockwise
        return self.clockwise

    def turn_to(self, exit_side: "Direction") -> "TurnType":
        """The turn type that maps this approach side to ``exit_side``.

        Raises ``ValueError`` for a U-turn (same side), which is not a
        legal movement in the paper's model.
        """
        for turn in TurnType:
            if self.exit_side(turn) is exit_side:
                return turn
        raise ValueError(f"no legal turn from approach {self} to exit {exit_side}")


class TurnType(Enum):
    """The manoeuvre a movement performs through the junction."""

    LEFT = "left"
    STRAIGHT = "straight"
    RIGHT = "right"


_OPPOSITE = {
    Direction.N: Direction.S,
    Direction.S: Direction.N,
    Direction.E: Direction.W,
    Direction.W: Direction.E,
}

_CLOCKWISE = {
    Direction.N: Direction.E,
    Direction.E: Direction.S,
    Direction.S: Direction.W,
    Direction.W: Direction.N,
}
