"""Route sampling through a network (Sec. V workload model).

The paper's workload: a vehicle entering the network samples a
manoeuvre — right turn, left turn or straight — with per-entry-side
probabilities (Table I), *"while the intersection at which a vehicle
takes the turn is selected randomly"*.  After turning, the vehicle
continues straight until it exits the network.

:class:`RouteSampler` implements exactly that on any network whose
approaches carry the full set of three turn movements (our grids do):

1. walk the *straight corridor* from the entry road to the exit;
2. sample the turn type from the entry side's probabilities;
3. for a turning vehicle, pick the turning intersection uniformly
   among those on the corridor, take the turn there, and walk straight
   to the exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.model.geometry import Direction, TurnType
from repro.model.network import BOUNDARY, Network
from repro.util.validation import check_probability

__all__ = ["TurningProbabilities", "RouteSampler"]


@dataclass(frozen=True)
class TurningProbabilities:
    """Per-entry-side right/left turning probabilities (Table I style).

    The straight probability is the complement.
    """

    right: Mapping[Direction, float]
    left: Mapping[Direction, float]

    def __post_init__(self) -> None:
        for side in Direction:
            if side not in self.right or side not in self.left:
                raise ValueError(f"missing probabilities for side {side}")
            p_right = check_probability(f"right[{side.value}]", self.right[side])
            p_left = check_probability(f"left[{side.value}]", self.left[side])
            if p_right + p_left > 1.0:
                raise ValueError(
                    f"right+left probability exceeds 1 for side {side.value}: "
                    f"{p_right} + {p_left}"
                )

    def straight(self, side: Direction) -> float:
        """Probability of going straight when entering from ``side``."""
        return 1.0 - self.right[side] - self.left[side]

    def sample_turn(self, side: Direction, rng: np.random.Generator) -> TurnType:
        """Draw a manoeuvre for a vehicle entering from ``side``."""
        draw = rng.random()
        if draw < self.right[side]:
            return TurnType.RIGHT
        if draw < self.right[side] + self.left[side]:
            return TurnType.LEFT
        return TurnType.STRAIGHT

    @classmethod
    def uniform(cls, right: float = 0.25, left: float = 0.25) -> "TurningProbabilities":
        """Same probabilities for every entry side."""
        return cls(
            right={side: right for side in Direction},
            left={side: left for side in Direction},
        )


class RouteSampler:
    """Samples full road-level routes for entering vehicles."""

    def __init__(
        self,
        network: Network,
        turning: TurningProbabilities,
        rng: np.random.Generator,
    ):
        self.network = network
        self.turning = turning
        self._rng = rng
        # Straight corridors are static per entry road; precompute them.
        self._corridors: Dict[str, List[str]] = {
            entry: self._straight_walk(entry) for entry in network.entry_roads()
        }
        self._entry_side: Dict[str, Direction] = {}
        for entry in network.entry_roads():
            movements = network.movements_of(entry)
            if not movements:
                raise ValueError(f"entry road {entry!r} has no movements")
            self._entry_side[entry] = movements[0].approach
        # Routes are fully determined by (entry, turn road, turn type);
        # networks are static, so each distinct route is walked and
        # validated once and replayed from this cache afterwards.  The
        # cache changes no RNG draw — sampling happens before lookup.
        self._route_cache: Dict[Tuple[str, str, TurnType], List[str]] = {}
        # Per-entry turn thresholds (right, right + left): lets the hot
        # path draw the manoeuvre with one uniform sample and two plain
        # float compares — the same draw ``sample_turn`` makes, without
        # the enum-keyed mapping lookups.
        self._turn_thresholds: Dict[str, Tuple[float, float]] = {
            entry: (
                turning.right[side],
                turning.right[side] + turning.left[side],
            )
            for entry, side in self._entry_side.items()
        }
        #: Per entry road: the corridor roads a vehicle can turn at.
        self._turn_candidates: Dict[str, List[str]] = {
            entry: [
                road
                for road in corridor
                if network.road_destination[road] != BOUNDARY
            ]
            for entry, corridor in self._corridors.items()
        }

    def _movement_with_turn(self, road_id: str, turn: TurnType) -> str:
        """The out-road reached by taking ``turn`` at the end of ``road_id``."""
        for movement in self.network.movements_of(road_id):
            if movement.turn is turn:
                return movement.out_road
        raise ValueError(
            f"road {road_id!r} has no {turn.value} movement at its "
            f"downstream intersection"
        )

    def _straight_walk(self, road_id: str) -> List[str]:
        """Roads visited going straight from ``road_id`` until the exit."""
        path = [road_id]
        current = road_id
        seen = {road_id}
        while self.network.road_destination[current] != BOUNDARY:
            current = self._movement_with_turn(current, TurnType.STRAIGHT)
            if current in seen:
                raise ValueError(
                    f"straight walk from {road_id!r} loops at {current!r}"
                )
            seen.add(current)
            path.append(current)
        return path

    def entry_side(self, entry_road: str) -> Direction:
        """The network side a given entry road comes from."""
        try:
            return self._entry_side[entry_road]
        except KeyError:
            raise KeyError(f"{entry_road!r} is not an entry road")

    def corridor(self, entry_road: str) -> List[str]:
        """The straight corridor (road list) of an entry road."""
        return list(self._corridors[entry_road])

    def sample_route(self, entry_road: str) -> List[str]:
        """Sample a complete route starting on ``entry_road``.

        Returns the ordered list of road ids, from the entry road to an
        exit road inclusive.  The list is shared between vehicles with
        the same route (routes are static per network) — callers must
        treat it as read-only, which every engine does: vehicles track
        their position with a leg index and never edit the route.
        """
        corridor = self._corridors.get(entry_road)
        if corridor is None:
            raise KeyError(f"{entry_road!r} is not an entry road")
        # Same draw and decision logic as TurningProbabilities
        # .sample_turn, on precomputed thresholds.
        right, right_or_left = self._turn_thresholds[entry_road]
        draw = self._rng.random()
        if draw < right:
            turn = TurnType.RIGHT
        elif draw < right_or_left:
            turn = TurnType.LEFT
        else:
            return corridor
        # A vehicle can turn at the downstream end of every corridor
        # road that feeds an intersection (the final exit road cannot).
        turn_candidates = self._turn_candidates[entry_road]
        if not turn_candidates:
            return corridor
        pick = int(self._rng.integers(0, len(turn_candidates)))
        turn_road = turn_candidates[pick]
        cache_key = (entry_road, turn_road, turn)
        route = self._route_cache.get(cache_key)
        if route is None:
            prefix = corridor[: corridor.index(turn_road) + 1]
            after_turn = self._movement_with_turn(turn_road, turn)
            tail = self._straight_walk(after_turn)
            route = prefix + tail
            self.network.validate_route(route)
            self._route_cache[cache_key] = route
        return route
