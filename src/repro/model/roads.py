"""Road (node) objects of the queuing-network model.

In the paper each *road* participating in an intersection is a graph
node ``N_i`` with a finite capacity ``W_i`` — the maximum number of
vehicles it can accommodate (Sec. II-A).  For the microscopic engine a
road additionally carries a physical length and speed limit, from which
its *physical* capacity can be derived; the model-level ``capacity``
is authoritative for control decisions (the paper fixes ``W_i = 120``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_positive

__all__ = ["Road"]

#: Default physical length of a road segment, metres.  With ~7.5 m of
#: space per queued vehicle and three dedicated turning lanes, a 300 m
#: road holds 120 vehicles — consistent with the paper's ``W_i = 120``.
DEFAULT_LENGTH_M = 300.0

#: Default speed limit, metres/second (50 km/h urban).
DEFAULT_SPEED_MPS = 13.89


@dataclass(frozen=True)
class Road:
    """A directed road segment.

    Parameters
    ----------
    road_id:
        Globally unique identifier, e.g. ``"J00->J01"`` or ``"IN:N@J01"``.
    capacity:
        ``W_i`` — maximum number of vehicles the road accommodates.
    length:
        Physical length in metres (microscopic engine only).
    speed_limit:
        Free-flow speed in m/s (microscopic engine only).
    """

    road_id: str
    capacity: int = 120
    length: float = field(default=DEFAULT_LENGTH_M)
    speed_limit: float = field(default=DEFAULT_SPEED_MPS)

    def __post_init__(self) -> None:
        if not self.road_id:
            raise ValueError("road_id must be a non-empty string")
        if self.capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")
        check_positive("length", self.length)
        check_positive("speed_limit", self.speed_limit)

    @property
    def free_flow_time(self) -> float:
        """Seconds to traverse the road at the speed limit."""
        return self.length / self.speed_limit
