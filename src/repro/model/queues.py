"""Queue-state snapshots — the controller's sensor view (Sec. II-B).

The back-pressure control law is state feedback on queue lengths:
``c(k) = phi(Q(k))`` with ``Q(k) = {q_{i'}} U {q_i^{i'}}`` (Eq. 3).  A
:class:`QueueObservation` is exactly that ``Q(k)`` for one
intersection: per-movement incoming queues, total outgoing queues, and
the outgoing capacities.  Both simulation engines produce these
snapshots; controllers consume nothing else, which keeps the
cyber/physical boundary of the paper's CPS framing explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

__all__ = ["QueueObservation"]


@dataclass(frozen=True)
class QueueObservation:
    """Snapshot ``Q(k)`` of one intersection at discrete time ``k``.

    Attributes
    ----------
    time:
        The global time ``t_k`` in seconds at which the state was read.
    movement_queues:
        ``q_i^{i'}(k)`` — vehicles queuing on the dedicated lane of each
        movement, keyed by ``(in_road, out_road)``.
    out_queues:
        ``q_{i'}(k)`` — total vehicles on each outgoing road.
    out_capacities:
        ``W_{i'}`` — capacity of each outgoing road.
    """

    time: float
    movement_queues: Mapping[Tuple[str, str], int]
    out_queues: Mapping[str, int]
    out_capacities: Mapping[str, int]

    def __post_init__(self) -> None:
        for key, queue in self.movement_queues.items():
            if queue < 0:
                raise ValueError(f"negative queue {queue} for movement {key}")
        for road, queue in self.out_queues.items():
            if queue < 0:
                raise ValueError(f"negative queue {queue} on road {road!r}")
            if road not in self.out_capacities:
                raise ValueError(f"road {road!r} has a queue but no capacity")

    @classmethod
    def trusted(
        cls,
        time: float,
        movement_queues: Mapping[Tuple[str, str], int],
        out_queues: Mapping[str, int],
        out_capacities: Mapping[str, int],
    ) -> "QueueObservation":
        """Construct without ``__post_init__`` validation.

        For engine-internal fast paths whose counts are non-negative by
        construction (queue lengths, occupancies); building thousands
        of observations per second through the validating constructor
        is measurable.  External producers should use the normal
        constructor.
        """
        obs = cls.__new__(cls)
        fields = obs.__dict__
        fields["time"] = time
        fields["movement_queues"] = movement_queues
        fields["out_queues"] = out_queues
        fields["out_capacities"] = out_capacities
        return obs

    def movement_queue(self, in_road: str, out_road: str) -> int:
        """``q_i^{i'}(k)`` for one movement (0 if the movement is unknown)."""
        return int(self.movement_queues.get((in_road, out_road), 0))

    def incoming_total(self, in_road: str) -> int:
        """``q_i(k)`` — Eq. 1: sum of the movement queues of ``in_road``."""
        return sum(
            queue
            for (road, _out), queue in self.movement_queues.items()
            if road == in_road
        )

    def out_queue(self, out_road: str) -> int:
        """``q_{i'}(k)`` for one outgoing road."""
        try:
            return int(self.out_queues[out_road])
        except KeyError:
            raise KeyError(f"no outgoing queue recorded for road {out_road!r}")

    def capacity(self, out_road: str) -> int:
        """``W_{i'}`` for one outgoing road."""
        try:
            return int(self.out_capacities[out_road])
        except KeyError:
            raise KeyError(f"no capacity recorded for road {out_road!r}")

    def is_full(self, out_road: str) -> bool:
        """True iff the outgoing road has reached its capacity."""
        return self.out_queue(out_road) >= self.capacity(out_road)

    def max_capacity(self) -> int:
        """``W* = max_{i'} W_{i'}`` (Eq. 7)."""
        if not self.out_capacities:
            raise ValueError("observation has no outgoing capacities")
        return max(int(c) for c in self.out_capacities.values())


def queue_dynamics_step(
    queue: int, arrivals: int, served: int
) -> int:
    """One step of the queuing dynamics, Eq. 2.

    ``q(k+1) = q(k) + A(k, k+1) - S(k, k+1)``.  Raises ``ValueError``
    if more vehicles are served than are present — the service process
    must respect the queue (Sec. II-C).
    """
    if arrivals < 0:
        raise ValueError(f"arrivals must be >= 0, got {arrivals}")
    if served < 0:
        raise ValueError(f"served must be >= 0, got {served}")
    if served > queue + arrivals:
        raise ValueError(
            f"cannot serve {served} vehicles from queue {queue} with "
            f"{arrivals} arrivals"
        )
    return queue + arrivals - served
