"""Movements — the directed links ``L_i^{i'}`` of the intersection graph.

A movement connects an incoming road ``N_i`` to an outgoing road
``N_{i'}`` and owns a dedicated turning lane, so vehicles wanting
different movements never block each other (no head-of-line blocking,
Sec. IV-Q4).  Each movement has a full service rate ``µ_i^{i'}``
(vehicles per second when its signal is green, the queue is non-empty
and the downstream road has space — Sec. II-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.model.geometry import Direction, TurnType
from repro.util.validation import check_positive

__all__ = ["Movement"]


@dataclass(frozen=True)
class Movement:
    """A legal traffic movement through one intersection.

    Attributes
    ----------
    in_road:
        Identifier of the incoming road ``N_i``.
    out_road:
        Identifier of the outgoing road ``N_{i'}``.
    approach:
        Compass side the movement enters from.
    turn:
        The manoeuvre performed (left / straight / right).
    service_rate:
        ``µ_i^{i'}`` in vehicles per second.  The paper's evaluation
        uses ``µ = 1`` for every movement.
    """

    in_road: str
    out_road: str
    approach: Direction
    turn: TurnType
    service_rate: float = 1.0

    def __post_init__(self) -> None:
        if not self.in_road or not self.out_road:
            raise ValueError("in_road and out_road must be non-empty")
        if self.in_road == self.out_road:
            raise ValueError(f"movement cannot loop on road {self.in_road!r}")
        check_positive("service_rate", self.service_rate)

    @property
    def key(self) -> Tuple[str, str]:
        """``(in_road, out_road)`` — the unique key of this movement."""
        return (self.in_road, self.out_road)

    @property
    def exit_side(self) -> Direction:
        """Compass side the movement exits to."""
        return self.approach.exit_side(self.turn)

    def label(self) -> str:
        """Human-readable label, e.g. ``"N:left"``."""
        return f"{self.approach.value}:{self.turn.value}"
