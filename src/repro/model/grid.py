"""Rectangular grid networks of standard four-leg intersections.

The paper evaluates on a 3x3 grid of identical Fig.-1 intersections.
:func:`build_grid_network` builds an ``rows x cols`` grid: adjacent
intersections are connected by one directed road per direction, and
every perimeter side gets an entry road and an exit road connected to
the outside world (:data:`~repro.model.network.BOUNDARY`).

Naming scheme
-------------
* Intersections: ``"J{row}{col}"`` with row 0 at the *north* edge.
* Internal roads: ``"J00->J01"`` (origin -> destination).
* Boundary roads: ``"IN:N@J01"`` (entry from the north into J01) and
  ``"OUT:N@J01"`` (exit towards the north from J01).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.model.geometry import Direction
from repro.model.intersection import Intersection, build_standard_intersection
from repro.model.network import BOUNDARY, Network
from repro.model.roads import Road

__all__ = [
    "grid_node_id",
    "entry_road_id",
    "exit_road_id",
    "internal_road_id",
    "build_grid_network",
]

_OFFSETS: Dict[Direction, Tuple[int, int]] = {
    Direction.N: (-1, 0),
    Direction.S: (1, 0),
    Direction.E: (0, 1),
    Direction.W: (0, -1),
}


def grid_node_id(row: int, col: int) -> str:
    """Canonical intersection id for grid position ``(row, col)``."""
    if row < 0 or col < 0:
        raise ValueError(f"grid position must be non-negative, got ({row}, {col})")
    return f"J{row}{col}"


def entry_road_id(side: Direction, node_id: str) -> str:
    """Id of the boundary *entry* road reaching ``node_id`` from ``side``."""
    return f"IN:{side.value}@{node_id}"


def exit_road_id(side: Direction, node_id: str) -> str:
    """Id of the boundary *exit* road leaving ``node_id`` towards ``side``."""
    return f"OUT:{side.value}@{node_id}"


def internal_road_id(src: str, dst: str) -> str:
    """Id of the internal road from intersection ``src`` to ``dst``."""
    return f"{src}->{dst}"


def build_grid_network(
    rows: int,
    cols: int,
    capacity: int = 120,
    road_length: float = 300.0,
    speed_limit: float = 13.89,
    service_rate: float = 1.0,
    boundary_capacity: Optional[int] = None,
    capacity_overrides: Optional[Mapping[str, int]] = None,
    node_service_rates: Optional[Mapping[str, float]] = None,
) -> Network:
    """Build an ``rows x cols`` grid of standard intersections.

    Parameters
    ----------
    rows, cols:
        Grid dimensions (both >= 1).
    capacity:
        ``W_i`` of every internal road (paper: 120).
    road_length, speed_limit:
        Physical attributes used by the microscopic engine.
    service_rate:
        ``µ`` of every movement (paper: 1 veh/s).
    boundary_capacity:
        Capacity of boundary entry/exit roads.  Defaults to
        ``capacity``.  Exit roads are drained by the outside world, so
        in practice only entry roads are capacity-limited.
    capacity_overrides:
        Per-road-id capacity overrides (e.g. an incident shrinking one
        road to half its lanes).  Keys must name roads the grid builds.
    node_service_rates:
        Per-intersection default ``µ`` overrides (e.g. a blocked
        junction serving slower), keyed by node id.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    if boundary_capacity is None:
        boundary_capacity = capacity
    capacity_overrides = dict(capacity_overrides or {})
    node_service_rates = dict(node_service_rates or {})

    roads: Dict[str, Road] = {}
    road_origin: Dict[str, str] = {}
    road_destination: Dict[str, str] = {}

    def add_road(road_id: str, origin: str, destination: str, cap: int) -> Road:
        """Create one road and register its endpoints."""
        if road_id in roads:
            return roads[road_id]
        cap = capacity_overrides.pop(road_id, cap)
        road = Road(
            road_id=road_id,
            capacity=cap,
            length=road_length,
            speed_limit=speed_limit,
        )
        roads[road_id] = road
        road_origin[road_id] = origin
        road_destination[road_id] = destination
        return road

    def neighbour(row: int, col: int, side: Direction) -> Optional[str]:
        """The neighbouring junction id one step in ``direction``."""
        d_row, d_col = _OFFSETS[side]
        n_row, n_col = row + d_row, col + d_col
        if 0 <= n_row < rows and 0 <= n_col < cols:
            return grid_node_id(n_row, n_col)
        return None

    intersections: Dict[str, Intersection] = {}
    for row in range(rows):
        for col in range(cols):
            node_id = grid_node_id(row, col)
            in_roads: Dict[Direction, Road] = {}
            out_roads: Dict[Direction, Road] = {}
            for side in Direction:
                other = neighbour(row, col, side)
                if other is None:
                    in_roads[side] = add_road(
                        entry_road_id(side, node_id),
                        BOUNDARY,
                        node_id,
                        boundary_capacity,
                    )
                    out_roads[side] = add_road(
                        exit_road_id(side, node_id),
                        node_id,
                        BOUNDARY,
                        boundary_capacity,
                    )
                else:
                    in_roads[side] = add_road(
                        internal_road_id(other, node_id),
                        other,
                        node_id,
                        capacity,
                    )
                    out_roads[side] = add_road(
                        internal_road_id(node_id, other),
                        node_id,
                        other,
                        capacity,
                    )
            intersections[node_id] = build_standard_intersection(
                node_id,
                in_roads=in_roads,
                out_roads=out_roads,
                service_rate=node_service_rates.pop(node_id, service_rate),
            )

    if capacity_overrides:
        raise ValueError(
            f"capacity_overrides name roads the grid does not build: "
            f"{sorted(capacity_overrides)}"
        )
    if node_service_rates:
        raise ValueError(
            f"node_service_rates name unknown intersections: "
            f"{sorted(node_service_rates)}"
        )

    return Network(
        intersections=intersections,
        roads=roads,
        road_origin=road_origin,
        road_destination=road_destination,
    )
