"""Control phases — compatible movement subsets (Sec. II-C).

A control phase ``c_j`` activates a subset of an intersection's
movements; the *transition phase* ``c_0`` (amber) activates none and is
inserted between two different control phases to clear the junction.

Phase indices follow the paper: ``0`` is the transition phase and
control phases are numbered from ``1`` (Fig. 1 defines ``c_1..c_4``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.model.movements import Movement

__all__ = ["Phase", "TRANSITION_PHASE_INDEX"]

#: Index reserved for the transition (amber) phase ``c_0``.
TRANSITION_PHASE_INDEX = 0


@dataclass(frozen=True)
class Phase:
    """A control phase: a named, indexed set of movements.

    Attributes
    ----------
    index:
        Positive integer phase number (``c_index``); 0 is reserved for
        the transition phase, which is represented implicitly by the
        controllers rather than as a ``Phase`` object.
    movements:
        The movements activated while this phase shows green.
    """

    index: int
    movements: Tuple[Movement, ...]

    def __post_init__(self) -> None:
        if self.index <= TRANSITION_PHASE_INDEX:
            raise ValueError(
                f"control phase index must be >= 1 "
                f"(0 is the transition phase), got {self.index}"
            )
        if not self.movements:
            raise ValueError(f"phase c{self.index} must activate >= 1 movement")
        keys = [m.key for m in self.movements]
        if len(set(keys)) != len(keys):
            raise ValueError(f"phase c{self.index} activates a movement twice")

    @property
    def name(self) -> str:
        """Phase name in the paper's notation, e.g. ``"c1"``."""
        return f"c{self.index}"

    def serves(self, in_road: str, out_road: str) -> bool:
        """True if this phase activates the movement ``(in_road, out_road)``."""
        return any(m.key == (in_road, out_road) for m in self.movements)

    def __len__(self) -> int:
        return len(self.movements)

    def __iter__(self):
        return iter(self.movements)
