"""Signalized intersections (Sec. II-A) and the Fig. 1 standard layout.

An :class:`Intersection` bundles the incoming/outgoing road sets, the
legal movements, and the control-phase table.
:func:`build_standard_intersection` reproduces the paper's example
intersection exactly: four approaches, twelve movements, and the four
control phases tabulated in Fig. 1:

=======  ==========================================================
phase    activated links (paper notation -> compass)
=======  ==========================================================
``c1``   ``L1^6 L1^7 L3^5 L3^8`` — north/south straight + left
``c2``   ``L1^8 L3^6``           — north/south right
``c3``   ``L2^7 L2^8 L4^5 L4^6`` — east/west straight + left
``c4``   ``L2^5 L4^7``           — east/west right
=======  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.model.conflicts import validate_phase
from repro.model.geometry import Direction, TurnType
from repro.model.movements import Movement
from repro.model.phases import Phase
from repro.model.roads import Road

__all__ = ["Intersection", "build_standard_intersection"]


@dataclass
class Intersection:
    """A signalized intersection of the queuing-network model.

    Attributes
    ----------
    node_id:
        Unique identifier, e.g. ``"J02"``.
    in_roads / out_roads:
        The sets ``N_I`` and ``N_O``, keyed by road id.
    movements:
        All feasible links ``L_i^{i'}``, keyed by ``(in_road, out_road)``.
    phases:
        The feasible control phases ``C = {c_j}`` (transition phase
        excluded; it is implicit).
    """

    node_id: str
    in_roads: Dict[str, Road]
    out_roads: Dict[str, Road]
    movements: Dict[Tuple[str, str], Movement]
    phases: List[Phase]
    approach_of: Dict[Direction, str] = field(default_factory=dict)
    exit_of: Dict[Direction, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ValueError("node_id must be non-empty")
        overlap = set(self.in_roads) & set(self.out_roads)
        if overlap:
            raise ValueError(
                f"roads cannot be both incoming and outgoing at {self.node_id}: "
                f"{sorted(overlap)}"
            )
        for key, movement in self.movements.items():
            if key != movement.key:
                raise ValueError(f"movement key mismatch: {key} vs {movement.key}")
            if movement.in_road not in self.in_roads:
                raise ValueError(
                    f"movement {key} references unknown incoming road "
                    f"{movement.in_road!r} at {self.node_id}"
                )
            if movement.out_road not in self.out_roads:
                raise ValueError(
                    f"movement {key} references unknown outgoing road "
                    f"{movement.out_road!r} at {self.node_id}"
                )
        indices = [p.index for p in self.phases]
        if len(set(indices)) != len(indices):
            raise ValueError(f"duplicate phase indices at {self.node_id}: {indices}")
        for phase in self.phases:
            for movement in phase:
                if movement.key not in self.movements:
                    raise ValueError(
                        f"phase {phase.name} at {self.node_id} activates unknown "
                        f"movement {movement.key}"
                    )

    # -- lookups ---------------------------------------------------------

    def phase_by_index(self, index: int) -> Phase:
        """Return the control phase with the given index."""
        for phase in self.phases:
            if phase.index == index:
                return phase
        raise KeyError(f"no phase c{index} at {self.node_id}")

    def movement(self, in_road: str, out_road: str) -> Movement:
        """Return the movement ``L_{in}^{out}``."""
        return self.movements[(in_road, out_road)]

    def movements_from(self, in_road: str) -> List[Movement]:
        """All movements leaving the given incoming road."""
        return [m for m in self.movements.values() if m.in_road == in_road]

    def movements_into(self, out_road: str) -> List[Movement]:
        """All movements entering the given outgoing road."""
        return [m for m in self.movements.values() if m.out_road == out_road]

    def capacity(self, road_id: str) -> int:
        """Capacity ``W_i`` of any road at this intersection."""
        road = self.in_roads.get(road_id) or self.out_roads.get(road_id)
        if road is None:
            raise KeyError(f"road {road_id!r} not at intersection {self.node_id}")
        return road.capacity

    def validate_phases(self, mode: str = "paper") -> None:
        """Check every phase for internal movement conflicts."""
        for phase in self.phases:
            validate_phase(phase, mode=mode)


def build_standard_intersection(
    node_id: str,
    in_roads: Mapping[Direction, Road],
    out_roads: Mapping[Direction, Road],
    service_rate: float = 1.0,
    service_rates: Optional[Mapping[Tuple[Direction, TurnType], float]] = None,
) -> Intersection:
    """Build the paper's Fig. 1 intersection.

    Parameters
    ----------
    node_id:
        Intersection identifier.
    in_roads / out_roads:
        One road per compass side, for each direction.
    service_rate:
        Default ``µ`` for every movement (the paper uses 1 veh/s).
    service_rates:
        Optional per-``(approach, turn)`` overrides.
    """
    missing = [d for d in Direction if d not in in_roads or d not in out_roads]
    if missing:
        raise ValueError(f"{node_id}: missing roads for sides {missing}")

    movements: Dict[Tuple[str, str], Movement] = {}

    def make(approach: Direction, turn: TurnType) -> Movement:
        """Build one movement of the standard intersection."""
        exit_side = approach.exit_side(turn)
        mu = service_rate
        if service_rates and (approach, turn) in service_rates:
            mu = service_rates[(approach, turn)]
        movement = Movement(
            in_road=in_roads[approach].road_id,
            out_road=out_roads[exit_side].road_id,
            approach=approach,
            turn=turn,
            service_rate=mu,
        )
        movements[movement.key] = movement
        return movement

    # Twelve feasible links: three turns per approach.
    by_label: Dict[Tuple[Direction, TurnType], Movement] = {}
    for approach in Direction:
        for turn in TurnType:
            by_label[(approach, turn)] = make(approach, turn)

    # The four control phases of Fig. 1.
    phases = [
        Phase(
            index=1,
            movements=(
                by_label[(Direction.N, TurnType.STRAIGHT)],
                by_label[(Direction.N, TurnType.LEFT)],
                by_label[(Direction.S, TurnType.STRAIGHT)],
                by_label[(Direction.S, TurnType.LEFT)],
            ),
        ),
        Phase(
            index=2,
            movements=(
                by_label[(Direction.N, TurnType.RIGHT)],
                by_label[(Direction.S, TurnType.RIGHT)],
            ),
        ),
        Phase(
            index=3,
            movements=(
                by_label[(Direction.E, TurnType.STRAIGHT)],
                by_label[(Direction.E, TurnType.LEFT)],
                by_label[(Direction.W, TurnType.STRAIGHT)],
                by_label[(Direction.W, TurnType.LEFT)],
            ),
        ),
        Phase(
            index=4,
            movements=(
                by_label[(Direction.E, TurnType.RIGHT)],
                by_label[(Direction.W, TurnType.RIGHT)],
            ),
        ),
    ]

    intersection = Intersection(
        node_id=node_id,
        in_roads={road.road_id: road for road in in_roads.values()},
        out_roads={road.road_id: road for road in out_roads.values()},
        movements=movements,
        phases=phases,
        approach_of={d: in_roads[d].road_id for d in Direction},
        exit_of={d: out_roads[d].road_id for d in Direction},
    )
    intersection.validate_phases(mode="paper")
    return intersection
