"""Geometric conflict analysis between movements.

Two movements *conflict* when their paths through the junction cross or
merge.  We model the junction perimeter as a circle with eight anchor
points — one approach point and one exit point per compass side, offset
for right-hand traffic (the approach lane lies clockwise-before its
side's exit lane when looking at the junction from outside):

* approach points sit slightly counter-clockwise of their side,
* exit points sit slightly clockwise of their side.

A movement is then a chord between its approach point and its exit
point, and two movements *cross* iff their chords interleave around the
circle.  Two movements *merge* iff they share an exit road.

Note on the paper's phase table (Fig. 1): phase ``c_1`` activates the
opposing straight **and** left movements of the north/south approaches
simultaneously.  Under strict geometry an opposing left crosses the
facing straight; the paper's queue-network abstraction declares them
compatible (protected simultaneous operation).  The validator therefore
supports two modes — ``"strict"`` geometric checking and ``"paper"``
(crossings between movements of *opposite* approaches are tolerated,
merges never are).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.geometry import Direction
from repro.model.movements import Movement
from repro.model.phases import Phase

__all__ = ["movements_conflict", "phase_conflicts", "validate_phase"]

# Angular positions (degrees, clockwise from north) of the eight anchor
# points.  Right-hand traffic: e.g. southbound vehicles approaching from
# the north keep to the western half of their road, so the north
# approach point (350 deg) lies counter-clockwise of the north exit
# point (10 deg).
_APPROACH_ANGLE: Dict[Direction, float] = {
    Direction.N: 350.0,
    Direction.E: 80.0,
    Direction.S: 170.0,
    Direction.W: 260.0,
}
_EXIT_ANGLE: Dict[Direction, float] = {
    Direction.N: 10.0,
    Direction.E: 100.0,
    Direction.S: 190.0,
    Direction.W: 280.0,
}


def _chord(movement: Movement) -> Tuple[float, float]:
    return (_APPROACH_ANGLE[movement.approach], _EXIT_ANGLE[movement.exit_side])


def _interleaved(chord_a: Tuple[float, float], chord_b: Tuple[float, float]) -> bool:
    """True iff the chords' endpoints alternate around the circle."""
    a0, a1 = chord_a
    inside = 0
    for point in chord_b:
        # Walk clockwise from a0; is `point` passed before a1?
        span = (a1 - a0) % 360.0
        offset = (point - a0) % 360.0
        if 0.0 < offset < span:
            inside += 1
    return inside == 1


def movements_conflict(a: Movement, b: Movement, mode: str = "strict") -> bool:
    """Decide whether two movements of one intersection conflict.

    Parameters
    ----------
    a, b:
        The movements to test.  Identical movements never conflict.
    mode:
        ``"strict"`` — geometric crossings and merges both conflict.
        ``"paper"`` — crossings between *opposite* approaches are
        tolerated (the paper's Fig. 1 compatibility), merges and
        crossings between adjacent approaches still conflict.
    """
    if mode not in ("strict", "paper"):
        raise ValueError(f"unknown conflict mode {mode!r}")
    if a.key == b.key:
        return False
    if a.out_road == b.out_road:
        return True  # merge conflict: same exit road
    if a.in_road == b.in_road:
        return False  # dedicated turning lanes: same approach never conflicts
    crossing = _interleaved(_chord(a), _chord(b))
    if not crossing:
        return False
    if mode == "paper" and a.approach is b.approach.opposite:
        return False
    return True


def phase_conflicts(phase: Phase, mode: str = "strict") -> List[Tuple[Movement, Movement]]:
    """Return every conflicting movement pair inside ``phase``."""
    pairs: List[Tuple[Movement, Movement]] = []
    movements = list(phase.movements)
    for i, first in enumerate(movements):
        for second in movements[i + 1:]:
            if movements_conflict(first, second, mode=mode):
                pairs.append((first, second))
    return pairs


def validate_phase(phase: Phase, mode: str = "paper") -> None:
    """Raise ``ValueError`` if ``phase`` contains conflicting movements."""
    conflicts = phase_conflicts(phase, mode=mode)
    if conflicts:
        detail = "; ".join(
            f"{a.label()} x {b.label()}" for a, b in conflicts
        )
        raise ValueError(
            f"phase {phase.name} has {len(conflicts)} conflicting pair(s) "
            f"under mode={mode!r}: {detail}"
        )
