"""Multi-intersection road networks.

A :class:`Network` is a set of intersections whose roads connect them
to each other and to the outside world.  A road connecting two
intersections is *shared*: it is an outgoing road of the upstream
intersection and an incoming road of the downstream one, so finite
capacity couples neighbours (spillback) exactly as in the paper's
Sec. II-A.  Roads whose origin is the sentinel :data:`BOUNDARY` are
network entries (vehicles appear there, per the arrival processes) and
roads whose destination is :data:`BOUNDARY` are exits (vehicles leave
the system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.model.intersection import Intersection
from repro.model.movements import Movement
from repro.model.roads import Road

__all__ = ["BOUNDARY", "Network"]

#: Sentinel node id for the outside world.
BOUNDARY = "__boundary__"


@dataclass
class Network:
    """A road network of signalized intersections.

    Attributes
    ----------
    intersections:
        Intersections keyed by node id.
    roads:
        Every road in the network keyed by road id.
    road_origin / road_destination:
        Node id (or :data:`BOUNDARY`) each road leaves from / arrives
        at.
    """

    intersections: Dict[str, Intersection]
    roads: Dict[str, Road]
    road_origin: Dict[str, str]
    road_destination: Dict[str, str]

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        for road_id in self.roads:
            if road_id not in self.road_origin:
                raise ValueError(f"road {road_id!r} has no origin")
            if road_id not in self.road_destination:
                raise ValueError(f"road {road_id!r} has no destination")
        for node_id, intersection in self.intersections.items():
            if node_id != intersection.node_id:
                raise ValueError(
                    f"intersection key {node_id!r} != node_id "
                    f"{intersection.node_id!r}"
                )
            for road_id in intersection.in_roads:
                if self.road_destination.get(road_id) != node_id:
                    raise ValueError(
                        f"incoming road {road_id!r} of {node_id} does not "
                        f"terminate there (destination="
                        f"{self.road_destination.get(road_id)!r})"
                    )
            for road_id in intersection.out_roads:
                if self.road_origin.get(road_id) != node_id:
                    raise ValueError(
                        f"outgoing road {road_id!r} of {node_id} does not "
                        f"originate there (origin="
                        f"{self.road_origin.get(road_id)!r})"
                    )

    # -- topology queries --------------------------------------------------

    def entry_roads(self) -> List[str]:
        """Roads on which vehicles enter the network (sorted)."""
        return sorted(
            road_id
            for road_id, origin in self.road_origin.items()
            if origin == BOUNDARY
        )

    def exit_roads(self) -> List[str]:
        """Roads on which vehicles leave the network (sorted)."""
        return sorted(
            road_id
            for road_id, dest in self.road_destination.items()
            if dest == BOUNDARY
        )

    def internal_roads(self) -> List[str]:
        """Roads connecting two intersections (sorted)."""
        return sorted(
            road_id
            for road_id in self.roads
            if self.road_origin[road_id] != BOUNDARY
            and self.road_destination[road_id] != BOUNDARY
        )

    def downstream_intersection(self, road_id: str) -> Optional[Intersection]:
        """The intersection a road feeds into, or ``None`` at an exit."""
        dest = self.road_destination[road_id]
        if dest == BOUNDARY:
            return None
        return self.intersections[dest]

    def upstream_intersection(self, road_id: str) -> Optional[Intersection]:
        """The intersection a road leaves from, or ``None`` at an entry."""
        origin = self.road_origin[road_id]
        if origin == BOUNDARY:
            return None
        return self.intersections[origin]

    def movements_of(self, road_id: str) -> List[Movement]:
        """The movements available at the downstream end of ``road_id``.

        Empty for exit roads.
        """
        downstream = self.downstream_intersection(road_id)
        if downstream is None:
            return []
        return downstream.movements_from(road_id)

    def route_next(self, road_id: str, out_road: str) -> str:
        """Validate and return the next road of a route step."""
        downstream = self.downstream_intersection(road_id)
        if downstream is None:
            raise ValueError(f"road {road_id!r} exits the network; no next road")
        if (road_id, out_road) not in downstream.movements:
            raise ValueError(
                f"no movement {road_id!r} -> {out_road!r} at "
                f"{downstream.node_id}"
            )
        return out_road

    def validate_route(self, route: List[str]) -> None:
        """Raise ``ValueError`` unless ``route`` is a connected road path."""
        if not route:
            raise ValueError("route must contain at least one road")
        for road_id in route:
            if road_id not in self.roads:
                raise ValueError(f"route references unknown road {road_id!r}")
        for current, nxt in zip(route, route[1:]):
            self.route_next(current, nxt)
        if self.road_destination[route[-1]] != BOUNDARY:
            raise ValueError(
                f"route must end on an exit road, ends on {route[-1]!r}"
            )

    def total_capacity(self) -> int:
        """Sum of all road capacities (a bound for total vehicles queued)."""
        return sum(road.capacity for road in self.roads.values())
