"""The counts-based mesoscopic engine (``"meso-counts"``).

The reference :class:`~repro.meso.simulator.MesoSimulator` animates the
Sec.-II store-and-forward dynamics with one Python object per vehicle —
faithful, but the per-vehicle bookkeeping (queue deques of entities,
per-vehicle metric records, a transit heap) dominates its runtime.  Yet
Eq. 2 — ``q(k+1) = q(k) + A - S`` — is defined on *queue counts*: the
dynamics never need vehicle identity, only each queued unit's remaining
route.

:class:`CountsSimulator` therefore re-implements the identical dynamics
on count-style structures:

* per-movement queues hold lightweight route cursors (a shared route
  list plus a leg index) instead of vehicle entities;
* transit on a road is a plain FIFO of ``(ready_time, route, leg)``
  cohorts — free-flow time is constant per road and the clock is
  monotone, so arrival order *is* ready order and the reference
  engine's heap degenerates to a ring buffer;
* metrics are aggregate: an
  :class:`~repro.metrics.aggregate.AggregateMetricsCollector`
  integrates waiting/in-network counts per mini-slot (exact totals,
  Little's-law travel-time estimate) instead of per-vehicle records.

**Equivalence.**  All randomness is drawn from the same
:class:`~repro.util.rng.RngStreams` layout in the same order as the
reference engine — per-entry Poisson counts from ``arrivals/<road>``
and a full per-vehicle route from ``routing`` at injection time — and
every service decision replicates the reference's arithmetic
(service-credit accrual and banking, start-up lost time, downstream
space, transition phases).  Under a shared seed the two engines
produce step-for-step identical queue-count trajectories, observations
and utilization books; the parity suite in
``tests/test_engine_parity.py`` asserts exactly that.

**Limits.**  Only the paper's default ``dedicated`` lane policy is
supported (the mixed shared-FIFO lane of Sec. IV-Q4 is inherently
per-vehicle: head-of-line blocking depends on the head's identity);
per-vehicle delay percentiles/maxima are unavailable — summaries carry
``delay_mode="aggregate"``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.engine import register_engine
from repro.metrics.aggregate import AggregateMetricsCollector
from repro.metrics.utilization import UtilizationTracker
from repro.model.arrivals import ArrivalSchedule, PoissonArrivals
from repro.model.network import BOUNDARY, Network
from repro.model.phases import TRANSITION_PHASE_INDEX
from repro.model.queues import QueueObservation
from repro.model.routing import RouteSampler, TurningProbabilities
from repro.util.rng import RngStreams
from repro.util.validation import check_non_negative, check_positive

__all__ = ["CountsSimulator"]

#: A queued/transiting unit: ``(ready_time, route, leg)`` — the vehicle
#: is on ``route[leg]`` and heads to ``route[leg + 1]`` next.  The same
#: triple object flows from transit into a movement queue unchanged
#: (``ready_time`` is simply ignored there), so promotion allocates
#: nothing.
_Unit = Tuple[float, List[str], int]


class CountsSimulator:
    """Counts-based store-and-forward simulation of a signalized network.

    Accepts the same plant parameters as the reference
    :class:`~repro.meso.simulator.MesoSimulator` (minus ``lane_policy``
    — see the module docstring) and produces, under a shared seed, the
    identical queue-count trajectory.
    """

    OUT_QUEUE_MODES = ("spillback", "halting", "occupancy")

    def __init__(
        self,
        network: Network,
        demand: Mapping[str, ArrivalSchedule],
        turning: TurningProbabilities,
        seed: int = 0,
        travel_time: Optional[float] = None,
        startup_lost: float = 2.0,
        sensing_horizon: float = 2.0,
        saturation_headway: Optional[float] = 1.3,
        out_queue_mode: str = "spillback",
    ):
        self.network = network
        self.time = 0.0
        self.collector = AggregateMetricsCollector()
        if travel_time is not None:
            check_non_negative("travel_time", travel_time)
        check_non_negative("startup_lost", startup_lost)
        self._startup_lost = startup_lost
        check_non_negative("sensing_horizon", sensing_horizon)
        self._sensing_horizon = sensing_horizon
        if saturation_headway is not None:
            check_positive("saturation_headway", saturation_headway)
        if out_queue_mode not in self.OUT_QUEUE_MODES:
            raise ValueError(
                f"out_queue_mode must be one of {self.OUT_QUEUE_MODES}, "
                f"got {out_queue_mode!r}"
            )
        self._out_queue_mode = out_queue_mode

        # Same stream layout and creation order as the reference engine,
        # so shared seeds yield identical draws.
        streams = RngStreams(seed)
        self.router = RouteSampler(network, turning, streams.get("routing"))
        entry_roads = set(network.entry_roads())
        unknown = set(demand) - entry_roads
        if unknown:
            raise ValueError(
                f"demand declared on non-entry roads: {sorted(unknown)}"
            )
        self._arrivals: Dict[str, PoissonArrivals] = {
            road: PoissonArrivals(schedule, streams.get(f"arrivals/{road}"))
            for road, schedule in demand.items()
        }

        # -- static per-road state ----------------------------------------
        self._capacity: Dict[str, int] = {
            road_id: road.capacity for road_id, road in network.roads.items()
        }
        self._is_exit: Dict[str, bool] = {
            road_id: network.road_destination[road_id] == BOUNDARY
            for road_id in network.roads
        }
        self._transit_time: Dict[str, float] = {
            road_id: (
                travel_time
                if travel_time is not None
                else road.free_flow_time
            )
            for road_id, road in network.roads.items()
        }

        # -- dynamic per-road state ----------------------------------------
        #: Vehicles on each road (transit + queued); counts against W_i.
        self._occupancy: Dict[str, int] = {r: 0 for r in network.roads}
        #: FIFO of units rolling towards the stop line, per road.
        self._transit: Dict[str, Deque[_Unit]] = {
            r: deque() for r in network.roads
        }
        #: Movement queues: in_road -> out_road -> FIFO of units.
        self._lanes: Dict[str, Dict[str, Deque[_Unit]]] = {}
        #: Live movement-queue lengths per intersection, maintained
        #: incrementally on promote/serve so ``observations`` copies a
        #: ready dict instead of re-measuring every lane every step.
        self._queue_counts: Dict[str, Dict[Tuple[str, str], int]] = {}
        #: The intersection's count dict and interned movement keys for
        #: each incoming road (promotions bump these).
        counts_of_road: Dict[str, Dict[Tuple[str, str], int]] = {}
        keys_of_road: Dict[str, Dict[str, Tuple[str, str]]] = {}
        for node_id, intersection in network.intersections.items():
            counts = {key: 0 for key in intersection.movements}
            self._queue_counts[node_id] = counts
            for key in intersection.movements:
                in_road, out_road = key
                self._lanes.setdefault(in_road, {}).setdefault(
                    out_road, deque()
                )
                counts_of_road[in_road] = counts
                keys_of_road.setdefault(in_road, {})[out_road] = key
        #: Roads currently at capacity (spillback sensors read their
        #: occupancy); maintained at every occupancy mutation site.
        self._full_roads: set = set()
        #: (slot, transit FIFO, lane map, count dict, out_road ->
        #: movement key) per road that feeds an intersection.
        self._promotable: List[tuple] = [
            (
                slot,
                self._transit[road_id],
                lanes,
                counts_of_road[road_id],
                keys_of_road[road_id],
            )
            for slot, (road_id, lanes) in enumerate(self._lanes.items())
        ]
        #: Promotable-slot index of each non-exit road.
        self._road_slot: Dict[str, int] = {
            road_id: slot for slot, road_id in enumerate(self._lanes)
        }
        #: Cached ready time of each promotable road's transit head
        #: (inf = empty): promotion and sensing test one float instead
        #: of indexing into the deque.  Maintained at the three
        #: mutation sites: promote (pops), serve and inject (appends
        #: to an empty FIFO — appends to a non-empty FIFO cannot change
        #: the head because ready times are monotone per road).
        self._head_ready: List[float] = [float("inf")] * len(self._lanes)

        # Backlog: vehicles generated while their entry road was full,
        # as (generation_time, route) pairs — depart delay counts as
        # queuing time, exactly as in the reference engine.
        self._backlog: Dict[str, Deque[Tuple[float, List[str]]]] = {
            road: deque() for road in self._arrivals
        }

        # -- aggregate counters (the "q(k)" of Eq. 2) ----------------------
        self._queued_total = 0
        self._backlog_total = 0
        self._in_network = 0

        # -- control-side state (semantics identical to the reference:
        # flat arrays indexed by movement/intersection position instead
        # of tuple-keyed dicts; a reset-to-zero entry is the reference's
        # popped entry) ----------------------------------------------------
        self._movement_index: Dict[Tuple[str, str], int] = {}
        for intersection in network.intersections.values():
            for key in intersection.movements:
                self._movement_index[key] = len(self._movement_index)
        self._credit: List[float] = [0.0] * len(self._movement_index)
        self._active_phase: List[Optional[int]] = [None] * len(
            network.intersections
        )
        self._phase_started: List[float] = [0.0] * len(network.intersections)
        self.utilization: Dict[str, UtilizationTracker] = {
            node_id: UtilizationTracker(node_id)
            for node_id in network.intersections
        }
        self._finalized = False

        # -- precomputed serve/observe plans -------------------------------
        saturation_rate = (
            None if saturation_headway is None else 1.0 / saturation_headway
        )
        # Per intersection: (node_id, position, intersection, tracker,
        # movement credit indices, {phase_index: (service_rate_sum,
        # [movement plan, ...])}, live count dict).  A movement plan
        # carries everything the inlined serve loop touches: (credit
        # index, count key, in_road, lane FIFO, out is exit, out road,
        # out capacity, discharge rate, out transit time, out transit
        # FIFO).
        self._serve_plan = []
        for position, (node_id, intersection) in enumerate(
            network.intersections.items()
        ):
            phase_plans = {}
            for phase in intersection.phases:
                movements = []
                for m in phase.movements:
                    out_is_exit = self._is_exit[m.out_road]
                    movements.append(
                        (
                            self._movement_index[m.key],
                            m.key,
                            m.in_road,
                            self._lanes[m.in_road][m.out_road],
                            out_is_exit,
                            m.out_road,
                            self._capacity[m.out_road],
                            (
                                m.service_rate
                                if saturation_rate is None
                                else saturation_rate
                            ),
                            self._transit_time[m.out_road],
                            self._transit[m.out_road],
                            -1 if out_is_exit else self._road_slot[m.out_road],
                        )
                    )
                rate_sum = sum(m.service_rate for m in phase.movements)
                phase_plans[phase.index] = (rate_sum, movements)
            self._serve_plan.append(
                (
                    node_id,
                    position,
                    intersection,
                    self.utilization[node_id],
                    [
                        self._movement_index[key]
                        for key in intersection.movements
                    ],
                    phase_plans,
                    self._queue_counts[node_id],
                )
            )
        # Per intersection: (node_id, live count dict, [(transit FIFO,
        # out_road -> movement key), ...] for sensing, [(out road,
        # capacity, is exit), ...], all-zero out-queue map for the
        # nothing-congested fast path, static capacity map).
        self._obs_plan = []
        for node_id, intersection in network.intersections.items():
            in_roads = dict.fromkeys(i for i, _ in intersection.movements)
            sensing = [
                (
                    self._road_slot[in_road],
                    self._transit[in_road],
                    keys_of_road[in_road],
                )
                for in_road in in_roads
            ]
            out_static = [
                (r, self._capacity[r], self._is_exit[r])
                for r in intersection.out_roads
            ]
            self._obs_plan.append(
                (
                    node_id,
                    self._queue_counts[node_id],
                    sensing,
                    out_static,
                    {r: 0 for r, _, _ in out_static},
                    {r: c for r, c, _ in out_static},
                )
            )
        # Injection plan: (entry road, arrival process, backlog FIFO,
        # entry transit FIFO, entry transit time, entry transit slot).
        self._inject_plan = [
            (
                road,
                process,
                self._backlog[road],
                self._transit[road],
                self._transit_time[road],
                self._road_slot[road],
            )
            for road, process in self._arrivals.items()
        ]

    # -- observation -------------------------------------------------------

    def observations(self) -> Dict[str, QueueObservation]:
        """Build ``Q(k)`` for every intersection at the current time.

        Hot path notes: movement queues are materialized with one
        C-level ``dict(zip(...))`` per intersection and then corrected
        sparsely for sensed (approaching) vehicles — transit FIFOs are
        ordered by ready time, so the sensor scan stops at the first
        unit beyond the horizon instead of touching every transit unit
        the way the reference engine's heap scan must.
        """
        now = self.time
        deadline = now + self._sensing_horizon
        occupancy = self._occupancy
        head_ready = self._head_ready
        spillback = self._out_queue_mode == "spillback"
        nothing_full = spillback and not self._full_roads
        trusted = QueueObservation.trusted
        result: Dict[str, QueueObservation] = {}
        for node_id, counts, sensing, out_static, zeros, out_caps in (
            self._obs_plan
        ):
            movement_queues = counts.copy()
            for slot, transit, key_by_out in sensing:
                if head_ready[slot] <= deadline:
                    for ready, route, leg in transit:
                        if ready > deadline:
                            break
                        movement_queues[key_by_out[route[leg + 1]]] += 1
            if nothing_full:
                out_queues = zeros
            elif spillback:
                out_queues = {}
                for road_id, cap, is_exit in out_static:
                    occ = 0 if is_exit else occupancy[road_id]
                    out_queues[road_id] = occ if occ >= cap else 0
            else:
                out_queues = {
                    road_id: self._sensed_out_queue(road_id)
                    for road_id, _, _ in out_static
                }
            result[node_id] = trusted(
                now, movement_queues, out_queues, out_caps
            )
        return result

    def _sensed_out_queue(self, road_id: str) -> int:
        """``q_{i'}`` as reported by the outgoing road's sensor."""
        if self._is_exit[road_id]:
            return 0  # exit roads are drained by the outside world
        if self._out_queue_mode == "occupancy":
            return self._occupancy[road_id]
        if self._out_queue_mode == "halting":
            return self.incoming_queue_total(road_id)
        # "spillback": the road reads empty from the junction mouth
        # until congestion backs up to it.
        occupancy = self._occupancy[road_id]
        if occupancy >= self._capacity[road_id]:
            return occupancy
        return 0

    # -- stepping ----------------------------------------------------------

    def step(self, dt: float, phases: Mapping[str, int]) -> None:
        """Advance the simulation by ``dt`` under the given phases.

        ``phases`` maps node id to the applied phase index (0 = amber);
        missing intersections show amber, as in the reference engine.
        """
        check_positive("dt", dt)
        if self._finalized:
            raise RuntimeError("simulator already finalized")
        self._promote(self.time)
        self._serve(dt, phases)
        self._inject(dt)
        self.time += dt
        collector = self.collector
        collector.record_interval(
            dt, self._queued_total + self._backlog_total, self._in_network
        )
        collector.advance(self.time)

    def _promote(self, now: float) -> None:
        """Move transit units that reached the stop line into their lanes."""
        promoted = 0
        head_ready = self._head_ready
        for entry in self._promotable:
            if head_ready[entry[0]] > now:
                continue  # idle road: skip without unpacking the plan
            slot, transit, lanes, counts, key_by_out = entry
            while transit and transit[0][0] <= now:
                unit = transit.popleft()
                next_road = unit[1][unit[2] + 1]
                lanes[next_road].append(unit)
                counts[key_by_out[next_road]] += 1
                promoted += 1
            head_ready[slot] = transit[0][0] if transit else float("inf")
        self._queued_total += promoted

    def _serve(self, dt: float, phases: Mapping[str, int]) -> None:
        """Serve every intersection's applied phase for one mini-slot.

        The per-movement logic is inlined (it runs ~50 times per step
        on a 4x4 grid) but replicates the reference engine's
        ``_serve_movement`` arithmetic term for term: service-credit
        accrual and banking, downstream-space limits, and the
        utilization books — ``record_slot`` unrolled onto the tracker
        fields with identical semantics.
        """
        credit = self._credit
        active = self._active_phase
        started = self._phase_started
        occupancy = self._occupancy
        full_roads = self._full_roads
        now = self.time
        startup_lost = self._startup_lost
        queued_delta = 0
        left_delta = 0
        for (
            node_id,
            position,
            intersection,
            tracker,
            credit_indices,
            plans,
            counts,
        ) in self._serve_plan:
            phase_index = phases.get(node_id, TRANSITION_PHASE_INDEX)
            if phase_index != active[position]:
                # Phase switch: queue discharge restarts, so unused
                # service credit must not carry over.
                active[position] = phase_index
                started[position] = now
                for index in credit_indices:
                    credit[index] = 0.0
            if phase_index == TRANSITION_PHASE_INDEX:
                tracker.amber_time += dt
                continue
            plan = plans.get(phase_index)
            if plan is None:
                intersection.phase_by_index(phase_index)  # raises KeyError
            rate_sum, movements = plan
            max_service = rate_sum * dt
            tracker.green_time += dt
            tracker.green_slots += 1
            tracker.service_capacity += max_service
            if now - started[position] < startup_lost:
                # Start-up lost time: drivers are still reacting and
                # accelerating; nothing crosses the stop line yet (the
                # slot counts as wasted green, as in the reference).
                tracker.wasted_green_slots += 1
                continue
            served_total = 0
            had_servable = False
            for (
                index,
                key,
                in_road,
                lane,
                out_is_exit,
                out_road,
                out_capacity,
                rate,
                out_transit_time,
                out_transit,
                out_slot,
            ) in movements:
                queued = len(lane)
                value = credit[index] + rate * dt
                if out_is_exit:
                    if queued:
                        had_servable = True
                    bound = value if value < queued else queued
                    limit = int(bound)
                    if limit:
                        for _ in range(limit):
                            lane.popleft()
                        counts[key] -= limit
                        occupancy[in_road] -= limit
                        queued_delta -= limit
                        left_delta += limit
                        value -= limit
                        if full_roads:
                            full_roads.discard(in_road)
                else:
                    space = out_capacity - occupancy[out_road]
                    if queued and space > 0:
                        had_servable = True
                    bound = value if value < queued else queued
                    if space < bound:
                        bound = space
                    limit = int(bound)
                    if limit:
                        ready = now + out_transit_time
                        if not out_transit:
                            self._head_ready[out_slot] = ready
                        push = out_transit.append
                        for _ in range(limit):
                            unit = lane.popleft()
                            push((ready, unit[1], unit[2] + 1))
                        counts[key] -= limit
                        occupancy[in_road] -= limit
                        occupancy[out_road] += limit
                        queued_delta -= limit
                        value -= limit
                        if space == limit:
                            full_roads.add(out_road)
                        if full_roads:
                            full_roads.discard(in_road)
                served_total += limit
                # Do not bank more than one slot of unused service: an
                # idle or blocked movement must not burst beyond one
                # slot's worth later.
                bank = rate * dt
                if bank < 1.0:
                    bank = 1.0
                credit[index] = value if value < bank else bank
            tracker.vehicles_served += served_total
            if served_total == 0 and not had_servable:
                tracker.wasted_green_slots += 1
        self._queued_total += queued_delta
        if left_delta:
            self._in_network -= left_delta
            self.collector.vehicles_left += left_delta

    def _inject(self, dt: float) -> None:
        now = self.time
        occupancy = self._occupancy
        capacity = self._capacity
        sample_route = self.router.sample_route
        total_entered = 0
        for entry, process, backlog, transit, transit_time, slot in (
            self._inject_plan
        ):
            count = process.sample_count(now, dt)
            if count:
                for _ in range(count):
                    backlog.append((now, sample_route(entry)))
                self._backlog_total += count
            if not backlog:
                continue
            space = capacity[entry] - occupancy[entry]
            if space <= 0:
                continue
            ready = now + transit_time
            if not transit:
                self._head_ready[slot] = ready
            admitted = 0
            while backlog and admitted < space:
                _, route = backlog.popleft()
                transit.append((ready, route, 0))
                admitted += 1
            if admitted:
                occupancy[entry] += admitted
                self._backlog_total -= admitted
                total_entered += admitted
                if admitted == space:
                    self._full_roads.add(entry)
        if total_entered:
            self._in_network += total_entered
            self.collector.vehicles_entered += total_entered

    # -- termination and introspection --------------------------------------

    def finalize(self) -> None:
        """Close the aggregate books (idempotent).

        The waiting-time integral already covers vehicles still queued
        or backlogged; only the entered count needs the reference
        engine's end-of-run treatment of gated vehicles.
        """
        if self._finalized:
            return
        self._finalized = True
        self.collector.absorb_backlog(self._backlog_total)

    def road_occupancy(self, road_id: str) -> int:
        """Vehicles currently on a road (transit + queued)."""
        return self._occupancy[road_id]

    def movement_queue(self, in_road: str, out_road: str) -> int:
        """Current length of one dedicated movement queue."""
        lanes = self._lanes.get(in_road)
        if lanes is None:
            return 0
        lane = lanes.get(out_road)
        return len(lane) if lane is not None else 0

    def incoming_queue_total(self, in_road: str) -> int:
        """Total queued vehicles at the stop line of ``in_road``."""
        lanes = self._lanes.get(in_road)
        if lanes is None:
            return 0
        return sum(len(lane) for lane in lanes.values())

    def vehicles_in_network(self) -> int:
        """Total vehicles currently inside the network."""
        return self._in_network

    def backlog_size(self) -> int:
        """Vehicles generated but still waiting outside a full entry."""
        return self._backlog_total


def _build_counts(scenario) -> CountsSimulator:
    # ``scenario`` is a repro.scenarios.core.Scenario; typed loosely to
    # keep the engine layer import-independent of the scenario layer.
    return CountsSimulator(
        network=scenario.network,
        demand=scenario.demand,
        turning=scenario.turning,
        seed=scenario.seed,
    )


register_engine("meso-counts", _build_counts)
