"""The event-driven mesoscopic engine (``"meso-events"``).

Every stepped engine — ``meso``, ``meso-counts``, ``meso-vec`` — pays
for every mini-slot on every road and intersection, even when nothing
moves.  In the light-load, large-grid regime of the paper's stability
experiments most of that work is idle: on ``steady-10x10`` at load
0.10 only ~7 of 100 intersections have a vehicle queued in their
active phase on a typical slot.  :class:`EventCountsSimulator` is a
discrete-event reformulation of :class:`~repro.meso.counts.
CountsSimulator` that does work only where state can change, while
producing bit-for-bit the same trajectory.

Event-loop design
-----------------

The engine keeps a single **calendar queue** (:class:`EventCalendar`,
a ``heapq`` of ``(time, priority, seq)`` keys) holding three typed
events:

* **transit head-ready** (``PRIO_PROMOTE``): the earliest time a
  road's leading transit cohort reaches the stop line.  Free-flow time
  is constant per road and the clock is monotone, so each road needs
  at most one live entry — pushed when a unit enters an *empty*
  transit FIFO or when a promotion leaves residue behind.
* **arrival-window refill** (``PRIO_REFILL``): Poisson counts for all
  demand roads are pre-drawn one window (:data:`ARRIVAL_WINDOW` slots)
  at a time via :meth:`~repro.model.arrivals.PoissonArrivals.
  sample_nonzero_block` — bit-identical draws to the per-slot calls,
  but zero-count slots (the vast majority at low load, and *every*
  slot of a zero-rate tidal phase) schedule no event at all.
* **segment arrival batch** (``PRIO_ARRIVAL``): one event per slot
  that actually receives vehicles, carrying ``(road, count)``.

Ties are broken by ``(time, priority, seq)`` — promote < refill <
arrival, then insertion order — so the pop order is explicit, stable,
and independent of payload contents (the monotone ``seq`` guarantees
payloads are never compared).

Each ``step(dt, phases)`` then touches only:

* events due at the current slot (popped once, up front — a refill is
  expanded inline so same-slot arrivals it schedules are still seen);
* **phase switches**, detected by comparing ``phases`` against a
  snapshot of the previously applied mapping (a dict-equality check;
  on change slots, a full scan re-derives each intersection's mode);
* **active intersections** — those with a vehicle queued in a
  movement of their current green phase.  Only these can serve, and
  only serving mutates shared state (occupancy, downstream transit,
  the full-roads set), so skipping the rest is exact.  The serve
  arithmetic is the counts engine's, term for term, and active nodes
  run in the same canonical intersection order, preserving within-slot
  downstream-space coupling.
* **controller decision points and metric samples** are the slot grid
  itself: the engine is still driven slot-by-slot through the
  ``SimulationEngine`` protocol (decisions may change at any slot), so
  traces land on exactly the fixed grid the other engines use.

Everything an idle intersection would have accrued — green/amber
time, service capacity, wasted-slot counts, service-credit banking —
is deferred as a *lazy span* and flushed on the next mode change (or
``finalize``).  Flushes use closed forms ``n * x`` only where binary
arithmetic makes them exact (dyadic increments); non-dyadic constants
(e.g. the 1/1.3 saturation rate) and credit banking are replayed with
the engine's own per-slot recurrence, with an early exit once the
credit hits its bank fixed point.  The waiting/in-network integrals of
the aggregate collector are likewise coalesced into spans between
count changes.

**Contract.**  The mini-slot must stay constant across the run (like
``meso-vec``).  If the first ``dt`` is not binary-exact (integers,
halves, quarters...), the lazy closed forms above would drift in the
last ulp, so the engine permanently falls back to per-slot
``CountsSimulator.step`` — still bit-exact, just not event-driven.
The parity suite in ``tests/test_engine_parity.py`` asserts closed-
and open-loop equality with ``meso``/``meso-counts`` under shared
seeds; ``tests/test_meso_events.py`` covers the calendar ordering and
the lazy-flush bookkeeping.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Mapping, Optional

from repro.core.engine import register_engine
from repro.meso.counts import CountsSimulator
from repro.model.phases import TRANSITION_PHASE_INDEX
from repro.util.validation import check_positive

__all__ = [
    "EventCalendar",
    "EventCountsSimulator",
    "PRIO_PROMOTE",
    "PRIO_REFILL",
    "PRIO_ARRIVAL",
    "ARRIVAL_WINDOW",
]

#: Event priorities: transit promotions before arrival-window refills
#: before arrival batches at the same instant.
PRIO_PROMOTE = 0
PRIO_REFILL = 1
PRIO_ARRIVAL = 2

#: Mini-slots of Poisson counts pre-drawn per arrival window.
ARRIVAL_WINDOW = 256

#: Intersection modes between events.
_MODE_AMBER = 0  # transition phase applied; amber time accrues lazily
_MODE_IDLE = 1  # green, but no vehicle queued in the phase's movements
_MODE_ACTIVE = 2  # green with queued vehicles; served eagerly each slot

_INF = float("inf")


class EventCalendar:
    """A heapq calendar with explicit ``(time, priority, seq)`` order.

    ``seq`` is a monotone insertion counter, so (a) equal
    ``(time, priority)`` entries pop in push order and (b) payloads
    are never compared by the heap.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, priority: int, payload) -> None:
        """Schedule ``payload`` at ``time`` with the given priority."""
        self._seq += 1
        heappush(self._heap, (time, priority, self._seq, payload))

    def peek_time(self) -> float:
        """Time of the earliest event (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else _INF

    def pop(self) -> tuple:
        """Pop and return the earliest ``(time, priority, seq, payload)``."""
        return heappop(self._heap)


def _is_dyadic(value: float) -> bool:
    """Whether ``value`` is an exact multiple of 2**-20.

    Same gate as :class:`~repro.model.arrivals.PoissonArrivals`
    batching: sums and products of such values (within range) round to
    nothing, so lazy closed forms equal per-slot accumulation bit for
    bit.
    """
    return (value * 1048576.0).is_integer()


class EventCountsSimulator(CountsSimulator):
    """Event-driven counts simulator (see module docstring).

    Accepts the same plant parameters as
    :class:`~repro.meso.counts.CountsSimulator` and produces, under a
    shared seed and a constant binary-exact mini-slot, the identical
    trajectory — observations, occupancy, utilization books, metric
    integrals — while skipping all idle work.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._calendar = EventCalendar()
        #: Constant mini-slot, fixed by the first ``step`` call.
        self._dt: Optional[float] = None
        #: Slot index == number of steps taken (slot ``k`` starts at
        #: ``k * dt``, which the accumulated ``self.time`` equals
        #: exactly for dyadic ``dt``).
        self._slot = 0
        #: Non-dyadic mini-slot: delegate every step to the parent.
        self._per_slot_fallback = False
        #: Snapshot of the last applied phase mapping (a *copy*, so
        #: callers that mutate their dict in place are still detected).
        self._last_phases: Optional[Dict[str, int]] = None
        #: First slot offset (since phase start) past startup lost time.
        self._startup_slots = 0

        n_nodes = len(self._serve_plan)
        #: Per-(node, phase) cached flush constants (lazy; needs dt).
        self._flush_plans: List[Dict[int, tuple]] = [
            {} for _ in range(n_nodes)
        ]
        #: ``(max_service, movements)`` of each currently-active
        #: node's phase, set at activation so the serve loop skips the
        #: per-slot plan lookup (stale entries are never read: the
        #: serve loop only visits ``_active_set`` members).
        self._active_plan: List[Optional[tuple]] = [None] * n_nodes
        self._mode: List[int] = [_MODE_AMBER] * n_nodes
        #: Slot the current lazy span begins at (amber / green-idle).
        self._span_start: List[int] = [0] * n_nodes
        #: Slot the current phase was applied at (for startup replay).
        self._started_slot: List[int] = [0] * n_nodes
        self._active_set: set = set()

        #: Serve position of the intersection each promotable road
        #: feeds (a road ends at exactly one intersection).
        pos_of_in_road: Dict[str, int] = {}
        for entry in self._serve_plan:
            for key in entry[2].movements:
                pos_of_in_road[key[0]] = entry[1]
        self._slot_to_pos: List[int] = [
            pos_of_in_road[road_id] for road_id in self._lanes
        ]

        #: Demand roads with a non-empty backlog (admission must be
        #: re-attempted every slot, as the parent does).
        self._backlogged: set = set()
        #: Pre-drawn-window cursor: first slot / start time of the
        #: *next* window to draw.
        self._next_window_slot = 0
        self._next_window_time = 0.0
        self._window_times: List[float] = []

        # Aggregate-collector span (waiting/in-network integrals).
        self._mspan_slots = 0
        self._mspan_waiting = 0
        self._mspan_in_network = 0

    # -- arrival windows ---------------------------------------------------

    def _draw_arrival_window(self) -> None:
        """Pre-draw one window of Poisson counts for every demand road.

        Consumes each road's private arrival stream exactly as the
        per-slot calls would (the block API is draw-for-draw
        identical) and schedules one calendar event per slot that
        actually receives vehicles.
        """
        dt = self._dt
        times = self._window_times
        times.clear()
        t = self._next_window_time
        for _ in range(ARRIVAL_WINDOW):
            times.append(t)
            t += dt
        calendar = self._calendar
        for idx, plan in enumerate(self._inject_plan):
            for j, count in plan[1].sample_nonzero_block(times, dt):
                calendar.push(times[j], PRIO_ARRIVAL, (idx, count))
        self._next_window_slot += ARRIVAL_WINDOW
        self._next_window_time = t
        calendar.push(t, PRIO_REFILL, None)

    # -- lazy-span flushing ------------------------------------------------
    #
    # Exactness of the closed forms below: with a dyadic ``dt`` (and
    # dyadic per-slot increments), every partial sum the parent engine
    # would have formed is an exact multiple of 2**-20, so the
    # ``slots * increment`` shortcut rounds identically — for any
    # total below 2**33 (an 8-billion-second horizon; far beyond any
    # run).  Non-dyadic increments (the 1/1.3 saturation rate) are
    # replayed slot by slot instead.

    def _phase_plan_dt(self, position: int, phase_index: int) -> tuple:
        """Cached per-(node, phase) plan with the constant ``dt`` folded in.

        ``(max_service, max_service_is_dyadic, credit_replay,
        movements)`` where ``credit_replay`` is ``[(credit index,
        per-slot credit increment, bank), ...]`` and ``movements``
        mirrors the parent's serve-plan tuples with ``rate * dt`` and
        the bank precomputed: ``(credit index, count key, in_road,
        lane, out_is_exit, out_road, out_capacity, credit increment,
        bank, out_transit_time, out_transit FIFO, out_slot)``.
        Computable only once ``dt`` is known, hence cached lazily.
        """
        cache = self._flush_plans[position]
        plan = cache.get(phase_index)
        if plan is None:
            dt = self._dt
            rate_sum, movements = self._serve_plan[position][5][phase_index]
            replay = []
            folded = []
            for movement in movements:
                credit_increment = movement[7] * dt
                bank = credit_increment if credit_increment > 1.0 else 1.0
                if credit_increment != 0.0:
                    replay.append((movement[0], credit_increment, bank))
                folded.append(
                    movement[:7] + (credit_increment, bank) + movement[8:]
                )
            max_service = rate_sum * dt
            plan = (max_service, _is_dyadic(max_service), replay, folded)
            cache[phase_index] = plan
        return plan

    def _flush_node_span(
        self, position: int, end_slot: int, replay_credits: bool
    ) -> None:
        """Flush the lazy amber/green-idle span of one intersection.

        Covers slots ``[span_start, end_slot)``; the utilization books
        and (for green spans) the movement credits end up exactly as
        if the parent engine had stepped each slot.  Credit replay is
        skipped when the caller is about to reset the credits anyway
        (a phase switch discards banked credit in both engines).
        """
        slots = end_slot - self._span_start[position]
        if slots <= 0:
            return
        self._span_start[position] = end_slot
        tracker = self._serve_plan[position][3]
        dt = self._dt
        if self._mode[position] == _MODE_AMBER:
            tracker.amber_time += slots * dt
            return
        increment, exact, replay_plan, _ = self._phase_plan_dt(
            position, self._active_phase[position]
        )
        tracker.green_time += slots * dt
        tracker.green_slots += slots
        if exact:
            tracker.service_capacity += slots * increment
        else:
            value = tracker.service_capacity
            for _ in range(slots):
                value += increment
            tracker.service_capacity = value
        # Every empty-lane green slot is wasted, in startup or not.
        tracker.wasted_green_slots += slots
        if replay_credits and replay_plan:
            # Idle credit follows ``c <- min(c + increment, bank)`` —
            # monotone to the bank fixed point, so the replay exits
            # after a few slots regardless of span length.
            first_served = self._started_slot[position] + self._startup_slots
            if first_served < end_slot - slots:
                first_served = end_slot - slots
            remaining = end_slot - first_served
            if remaining > 0:
                credit = self._credit
                for index, credit_increment, bank in replay_plan:
                    value = credit[index]
                    if value == bank:
                        continue
                    left = remaining
                    while left > 0:
                        total = value + credit_increment
                        value = total if total < bank else bank
                        if value == bank:
                            break
                        left -= 1
                    credit[index] = value

    def _flush_metrics_span(self) -> None:
        if self._mspan_slots:
            self.collector.record_interval(
                self._mspan_slots * self._dt,
                self._mspan_waiting,
                self._mspan_in_network,
            )
            self._mspan_slots = 0

    # -- phase bookkeeping -------------------------------------------------

    def _phase_lanes_queued(self, movements) -> bool:
        """Whether any movement of a green phase has a queued vehicle."""
        for movement in movements:
            if movement[3]:
                return True
        return False

    def _apply_phases(self, phases: Mapping[str, int]) -> None:
        """Re-derive every intersection's mode from a new phase mapping.

        Runs only on slots where ``phases`` differs from the snapshot
        of the previous mapping.  Mirrors the parent's switch handling:
        the old span is flushed, credits reset, startup restarts.
        """
        now = self.time
        slot = self._slot
        active = self._active_phase
        started = self._phase_started
        credit = self._credit
        mode = self._mode
        get_phase = phases.get
        for entry in self._serve_plan:
            position = entry[1]
            new_phase = get_phase(entry[0], TRANSITION_PHASE_INDEX)
            if new_phase == active[position]:
                continue
            if mode[position] != _MODE_ACTIVE:
                # No credit replay: the switch resets credits below,
                # discarding whatever the idle slots would have banked
                # (exactly as the parent's per-slot reset does).
                self._flush_node_span(position, slot, False)
            else:
                self._active_set.discard(position)
            active[position] = new_phase
            started[position] = now
            self._started_slot[position] = slot
            for index in entry[4]:
                credit[index] = 0.0
            if new_phase == TRANSITION_PHASE_INDEX:
                mode[position] = _MODE_AMBER
                self._span_start[position] = slot
                continue
            plan = entry[5].get(new_phase)
            if plan is None:
                entry[2].phase_by_index(new_phase)  # raises KeyError
            if self._phase_lanes_queued(plan[1]):
                mode[position] = _MODE_ACTIVE
                self._active_set.add(position)
                folded = self._phase_plan_dt(position, new_phase)
                self._active_plan[position] = (folded[0], folded[3])
            else:
                mode[position] = _MODE_IDLE
                self._span_start[position] = slot
        self._last_phases = dict(phases)

    def _activate_if_queued(self, position: int) -> None:
        """Promote a green-idle intersection to active if a lane filled."""
        movements = self._serve_plan[position][5][
            self._active_phase[position]
        ][1]
        if not self._phase_lanes_queued(movements):
            return
        self._flush_node_span(position, self._slot, True)
        self._mode[position] = _MODE_ACTIVE
        self._active_set.add(position)
        folded = self._phase_plan_dt(
            position, self._active_phase[position]
        )
        self._active_plan[position] = (folded[0], folded[3])

    # -- stepping ----------------------------------------------------------

    def step(self, dt: float, phases: Mapping[str, int]) -> None:
        """Advance one mini-slot under the given phases.

        Same semantics as :meth:`CountsSimulator.step`, with one added
        contract: ``dt`` must stay constant across the run.
        """
        check_positive("dt", dt)
        if self._finalized:
            raise RuntimeError("simulator already finalized")
        if self._dt is None:
            self._dt = dt
            if _is_dyadic(dt):
                self._startup_slots = self._startup_offset(dt)
                self._draw_arrival_window()
            else:
                # Lazy closed forms would drift in the last ulp on a
                # non-dyadic grid; per-slot stepping stays bit-exact.
                self._per_slot_fallback = True
        elif dt != self._dt:
            raise ValueError(
                f"meso-events requires a constant mini-slot: "
                f"got {dt}, expected {self._dt}"
            )
        if self._per_slot_fallback:
            super().step(dt, phases)
            return

        now = self.time
        calendar = self._calendar
        heap = calendar._heap

        # 1. Pop every event due this slot.  Refills are expanded
        # inline so same-instant arrivals they schedule are still
        # popped; promote events land in slot order for determinism.
        due_promotes: List[int] = []
        arrival_counts: Optional[Dict[int, int]] = None
        while heap and heap[0][0] <= now:
            _, priority, _, payload = heappop(heap)
            if priority == PRIO_PROMOTE:
                due_promotes.append(payload)
            elif priority == PRIO_ARRIVAL:
                if arrival_counts is None:
                    arrival_counts = {}
                arrival_counts[payload[0]] = payload[1]
            else:
                self._draw_arrival_window()

        # 2. Transit heads that reached the stop line.
        if due_promotes:
            due_promotes.sort()
            head_ready = self._head_ready
            promotable = self._promotable
            promoted = 0
            for road_slot in due_promotes:
                slot, transit, lanes, counts, key_by_out = (
                    promotable[road_slot]
                )
                while transit and transit[0][0] <= now:
                    unit = transit.popleft()
                    next_road = unit[1][unit[2] + 1]
                    lanes[next_road].append(unit)
                    counts[key_by_out[next_road]] += 1
                    promoted += 1
                if transit:
                    head = transit[0][0]
                    head_ready[slot] = head
                    calendar.push(head, PRIO_PROMOTE, slot)
                else:
                    head_ready[slot] = _INF
            self._queued_total += promoted
            mode = self._mode
            slot_to_pos = self._slot_to_pos
            for road_slot in due_promotes:
                position = slot_to_pos[road_slot]
                if mode[position] == _MODE_IDLE:
                    self._activate_if_queued(position)

        # 3. Phase switches (cheap equality check on the common path).
        if phases != self._last_phases:
            self._apply_phases(phases)

        # 4. Serve the active intersections, in canonical order — the
        # only per-slot work that can move vehicles between roads.
        if self._active_set:
            self._serve_active(dt)

        # 5. Inject arrivals and retry blocked admissions.
        if arrival_counts is not None or self._backlogged:
            self._inject_events(arrival_counts)

        # 6. Advance the clock and the lazy metric span.
        self.time = now + dt
        self._slot += 1
        waiting = self._queued_total + self._backlog_total
        in_network = self._in_network
        if (
            waiting != self._mspan_waiting
            or in_network != self._mspan_in_network
        ):
            self._flush_metrics_span()
            self._mspan_waiting = waiting
            self._mspan_in_network = in_network
            self._mspan_slots = 1
        else:
            self._mspan_slots += 1

    def _startup_offset(self, dt: float) -> int:
        """Slots from phase start until service can begin.

        Smallest ``e`` with ``e * dt >= startup_lost`` — the parent's
        per-slot ``now - started < startup_lost`` test in closed form
        (exact: both sides are dyadic).
        """
        startup = self._startup_lost
        e = int(startup / dt)
        while e * dt < startup:
            e += 1
        while e > 0 and (e - 1) * dt >= startup:
            e -= 1
        return e

    def _serve_active(self, dt: float) -> None:
        """One slot of service at every active intersection.

        The movement arithmetic is :meth:`CountsSimulator._serve`
        verbatim (credit accrual/banking, downstream space, the
        utilization books); the phase-switch handling already ran in
        :meth:`_apply_phases`, and only intersections with a queued
        active-phase vehicle are visited.
        """
        credit = self._credit
        started = self._phase_started
        occupancy = self._occupancy
        full_roads = self._full_roads
        head_ready = self._head_ready
        calendar = self._calendar
        now = self.time
        startup_lost = self._startup_lost
        serve_plan = self._serve_plan
        queued_delta = 0
        left_delta = 0
        active_plan = self._active_plan
        for position in sorted(self._active_set):
            entry = serve_plan[position]
            tracker = entry[3]
            counts = entry[6]
            max_service, movements = active_plan[position]
            tracker.green_time += dt
            tracker.green_slots += 1
            tracker.service_capacity += max_service
            if now - started[position] < startup_lost:
                tracker.wasted_green_slots += 1
                continue
            served_total = 0
            had_servable = False
            still_queued = 0
            for (
                index,
                key,
                in_road,
                lane,
                out_is_exit,
                out_road,
                out_capacity,
                increment,
                bank,
                out_transit_time,
                out_transit,
                out_slot,
            ) in movements:
                queued = len(lane)
                value = credit[index] + increment
                if out_is_exit:
                    if queued:
                        had_servable = True
                    bound = value if value < queued else queued
                    limit = int(bound)
                    if limit:
                        for _ in range(limit):
                            lane.popleft()
                        counts[key] -= limit
                        occupancy[in_road] -= limit
                        queued_delta -= limit
                        left_delta += limit
                        value -= limit
                        if full_roads:
                            full_roads.discard(in_road)
                else:
                    space = out_capacity - occupancy[out_road]
                    if queued and space > 0:
                        had_servable = True
                    bound = value if value < queued else queued
                    if space < bound:
                        bound = space
                    limit = int(bound)
                    if limit:
                        ready = now + out_transit_time
                        if not out_transit:
                            head_ready[out_slot] = ready
                            calendar.push(ready, PRIO_PROMOTE, out_slot)
                        push = out_transit.append
                        for _ in range(limit):
                            unit = lane.popleft()
                            push((ready, unit[1], unit[2] + 1))
                        counts[key] -= limit
                        occupancy[in_road] -= limit
                        occupancy[out_road] += limit
                        queued_delta -= limit
                        value -= limit
                        if space == limit:
                            full_roads.add(out_road)
                        if full_roads:
                            full_roads.discard(in_road)
                served_total += limit
                still_queued += queued - limit
                credit[index] = value if value < bank else bank
            tracker.vehicles_served += served_total
            if served_total == 0 and not had_servable:
                tracker.wasted_green_slots += 1
            if not still_queued:
                # Drained: go lazy from the next slot (credits and
                # books are eager through this one).
                self._active_set.discard(position)
                self._mode[position] = _MODE_IDLE
                self._span_start[position] = self._slot + 1
        self._queued_total += queued_delta
        if left_delta:
            self._in_network -= left_delta
            self.collector.vehicles_left += left_delta

    def _inject_events(self, arrival_counts: Optional[Dict[int, int]]) -> None:
        """Inject this slot's arrivals and retry blocked admissions.

        Visits exactly the demand roads the parent's full scan would
        do non-trivial work on — those with a pre-drawn nonzero count
        or a standing backlog — in the same (injection-plan) order, so
        the shared routing stream is consumed identically.
        """
        if arrival_counts is None:
            indices = sorted(self._backlogged)
        elif self._backlogged:
            indices = sorted(self._backlogged.union(arrival_counts))
        else:
            indices = sorted(arrival_counts)
        now = self.time
        occupancy = self._occupancy
        capacity = self._capacity
        head_ready = self._head_ready
        calendar = self._calendar
        sample_route = self.router.sample_route
        backlogged = self._backlogged
        inject_plan = self._inject_plan
        total_entered = 0
        for idx in indices:
            entry, process, backlog, transit, transit_time, slot = (
                inject_plan[idx]
            )
            if arrival_counts is not None:
                count = arrival_counts.get(idx, 0)
                if count:
                    for _ in range(count):
                        backlog.append((now, sample_route(entry)))
                    self._backlog_total += count
            if not backlog:
                backlogged.discard(idx)
                continue
            space = capacity[entry] - occupancy[entry]
            if space <= 0:
                backlogged.add(idx)
                continue
            ready = now + transit_time
            if not transit:
                head_ready[slot] = ready
                calendar.push(ready, PRIO_PROMOTE, slot)
            admitted = 0
            while backlog and admitted < space:
                _, route = backlog.popleft()
                transit.append((ready, route, 0))
                admitted += 1
            if admitted:
                occupancy[entry] += admitted
                self._backlog_total -= admitted
                total_entered += admitted
                if admitted == space:
                    self._full_roads.add(entry)
            if backlog:
                backlogged.add(idx)
            else:
                backlogged.discard(idx)
        if total_entered:
            self._in_network += total_entered
            self.collector.vehicles_entered += total_entered

    # -- termination -------------------------------------------------------

    def finalize(self) -> None:
        """Flush every lazy span, then close the books (idempotent)."""
        if not self._finalized and self._dt is not None and (
            not self._per_slot_fallback
        ):
            slot = self._slot
            for entry in self._serve_plan:
                if self._mode[entry[1]] != _MODE_ACTIVE:
                    self._flush_node_span(entry[1], slot, True)
            self._flush_metrics_span()
            self.collector.advance(self.time)
        super().finalize()


def _build_events(scenario) -> EventCountsSimulator:
    # ``scenario`` is a repro.scenarios.core.Scenario; typed loosely to
    # keep the engine layer import-independent of the scenario layer.
    return EventCountsSimulator(
        network=scenario.network,
        demand=scenario.demand,
        turning=scenario.turning,
        seed=scenario.seed,
    )


register_engine("meso-events", _build_events)
