"""Per-road runtime state of the mesoscopic engine."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

from collections import deque

from repro.meso.vehicle import MesoVehicle
from repro.model.roads import Road

__all__ = ["RoadState"]


@dataclass
class RoadState:
    """Runtime occupancy of one road.

    A road holds vehicles in two places:

    * ``transit`` — a min-heap of ``(ready_time, seq, vehicle)``:
      vehicles traversing the road at free-flow speed towards the
      downstream stop line;
    * ``queues`` — one FIFO per movement (dedicated turning lanes) at
      the downstream intersection; empty for network-exit roads.

    ``occupancy`` (transit + queued) is what counts against the road's
    capacity ``W_i`` and what the upstream intersection observes as the
    outgoing queue ``q_{i'}``.
    """

    road: Road
    queues: Dict[str, Deque[MesoVehicle]] = field(default_factory=dict)
    transit: List[Tuple[float, int, MesoVehicle]] = field(default_factory=list)
    mixed: bool = False
    _seq: int = 0

    #: Queue key used when the road has one shared (mixed) lane.
    MIXED_LANE = "__mixed__"

    def add_movement_lane(self, out_road: str) -> None:
        """Declare a dedicated lane towards ``out_road``."""
        if self.mixed:
            raise ValueError(
                f"road {self.road.road_id!r} uses a mixed lane; cannot add "
                f"a dedicated lane"
            )
        self.queues.setdefault(out_road, deque())

    def make_mixed(self) -> None:
        """Switch the road to a single shared FIFO lane.

        Models the paper's Sec. IV-Q4 scenario: vehicles for different
        movements queue together, so a blocked head vehicle blocks
        everyone behind it (head-of-line blocking).
        """
        if self.queues and not self.mixed:
            raise ValueError(
                f"road {self.road.road_id!r} already has dedicated lanes"
            )
        self.mixed = True
        self.queues.setdefault(self.MIXED_LANE, deque())

    @property
    def mixed_queue(self) -> Deque[MesoVehicle]:
        """The shared FIFO of a mixed-lane road."""
        if not self.mixed:
            raise ValueError(f"road {self.road.road_id!r} is not mixed-lane")
        return self.queues[self.MIXED_LANE]

    def mixed_counts(self) -> Dict[str, int]:
        """Queued vehicles per movement on the shared lane."""
        counts: Dict[str, int] = {}
        for vehicle in self.mixed_queue:
            next_road = vehicle.next_road
            if next_road is not None:
                counts[next_road] = counts.get(next_road, 0) + 1
        return counts

    @property
    def occupancy(self) -> int:
        """Total vehicles on the road (in transit + queued)."""
        return len(self.transit) + sum(len(q) for q in self.queues.values())

    @property
    def remaining_space(self) -> int:
        """Vehicles that can still enter before hitting ``W_i``."""
        return self.road.capacity - self.occupancy

    def queue_length(self, out_road: str) -> int:
        """``q_i^{i'}`` — vehicles queued on the lane towards ``out_road``."""
        lane = self.queues.get(out_road)
        return len(lane) if lane is not None else 0

    def enter_transit(self, vehicle: MesoVehicle, ready_time: float) -> None:
        """Put a vehicle on the road; it reaches the stop line at ``ready_time``."""
        if self.remaining_space <= 0:
            raise ValueError(
                f"road {self.road.road_id!r} is full "
                f"(capacity {self.road.capacity})"
            )
        heapq.heappush(self.transit, (ready_time, self._seq, vehicle))
        self._seq += 1

    def promote_arrivals(self, now: float) -> List[MesoVehicle]:
        """Move transit vehicles that reached the stop line into lanes.

        Returns the promoted vehicles (their ``queued_since`` is set by
        the caller, which knows the simulation clock semantics).
        Vehicles whose next route leg has no lane here indicate a route
        inconsistency and raise.
        """
        promoted: List[MesoVehicle] = []
        while self.transit and self.transit[0][0] <= now:
            _, _, vehicle = heapq.heappop(self.transit)
            next_road = vehicle.next_road
            if next_road is None:
                raise ValueError(
                    f"vehicle {vehicle.vehicle_id} in transit on exit road "
                    f"{self.road.road_id!r} should have left the network"
                )
            lane = self.queues.get(
                self.MIXED_LANE if self.mixed else next_road
            )
            if lane is None:
                raise ValueError(
                    f"no lane {self.road.road_id!r} -> {next_road!r} "
                    f"for vehicle {vehicle.vehicle_id}"
                )
            lane.append(vehicle)
            promoted.append(vehicle)
        return promoted

    def pop_served(self, out_road: str) -> MesoVehicle:
        """Serve the head vehicle of the lane towards ``out_road``."""
        lane = self.queues.get(out_road)
        if not lane:
            raise ValueError(
                f"lane {self.road.road_id!r} -> {out_road!r} is empty"
            )
        return lane.popleft()

    def approaching(self, now: float, horizon: float) -> Dict[str, int]:
        """Transit vehicles reaching the stop line within ``horizon`` s.

        Models the coverage of a lane-area detector: vehicles close to
        the stop line are sensed as part of the queue even though they
        are still rolling.  Returns counts per movement (out road).
        """
        counts: Dict[str, int] = {}
        deadline = now + horizon
        for ready_time, _, vehicle in self.transit:
            if ready_time <= deadline and vehicle.next_road is not None:
                counts[vehicle.next_road] = counts.get(vehicle.next_road, 0) + 1
        return counts

    def iter_queued(self):
        """Yield every queued vehicle (for end-of-run accounting)."""
        for lane in self.queues.values():
            yield from lane
