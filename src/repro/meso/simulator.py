"""The mesoscopic store-and-forward network simulator.

Implements the Sec.-II dynamics literally:

* Poisson arrivals per entry road (Sec. II-B);
* queue update ``q(k+1) = q(k) + A - S`` (Eq. 2), with individual
  vehicles so queuing times can be measured;
* service limited by (i) the applied phase, (ii) the queue contents
  and (iii) the downstream capacity — the three conditions of
  Sec. II-C;
* the transition phase ``c_0`` serves nothing;
* a served vehicle spends its next road's free-flow time in transit
  before joining the dedicated lane of its next movement.

The simulator is *passive* with respect to control: every step takes
the phase decision per intersection as input.  Use
:class:`repro.experiments.runner` to close the loop with a controller.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Mapping, Optional, Tuple

from repro.core.engine import register_engine
from repro.meso.road_state import RoadState
from repro.meso.vehicle import MesoVehicle
from repro.metrics.collector import MetricsCollector
from repro.metrics.utilization import UtilizationTracker
from repro.model.arrivals import ArrivalSchedule, PoissonArrivals
from repro.model.network import BOUNDARY, Network
from repro.model.phases import TRANSITION_PHASE_INDEX
from repro.model.queues import QueueObservation
from repro.model.routing import RouteSampler, TurningProbabilities
from repro.util.rng import RngStreams
from repro.util.validation import check_non_negative, check_positive

__all__ = ["MesoSimulator"]


class MesoSimulator:
    """Store-and-forward simulation of a signalized network.

    Parameters
    ----------
    network:
        The road network.
    demand:
        Arrival schedule per entry road.  Entry roads without a
        schedule receive no traffic.
    turning:
        Turning probabilities for route sampling (Table I style).
    seed:
        Base seed; all randomness derives from it deterministically.
    travel_time:
        Free-flow transit time override in seconds.  ``None`` uses each
        road's ``length / speed_limit``; ``0`` gives the pure queuing
        abstraction with immediate hops.
    startup_lost:
        Seconds of green at the start of every phase application during
        which nothing is served — the start-up lost time of a real
        (microscopic) queue discharge.  This is what makes frequent
        phase switching costly beyond the amber itself.  Set to 0 for
        the idealized queuing model.
    sensing_horizon:
        Look-ahead of the queue sensors in seconds: a vehicle still in
        transit counts towards its movement's sensed queue once it is
        within this many seconds of the stop line, mimicking the lane
        coverage of a SUMO lane-area detector.  Set to 0 for a pure
        stop-line point sensor.
    saturation_headway:
        Seconds between consecutive vehicles discharging over the stop
        line of one lane under green (the plant's physical saturation
        flow, ~1800 veh/h/lane for 2.0 s).  This is deliberately
        *independent* of the movements' ``µ`` — the paper sets
        ``µ = 1`` as the controller-side gain constant while the SUMO
        plant discharges at its own physical rate.  ``None`` uses the
        movements' ``µ`` directly (the idealized Sec. II-C plant).
    out_queue_mode:
        What the sensor on an *outgoing* road reports as ``q_{i'}``:

        * ``"spillback"`` (default) — vehicles visible from the
          junction mouth, i.e. the road reads 0 while it still absorbs
          traffic and its occupancy once congestion backs up to the
          junction.  This matches what the upstream signal head can
          physically see and reproduces the paper's behaviour.
        * ``"halting"`` — vehicles halted at the road's downstream
          stop line (a TraCI edge halting-number sensor).
        * ``"occupancy"`` — every vehicle on the road (the idealized
          queuing model, where service puts vehicles directly into the
          downstream queue).
    lane_policy:
        ``"dedicated"`` (default) gives every movement its own turning
        lane (the paper's assumption, no head-of-line blocking);
        ``"mixed"`` queues all movements of a road in one shared FIFO,
        so a head vehicle whose movement is red (or blocked) blocks
        everyone behind it — the Sec. IV-Q4 future-work scenario.
    """

    OUT_QUEUE_MODES = ("spillback", "halting", "occupancy")
    LANE_POLICIES = ("dedicated", "mixed")

    def __init__(
        self,
        network: Network,
        demand: Mapping[str, ArrivalSchedule],
        turning: TurningProbabilities,
        seed: int = 0,
        travel_time: Optional[float] = None,
        startup_lost: float = 2.0,
        sensing_horizon: float = 2.0,
        saturation_headway: Optional[float] = 1.3,
        out_queue_mode: str = "spillback",
        lane_policy: str = "dedicated",
    ):
        self.network = network
        self.time = 0.0
        self.collector = MetricsCollector()
        if travel_time is not None:
            check_non_negative("travel_time", travel_time)
        self._travel_time = travel_time
        check_non_negative("startup_lost", startup_lost)
        self._startup_lost = startup_lost
        check_non_negative("sensing_horizon", sensing_horizon)
        self._sensing_horizon = sensing_horizon
        if saturation_headway is not None:
            check_positive("saturation_headway", saturation_headway)
        self._saturation_headway = saturation_headway
        if out_queue_mode not in self.OUT_QUEUE_MODES:
            raise ValueError(
                f"out_queue_mode must be one of {self.OUT_QUEUE_MODES}, "
                f"got {out_queue_mode!r}"
            )
        self._out_queue_mode = out_queue_mode
        if lane_policy not in self.LANE_POLICIES:
            raise ValueError(
                f"lane_policy must be one of {self.LANE_POLICIES}, "
                f"got {lane_policy!r}"
            )
        self._lane_policy = lane_policy

        streams = RngStreams(seed)
        self.router = RouteSampler(network, turning, streams.get("routing"))
        entry_roads = set(network.entry_roads())
        unknown = set(demand) - entry_roads
        if unknown:
            raise ValueError(
                f"demand declared on non-entry roads: {sorted(unknown)}"
            )
        self._arrivals: Dict[str, PoissonArrivals] = {
            road: PoissonArrivals(schedule, streams.get(f"arrivals/{road}"))
            for road, schedule in demand.items()
        }

        self._roads: Dict[str, RoadState] = {
            road_id: RoadState(road) for road_id, road in network.roads.items()
        }
        for intersection in network.intersections.values():
            for movement in intersection.movements.values():
                state = self._roads[movement.in_road]
                if lane_policy == "mixed":
                    state.make_mixed()
                else:
                    state.add_movement_lane(movement.out_road)

        # Backlog: vehicles generated while their entry road was full,
        # stored with their generation time.  Time spent here is depart
        # delay and counts as queuing time — otherwise a controller
        # could hide congestion by blocking the network entries.
        self._backlog: Dict[str, Deque[Tuple[float, MesoVehicle]]] = {
            road: deque() for road in self._arrivals
        }
        self._credit: Dict[Tuple[str, str], float] = {}
        self._active_phase: Dict[str, int] = {}
        self._phase_started: Dict[str, float] = {}
        self._next_vehicle_id = 0
        self.utilization: Dict[str, UtilizationTracker] = {
            node_id: UtilizationTracker(node_id)
            for node_id in network.intersections
        }
        self._finalized = False

    # -- observation -------------------------------------------------------

    def observations(self) -> Dict[str, QueueObservation]:
        """Build ``Q(k)`` for every intersection at the current time."""
        result: Dict[str, QueueObservation] = {}
        for node_id, intersection in self.network.intersections.items():
            movement_queues = {}
            sensed_by_road: Dict[str, Dict[str, int]] = {}
            mixed_by_road: Dict[str, Dict[str, int]] = {}
            for key in intersection.movements:
                in_road, out_road = key
                state = self._roads[in_road]
                if in_road not in sensed_by_road:
                    sensed_by_road[in_road] = state.approaching(
                        self.time, self._sensing_horizon
                    )
                    if state.mixed:
                        mixed_by_road[in_road] = state.mixed_counts()
                if state.mixed:
                    queued = mixed_by_road[in_road].get(out_road, 0)
                else:
                    queued = state.queue_length(out_road)
                movement_queues[key] = queued + sensed_by_road[in_road].get(
                    out_road, 0
                )
            out_queues = {}
            out_capacities = {}
            for road_id in intersection.out_roads:
                out_capacities[road_id] = self.network.roads[road_id].capacity
                out_queues[road_id] = self._sensed_out_queue(road_id)
            result[node_id] = QueueObservation(
                time=self.time,
                movement_queues=movement_queues,
                out_queues=out_queues,
                out_capacities=out_capacities,
            )
        return result

    def _sensed_out_queue(self, road_id: str) -> int:
        """``q_{i'}`` as reported by the outgoing road's sensor."""
        if self.network.road_destination[road_id] == BOUNDARY:
            return 0  # exit roads are drained by the outside world
        if self._out_queue_mode == "occupancy":
            return self._roads[road_id].occupancy
        if self._out_queue_mode == "halting":
            return self.incoming_queue_total(road_id)
        # "spillback": the road reads empty from the junction mouth
        # until congestion backs up to it.
        occupancy = self._roads[road_id].occupancy
        if occupancy >= self.network.roads[road_id].capacity:
            return occupancy
        return 0

    # -- stepping ----------------------------------------------------------

    def step(self, dt: float, phases: Mapping[str, int]) -> None:
        """Advance the simulation by ``dt`` under the given phases.

        ``phases`` maps node id to the applied phase index (0 = amber).
        Intersections missing from the mapping show amber (serve
        nothing) — controllers should always cover all of them.
        """
        check_positive("dt", dt)
        if self._finalized:
            raise RuntimeError("simulator already finalized")
        self._promote(self.time)
        self._serve(dt, phases)
        self._inject(dt)
        self.time += dt
        self.collector.advance(self.time)

    def _promote(self, now: float) -> None:
        for state in self._roads.values():
            if not state.queues:
                continue
            for vehicle in state.promote_arrivals(now):
                vehicle.queued_since = now

    def _serve(self, dt: float, phases: Mapping[str, int]) -> None:
        for node_id, intersection in self.network.intersections.items():
            phase_index = phases.get(node_id, TRANSITION_PHASE_INDEX)
            tracker = self.utilization[node_id]
            if phase_index != self._active_phase.get(node_id):
                # Phase switch: queue discharge restarts, so unused
                # service credit must not carry over.
                self._active_phase[node_id] = phase_index
                self._phase_started[node_id] = self.time
                for key in intersection.movements:
                    self._credit.pop(key, None)
                for in_road in intersection.in_roads:
                    self._credit.pop(("__mixed__", in_road), None)
            if phase_index == TRANSITION_PHASE_INDEX:
                tracker.record_slot(0, dt, 0.0, 0, False)
                continue
            phase = intersection.phase_by_index(phase_index)
            green_age = self.time - self._phase_started[node_id]
            if green_age < self._startup_lost:
                # Start-up lost time: drivers are still reacting and
                # accelerating; nothing crosses the stop line yet.
                tracker.record_slot(
                    phase_index,
                    dt,
                    sum(m.service_rate for m in phase.movements) * dt,
                    0,
                    False,
                )
                continue
            max_service = sum(m.service_rate for m in phase.movements) * dt
            served_total = 0
            had_servable = False
            if self._lane_policy == "mixed":
                green_keys = frozenset(m.key for m in phase.movements)
                for in_road in sorted({m.in_road for m in phase.movements}):
                    served, servable = self._serve_mixed_road(
                        intersection, in_road, green_keys, dt
                    )
                    served_total += served
                    had_servable = had_servable or servable
            else:
                for movement in phase.movements:
                    served, servable = self._serve_movement(movement, dt)
                    served_total += served
                    had_servable = had_servable or servable
            tracker.record_slot(
                phase_index, dt, max_service, served_total, had_servable
            )

    def _serve_movement(self, movement, dt: float) -> Tuple[int, bool]:
        in_state = self._roads[movement.in_road]
        queued = in_state.queue_length(movement.out_road)
        out_is_exit = (
            self.network.road_destination[movement.out_road] == BOUNDARY
        )
        out_state = self._roads[movement.out_road]
        space = math.inf if out_is_exit else out_state.remaining_space
        servable = queued > 0 and space > 0

        key = movement.key
        credit = self._credit.get(key, 0.0) + self._discharge_rate(movement) * dt
        limit = int(min(credit, queued, space if space != math.inf else credit))
        for _ in range(limit):
            vehicle = in_state.pop_served(movement.out_road)
            if vehicle.queued_since is not None:
                self.collector.add_queuing_time(
                    vehicle.vehicle_id, max(0.0, self.time - vehicle.queued_since)
                )
            if out_is_exit:
                self.collector.vehicle_left(vehicle.vehicle_id, self.time)
            else:
                vehicle.advance()
                out_state.enter_transit(
                    vehicle, self.time + self._transit_time(movement.out_road)
                )
        credit -= limit
        # Do not bank more than one slot of unused service: an idle or
        # blocked movement must not burst beyond one slot's worth later.
        self._credit[key] = min(credit, max(1.0, self._discharge_rate(movement) * dt))
        return limit, servable

    def _serve_mixed_road(
        self, intersection, in_road: str, green_keys: frozenset, dt: float
    ) -> Tuple[int, bool]:
        """Serve a shared-FIFO road: only the head vehicle can move.

        Head-of-line blocking: if the head's movement is red or its
        downstream road full, nothing behind it is served even when
        other activated movements have demand further back.
        """
        state = self._roads[in_road]
        queue = state.mixed_queue
        credit_key = ("__mixed__", in_road)
        head = queue[0] if queue else None
        rate = self._discharge_rate(
            intersection.movements[(in_road, head.next_road)]
            if head is not None and (in_road, head.next_road) in intersection.movements
            else next(iter(intersection.movements.values()))
        )
        credit = self._credit.get(credit_key, 0.0) + rate * dt
        served = 0
        servable = False
        while queue and credit >= 1.0:
            vehicle = queue[0]
            key = (in_road, vehicle.next_road)
            if key not in green_keys:
                break  # HOL blocking: red movement at the head
            out_road = vehicle.next_road
            out_is_exit = self.network.road_destination[out_road] == BOUNDARY
            out_state = self._roads[out_road]
            if not out_is_exit and out_state.remaining_space <= 0:
                break  # HOL blocking: full downstream road
            servable = True
            queue.popleft()
            credit -= 1.0
            served += 1
            if vehicle.queued_since is not None:
                self.collector.add_queuing_time(
                    vehicle.vehicle_id,
                    max(0.0, self.time - vehicle.queued_since),
                )
            if out_is_exit:
                self.collector.vehicle_left(vehicle.vehicle_id, self.time)
            else:
                vehicle.advance()
                out_state.enter_transit(
                    vehicle, self.time + self._transit_time(out_road)
                )
        self._credit[credit_key] = min(credit, max(1.0, rate * dt))
        return served, servable

    def _discharge_rate(self, movement) -> float:
        """Vehicles per second the plant can discharge on one movement."""
        if self._saturation_headway is None:
            return movement.service_rate
        return 1.0 / self._saturation_headway

    def _transit_time(self, road_id: str) -> float:
        if self._travel_time is not None:
            return self._travel_time
        return self.network.roads[road_id].free_flow_time

    def _inject(self, dt: float) -> None:
        for entry, process in self._arrivals.items():
            backlog = self._backlog[entry]
            count = process.sample_count(self.time, dt)
            for _ in range(count):
                route = self.router.sample_route(entry)
                backlog.append(
                    (
                        self.time,
                        MesoVehicle(
                            vehicle_id=self._next_vehicle_id, route=route
                        ),
                    )
                )
                self._next_vehicle_id += 1
            state = self._roads[entry]
            while backlog and state.remaining_space > 0:
                generated_at, vehicle = backlog.popleft()
                self.collector.vehicle_entered(vehicle.vehicle_id, self.time)
                if self.time > generated_at:
                    self.collector.add_queuing_time(
                        vehicle.vehicle_id, self.time - generated_at
                    )
                state.enter_transit(
                    vehicle, self.time + self._transit_time(entry)
                )

    # -- termination and introspection --------------------------------------

    def finalize(self) -> None:
        """Account queuing time of vehicles still queued at the end."""
        if self._finalized:
            return
        self._finalized = True
        for state in self._roads.values():
            for vehicle in state.iter_queued():
                if vehicle.queued_since is not None:
                    self.collector.add_queuing_time(
                        vehicle.vehicle_id,
                        max(0.0, self.time - vehicle.queued_since),
                    )
        # Vehicles still gated outside a full entry road: their entire
        # existence so far has been depart delay.
        for backlog in self._backlog.values():
            for generated_at, vehicle in backlog:
                self.collector.vehicle_entered(vehicle.vehicle_id, generated_at)
                self.collector.add_queuing_time(
                    vehicle.vehicle_id, max(0.0, self.time - generated_at)
                )

    def road_occupancy(self, road_id: str) -> int:
        """Vehicles currently on a road (transit + queued)."""
        return self._roads[road_id].occupancy

    def movement_queue(self, in_road: str, out_road: str) -> int:
        """Current length of one dedicated movement queue."""
        return self._roads[in_road].queue_length(out_road)

    def incoming_queue_total(self, in_road: str) -> int:
        """Total queued vehicles at the stop line of ``in_road``."""
        state = self._roads[in_road]
        return sum(len(lane) for lane in state.queues.values())

    def vehicles_in_network(self) -> int:
        """Total vehicles currently inside the network."""
        return sum(state.occupancy for state in self._roads.values())

    def backlog_size(self) -> int:
        """Vehicles generated but still waiting outside a full entry."""
        return sum(len(q) for q in self._backlog.values())


def _build_meso(scenario) -> MesoSimulator:
    # ``scenario`` is a repro.scenarios.core.Scenario; typed loosely
    # to keep the model layer import-independent of the experiments layer.
    return MesoSimulator(
        network=scenario.network,
        demand=scenario.demand,
        turning=scenario.turning,
        seed=scenario.seed,
    )


register_engine("meso", _build_meso)
