"""The vectorized batch engine (``"meso-vec"``): whole seed-batches at once.

:class:`~repro.meso.counts.CountsSimulator` made one replication ~6x
cheaper than the reference engine, but a sweep still pays the full
Python step loop once per seed: cost stays linear in
``seeds x scenarios``.  Replication statistics (mean/std/CI across
seeds) sharpen with the replication count, so the step loop itself is
the scaling bottleneck.

:class:`BatchCountsSimulator` lifts the identical Eq.-2
store-and-forward count dynamics onto NumPy arrays of shape
``(B, n_roads)`` / ``(B, n_movements)`` and advances ``B``
*independent* replications of one scenario shape per step:

* queue lengths, road occupancies, service credits, phase state and
  the utilization books are batched arrays updated with a fixed number
  of vectorized operations per mini-slot (independent of ``B``);
* arrival counts are pulled ahead in 64-step windows through each
  replication's own :class:`~repro.model.arrivals.PoissonArrivals`
  (see below), so the per-step cost of demand sampling is one array
  slice;
* spillback sensing is a masked array comparison
  (``occupancy >= capacity``) instead of a maintained set;
* per-replication aggregate metrics are integrated by a
  :class:`~repro.metrics.aggregate.BatchAggregateMetricsCollector`.

**Batch RNG layout.**  Replication ``b`` owns the full per-seed stream
stack a serial run would have: ``RngStreams(seeds[b])`` with the same
stream names created in the same order (``routing`` first, then
``arrivals/<road>`` per demand entry).  Nothing is ever drawn across
replications from a shared generator, which is what makes results
independent of the batch size: replication ``b`` of a ``B=16`` batch
draws exactly what it would draw alone.

**Exact sequential-serve parity.**  Within one mini-slot the reference
engines serve movements *sequentially* — a movement served earlier can
fill (or free) a downstream road that a movement served later reads
through its ``space`` term.  Naive whole-array vectorization would
evaluate every movement against pre-step occupancy and diverge under
congestion.  Instead, the constructor partitions the movements into
*stages* by a static read-after-write hazard analysis: movement ``m``
is placed after every potentially co-active movement that precedes it
in the reference serve order and writes the occupancy ``m`` reads.
Stages execute in order, each fully vectorized over
``(B, stage width)``; within a stage no movement reads a location an
earlier same-stage movement writes, and the remaining writes commute —
so the staged result equals the sequential result *exactly*, spillback
included.

**Contract.**  ``meso-vec`` at ``B=1`` is step-for-step identical to
``meso-counts`` under the same seed (observations, occupancies,
utilization books, entered/left and the waiting-time integral), and
replication results are independent of ``B`` — the parity suite in
``tests/test_engine_parity.py`` asserts both.  Like ``meso-counts`` it
reports ``delay_mode="aggregate"`` and supports only the paper's
default ``dedicated`` lane policy (``lane_policy="mixed"`` is
rejected: shared-lane head-of-line blocking is inherently
per-vehicle).  The batch steps on a *constant* mini-slot: ``dt`` is
fixed by the first ``step`` call (the pulled-ahead arrival windows are
drawn for that grid; a varying ``dt`` would consume draws a serial run
would not have made).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.engine import (
    BatchControlArrays,
    register_batch_engine,
    register_engine,
)
from repro.metrics.aggregate import BatchAggregateMetricsCollector
from repro.metrics.collector import Summary
from repro.metrics.utilization import UtilizationTracker
from repro.model.arrivals import ArrivalSchedule, PoissonArrivals
from repro.model.network import BOUNDARY, Network
from repro.model.phases import TRANSITION_PHASE_INDEX
from repro.model.queues import QueueObservation
from repro.model.routing import RouteSampler, TurningProbabilities
from repro.util.rng import RngStreams
from repro.util.validation import check_non_negative, check_positive

__all__ = ["BatchCountsSimulator", "SingleReplicationEngine"]

#: Mini-slots of arrival counts pulled ahead per refill (a multiple of
#: the PoissonArrivals pre-draw batch, so a refill is mostly slicing).
ARRIVAL_WINDOW = 128


class BatchCountsSimulator:
    """``B`` independent counts-based replications stepped as arrays.

    Accepts the same plant parameters as
    :class:`~repro.meso.counts.CountsSimulator` with ``seeds`` (one per
    replication) in place of ``seed``; see the module docstring for the
    parity contract.
    """

    OUT_QUEUE_MODES = ("spillback", "halting", "occupancy")

    def __init__(
        self,
        network: Network,
        demand: Mapping[str, ArrivalSchedule],
        turning: TurningProbabilities,
        seeds: Sequence[int] = (0,),
        travel_time: Optional[float] = None,
        startup_lost: float = 2.0,
        sensing_horizon: float = 2.0,
        saturation_headway: Optional[float] = 1.3,
        out_queue_mode: str = "spillback",
        lane_policy: str = "dedicated",
    ):
        self.network = network
        self.time = 0.0
        self.seeds = tuple(int(s) for s in seeds)
        if not self.seeds:
            raise ValueError("seeds must name at least one replication")
        B = len(self.seeds)
        self.batch_size = B
        if travel_time is not None:
            check_non_negative("travel_time", travel_time)
        check_non_negative("startup_lost", startup_lost)
        self._startup_lost = startup_lost
        check_non_negative("sensing_horizon", sensing_horizon)
        self._sensing_horizon = sensing_horizon
        if saturation_headway is not None:
            check_positive("saturation_headway", saturation_headway)
        if out_queue_mode not in self.OUT_QUEUE_MODES:
            raise ValueError(
                f"out_queue_mode must be one of {self.OUT_QUEUE_MODES}, "
                f"got {out_queue_mode!r}"
            )
        self._out_queue_mode = out_queue_mode
        if lane_policy != "dedicated":
            raise ValueError(
                f"meso-vec supports only lane_policy='dedicated', got "
                f"{lane_policy!r} (the mixed shared-FIFO lane is inherently "
                f"per-vehicle; use the 'meso' engine)"
            )

        # -- per-replication RNG stacks (serial stream layout & order) ------
        entry_set = set(network.entry_roads())
        unknown = set(demand) - entry_set
        if unknown:
            raise ValueError(
                f"demand declared on non-entry roads: {sorted(unknown)}"
            )
        self._entry_ids: List[str] = list(demand)
        self._routers: List[RouteSampler] = []
        self._arrivals: List[List[PoissonArrivals]] = []
        for seed in self.seeds:
            streams = RngStreams(seed)
            self._routers.append(
                RouteSampler(network, turning, streams.get("routing"))
            )
            self._arrivals.append(
                [
                    PoissonArrivals(demand[road], streams.get(f"arrivals/{road}"))
                    for road in self._entry_ids
                ]
            )
        # Routes are static per network and sampling happens before the
        # cache lookup, so replications can share one route cache: the
        # cached walks are deterministic and draw nothing.
        shared_routes = self._routers[0]._route_cache
        for router in self._routers[1:]:
            router._route_cache = shared_routes

        # -- static road tables ---------------------------------------------
        road_ids = list(network.roads)
        self._road_ids = road_ids
        road_index = {road: i for i, road in enumerate(road_ids)}
        R = len(road_ids)
        self._caps = np.array(
            [network.roads[r].capacity for r in road_ids], dtype=np.int64
        )
        is_exit_road = np.array(
            [network.road_destination[r] == BOUNDARY for r in road_ids]
        )
        self._is_exit_road = is_exit_road
        self._transit_time = np.array(
            [
                travel_time
                if travel_time is not None
                else network.roads[r].free_flow_time
                for r in road_ids
            ],
            dtype=np.float64,
        )

        # -- movement indexing (node-major, reference dict order) -----------
        node_ids = list(network.intersections)
        self._node_ids = node_ids
        self._intersections = [network.intersections[n] for n in node_ids]
        N = len(node_ids)
        movement_keys: List[Tuple[str, str]] = []
        node_of: List[int] = []
        node_starts: List[int] = [0]
        gid_of: Dict[Tuple[int, Tuple[str, str]], int] = {}
        for n, inter in enumerate(self._intersections):
            for key in inter.movements:
                gid_of[(n, key)] = len(movement_keys)
                movement_keys.append(key)
                node_of.append(n)
            node_starts.append(len(movement_keys))
        M = len(movement_keys)
        self._movement_keys = movement_keys
        self._node_of = np.array(node_of, dtype=np.int64)
        self._node_starts = np.array(node_starts[:-1], dtype=np.int64)
        saturation_rate = (
            None if saturation_headway is None else 1.0 / saturation_headway
        )
        in_idx = np.empty(M, dtype=np.int64)
        out_idx = np.empty(M, dtype=np.int64)
        rate = np.empty(M, dtype=np.float64)
        for n, inter in enumerate(self._intersections):
            for key, movement in inter.movements.items():
                gid = gid_of[(n, key)]
                in_idx[gid] = road_index[movement.in_road]
                out_idx[gid] = road_index[movement.out_road]
                rate[gid] = (
                    movement.service_rate
                    if saturation_rate is None
                    else saturation_rate
                )
        self._in_idx = in_idx
        self._out_idx = out_idx
        self._rate = rate
        self._m_is_exit = is_exit_road[out_idx]
        self._exit_cols = np.nonzero(self._m_is_exit)[0]
        self._m_out_cap = self._caps[out_idx]
        self._m_out_ttime = self._transit_time[out_idx]

        # -- phase tables ----------------------------------------------------
        max_phase = np.empty(N, dtype=np.int64)
        offsets = np.empty(N, dtype=np.int64)
        total = 0
        for n, inter in enumerate(self._intersections):
            offsets[n] = total
            max_phase[n] = max(p.index for p in inter.phases)
            total += int(max_phase[n]) + 1
        self._phase_offsets = offsets
        self._max_phase = max_phase
        rate_sum = np.zeros(total, dtype=np.float64)
        valid = np.zeros(total, dtype=bool)
        valid[offsets] = True  # the transition phase is always applicable
        phase_pos = np.zeros(M, dtype=np.int64)
        phases_of: List[set] = [set() for _ in range(M)]
        for n, inter in enumerate(self._intersections):
            for phase in inter.phases:
                g = int(offsets[n]) + phase.index
                valid[g] = True
                rate_sum[g] = sum(m.service_rate for m in phase.movements)
                seen_out = set()
                for pos, movement in enumerate(phase.movements):
                    if movement.out_road in seen_out:
                        raise ValueError(
                            f"meso-vec: phase c{phase.index} at "
                            f"{inter.node_id} activates two movements onto "
                            f"{movement.out_road!r}; the push order of a "
                            f"shared outgoing road is not batchable"
                        )
                    seen_out.add(movement.out_road)
                    gid = gid_of[(n, movement.key)]
                    if phases_of[gid]:
                        # The stage analysis orders same-node co-active
                        # movements by their position in the one phase
                        # containing them; two memberships would make
                        # that position ambiguous.
                        raise ValueError(
                            f"meso-vec: movement {movement.key} at "
                            f"{inter.node_id} appears in more than one "
                            f"phase; use the 'meso-counts' engine for this "
                            f"network"
                        )
                    phase_pos[gid] = pos
                    phases_of[gid].add(phase.index)
        self._rate_sum = rate_sum
        self._valid_phase = valid
        #: The one phase containing each movement (-1: never activated);
        #: activity is then one equality against the node's applied phase.
        self._m_phase = np.array(
            [next(iter(p)) if p else -1 for p in phases_of], dtype=np.int64
        )
        self._m_nonexit = ~self._m_is_exit

        # -- hazard staging (see the module docstring) ----------------------
        self._stages = self._build_stages(phases_of, phase_pos)

        # -- promote / observation plans ------------------------------------
        lanes_of_road: Dict[int, List[int]] = {}
        gid_by_out: Dict[int, Dict[str, int]] = {}
        key_by_out: Dict[int, Dict[str, Tuple[str, str]]] = {}
        node_of_in_road: Dict[int, int] = {}
        for gid, (in_road, out_road) in enumerate(movement_keys):
            ri = int(in_idx[gid])
            lanes_of_road.setdefault(ri, []).append(gid)
            gid_by_out.setdefault(ri, {})[out_road] = gid
            key_by_out.setdefault(ri, {})[out_road] = movement_keys[gid]
            node_of_in_road[ri] = int(self._node_of[gid])
        self._gid_by_out = gid_by_out
        self._key_by_out = key_by_out
        self._node_of_in_road = node_of_in_road
        self._gids_of_road = {
            ri: np.array(gids, dtype=np.int64)
            for ri, gids in lanes_of_road.items()
        }
        # Per node: keys tuple, movement slice, shared zero/capacity
        # out-road dicts and the out-road static rows.
        self._obs_plan = []
        for n, inter in enumerate(self._intersections):
            out_static = [
                (r, road_index[r], int(self._caps[road_index[r]]),
                 bool(is_exit_road[road_index[r]]))
                for r in inter.out_roads
            ]
            self._obs_plan.append(
                (
                    node_ids[n],
                    tuple(inter.movements),
                    int(node_starts[n]),
                    int(node_starts[n + 1]),
                    {r: 0 for r, _, _, _ in out_static},
                    {r: c for r, _, c, _ in out_static},
                    out_static,
                )
            )
        self._entry_idx = np.array(
            [road_index[r] for r in self._entry_ids], dtype=np.int64
        )

        # -- dynamic state ---------------------------------------------------
        self._occ = np.zeros((B, R), dtype=np.int64)
        self._queue_len = np.zeros((B, M), dtype=np.int64)
        self._credit = np.zeros((B, M), dtype=np.float64)
        self._head_ready = np.full((B, R), np.inf, dtype=np.float64)
        self._active_phase = np.full((B, N), -1, dtype=np.int64)
        self._phase_started = np.zeros((B, N), dtype=np.float64)
        self._green_time = np.zeros((B, N), dtype=np.float64)
        self._amber_time = np.zeros((B, N), dtype=np.float64)
        self._service_capacity = np.zeros((B, N), dtype=np.float64)
        self._vehicles_served = np.zeros((B, N), dtype=np.int64)
        self._wasted_green_slots = np.zeros((B, N), dtype=np.int64)
        self._green_slots = np.zeros((B, N), dtype=np.int64)
        self._queued_total = np.zeros(B, dtype=np.int64)
        # Unit representation: a queued/transiting unit is its route's
        # next-hop map (road -> following road, shared per cached
        # route) — grid routes never revisit a road, so the map alone
        # replaces the reference engines' ``(route, leg)`` cursor and a
        # hop allocates nothing.  Transit FIFOs hold *cohorts*
        # ``(ready_time, [unit, ...])``: every push onto one road
        # within a mini-slot shares the same ready time, so cohorts are
        # exactly the reference FIFO content grouped by slot, in the
        # reference push order.
        self._route_nexts: Dict[int, Dict[str, str]] = {}
        self._lanes: List[List[deque]] = [
            [deque() for _ in range(M)] for _ in range(B)
        ]
        self._transit: List[List[deque]] = [
            [deque() for _ in range(R)] for _ in range(B)
        ]
        self._backlogs: List[List[deque]] = [
            [deque() for _ in self._entry_ids] for _ in range(B)
        ]
        self._backlog_len = np.zeros((B, len(self._entry_ids)), dtype=np.int64)
        #: (transit FIFO, lane list, out-road -> movement gid, road id)
        #: per (replication, road): promote unpacks one precomputed
        #: tuple per due road instead of chasing nested lookups.
        self._promote_plan = [
            [
                (
                    self._transit[b][ri],
                    self._lanes[b],
                    gid_by_out.get(ri),
                    road_ids[ri],
                )
                for ri in range(R)
            ]
            for b in range(B)
        ]
        #: (backlog FIFO, transit FIFO, router) per (replication, entry).
        self._inject_plan = [
            [
                (
                    self._backlogs[b][e],
                    self._transit[b][int(self._entry_idx[e])],
                    self._routers[b],
                )
                for e in range(len(self._entry_ids))
            ]
            for b in range(B)
        ]
        #: (lane FIFO, out transit FIFO | None for exits, out road index)
        #: per (replication, movement) — the serve transfer loop unpacks
        #: one tuple per served movement.
        self._transfer_plan = [
            [
                (
                    self._lanes[b][m],
                    None
                    if self._m_is_exit[m]
                    else self._transit[b][int(out_idx[m])],
                    int(out_idx[m]),
                )
                for m in range(M)
            ]
            for b in range(B)
        ]
        self.collector = BatchAggregateMetricsCollector(B)
        self._finalized = False
        # Constant-dt contract state + pulled-ahead arrival window.
        self._dt: Optional[float] = None
        self._accrual: Optional[np.ndarray] = None
        self._bank: Optional[np.ndarray] = None
        self._window: Optional[np.ndarray] = None
        self._window_pos = 0

    # -- static hazard staging ----------------------------------------------

    def _build_stages(
        self, phases_of: List[set], phase_pos: np.ndarray
    ) -> List[np.ndarray]:
        """Partition movements into exact-parity vectorization stages."""
        node_of = self._node_of
        in_idx = self._in_idx
        out_idx = self._out_idx
        is_exit = self._m_is_exit
        M = len(phases_of)
        # Who writes a road's occupancy when served: every movement
        # decrements its in-road; non-exit movements increment their
        # out-road.  Movements in no phase never serve, never write.
        writers: Dict[int, List[int]] = {}
        for gid in range(M):
            if not phases_of[gid]:
                continue
            writers.setdefault(int(in_idx[gid]), []).append(gid)
            if not is_exit[gid]:
                writers.setdefault(int(out_idx[gid]), []).append(gid)
        stage = [0] * M
        order = sorted(
            range(M), key=lambda g: (int(node_of[g]), int(phase_pos[g]), g)
        )
        for gid in order:
            if is_exit[gid] or not phases_of[gid]:
                continue  # reads no occupancy / never active: stage 0
            level = 0
            for writer in writers.get(int(out_idx[gid]), ()):
                if writer == gid:
                    continue
                if node_of[writer] == node_of[gid]:
                    # Same node: co-active only within one phase, and
                    # then ordered by position in that phase.
                    if not (phases_of[writer] & phases_of[gid]):
                        continue
                    if phase_pos[writer] >= phase_pos[gid]:
                        continue
                elif node_of[writer] > node_of[gid]:
                    continue  # served later: its writes are not yet seen
                if stage[writer] >= level:
                    level = stage[writer] + 1
            stage[gid] = level
        depth = max(stage) + 1 if M else 1
        stages = [
            np.array([g for g in range(M) if stage[g] == s], dtype=np.int64)
            for s in range(depth)
        ]
        return [ids for ids in stages if len(ids)]

    # -- observation ---------------------------------------------------------

    def observations(self) -> List[Dict[str, QueueObservation]]:
        """Per-replication ``Q(k)`` maps at the current time."""
        now = self.time
        deadline = now + self._sensing_horizon
        trusted = QueueObservation.trusted
        spillback = self._out_queue_mode == "spillback"
        if spillback:
            full = self._occ >= self._caps[None, :]
            rep_any_full = full.any(axis=1)
        movement_dicts: List[List[Dict[Tuple[str, str], int]]] = []
        for b in range(self.batch_size):
            row = self._queue_len[b].tolist()
            movement_dicts.append(
                [dict(zip(keys, row[lo:hi]))
                 for _, keys, lo, hi, _, _, _ in self._obs_plan]
            )
        sensed = self._head_ready <= deadline
        if sensed.any():
            node_of_in_road = self._node_of_in_road
            key_by_out = self._key_by_out
            road_ids = self._road_ids
            for b, ri in np.argwhere(sensed).tolist():
                queues = movement_dicts[b][node_of_in_road[ri]]
                keys = key_by_out[ri]
                road_id = road_ids[ri]
                for ready, units in self._transit[b][ri]:
                    if ready > deadline:
                        break
                    for unit in units:
                        queues[keys[unit[road_id]]] += 1
        results: List[Dict[str, QueueObservation]] = []
        for b in range(self.batch_size):
            per_node: Dict[str, QueueObservation] = {}
            rep_dicts = movement_dicts[b]
            congested = spillback and bool(rep_any_full[b])
            occ_row = self._occ[b].tolist() if congested else None
            for n, (node_id, _, _, _, zeros, out_caps, out_static) in (
                enumerate(self._obs_plan)
            ):
                if spillback and not congested:
                    out_queues: Dict[str, int] = zeros
                elif spillback:
                    out_queues = {}
                    for road_id, ri, cap, road_is_exit in out_static:
                        occ = 0 if road_is_exit else occ_row[ri]
                        out_queues[road_id] = occ if occ >= cap else 0
                else:
                    out_queues = {
                        road_id: self._sensed_out_queue(b, ri, road_is_exit)
                        for road_id, ri, _, road_is_exit in out_static
                    }
                per_node[node_id] = trusted(
                    now, rep_dicts[n], out_queues, out_caps
                )
            results.append(per_node)
        return results

    def _sensed_out_queue(self, b: int, ri: int, road_is_exit: bool) -> int:
        """``q_{i'}`` under the non-default out-queue sensing modes."""
        if road_is_exit:
            return 0
        if self._out_queue_mode == "occupancy":
            return int(self._occ[b, ri])
        if self._out_queue_mode == "halting":
            gids = self._gids_of_road.get(ri)
            if gids is None:
                return 0
            return int(self._queue_len[b, gids].sum())
        occupancy = int(self._occ[b, ri])
        return occupancy if occupancy >= int(self._caps[ri]) else 0

    # -- batched controller façade -------------------------------------------

    @property
    def movement_layout(self):
        """``(node_ids, movement_keys)`` — the batch arrays' column order.

        The canonical layout a :class:`~repro.control.batch.
        BatchNetworkController` derives from the same network; the
        closed-loop batch runner compares the two tuples once before
        trusting the array alignment.
        """
        return tuple(self._node_ids), tuple(self._movement_keys)

    def controller_arrays(self) -> BatchControlArrays:
        """The batched ``Q(k)`` for in-engine controller kernels.

        Movement-aligned array views of exactly what
        :meth:`observations` reports — the same sensed in-transit
        augmentation of the stop-line queues and the same out-queue
        sensing mode — without materializing B per-node dict networks.
        When nothing is inside the sensing horizon the queue array is a
        read-only zero-copy view of the engine's internal state.
        """
        now = self.time
        deadline = now + self._sensing_horizon
        sensed = self._head_ready <= deadline
        if sensed.any():
            queues = self._queue_len.copy()
            road_ids = self._road_ids
            gid_by_out = self._gid_by_out
            for b, ri in np.argwhere(sensed).tolist():
                gids = gid_by_out[ri]
                road_id = road_ids[ri]
                row = queues[b]
                for ready, units in self._transit[b][ri]:
                    if ready > deadline:
                        break
                    for unit in units:
                        row[gids[unit[road_id]]] += 1
        else:
            queues = self._queue_len.view()
            queues.flags.writeable = False
        if self._out_queue_mode == "spillback":
            road_out = np.where(
                self._occ >= self._caps[None, :], self._occ, 0
            )
        elif self._out_queue_mode == "occupancy":
            # Exit-road occupancy is structurally zero (exit movements
            # leave the network), matching the 0 the dict path reports.
            road_out = self._occ
        else:  # halting: queued vehicles at the road's own stop line
            road_out = np.zeros_like(self._occ)
            np.add.at(
                road_out, (slice(None), self._in_idx), self._queue_len
            )
        return BatchControlArrays(
            time=now,
            queues=queues,
            out_queues=road_out[:, self._out_idx],
        )

    # -- stepping ------------------------------------------------------------

    def step(
        self,
        dt: float,
        phases: Union[np.ndarray, Sequence[Mapping[str, int]]],
    ) -> None:
        """Advance every replication by ``dt`` under its own phases.

        ``phases`` is one mapping (node id -> applied phase index, 0 =
        amber, missing intersections amber) per replication, or an
        already-encoded ``(B, n_nodes)`` integer array (an ``(n_nodes,)``
        row is broadcast to every replication).
        """
        check_positive("dt", dt)
        if self._finalized:
            raise RuntimeError("simulator already finalized")
        if self._dt is None:
            self._dt = float(dt)
            self._accrual = self._rate * dt
            self._bank = np.maximum(self._accrual, 1.0)
        elif dt != self._dt:
            raise ValueError(
                f"meso-vec steps on a constant mini-slot: got dt={dt} after "
                f"dt={self._dt} (the pulled-ahead arrival windows are drawn "
                f"on the first step's grid)"
            )
        phases_arr = self._encode_phases(phases)
        now = self.time
        self._promote(now)
        if not np.array_equal(phases_arr, self._active_phase):
            self._apply_phase_switch(dt, phases_arr, now)
        self._serve(dt, now)
        self._inject(dt, now)
        self.time = now + dt
        collector = self.collector
        collector.record_interval(
            dt,
            self._queued_total + self._backlog_len.sum(axis=1),
            # Vehicles inside the network == total road occupancy (the
            # reference engines maintain this count separately; here it
            # is one row sum).
            self._occ.sum(axis=1),
        )
        collector.advance(self.time)

    def _encode_phases(
        self, phases: Union[np.ndarray, Sequence[Mapping[str, int]]]
    ) -> np.ndarray:
        B, N = self.batch_size, len(self._node_ids)
        if isinstance(phases, np.ndarray):
            if phases.shape == (N,):
                return np.broadcast_to(phases, (B, N))
            if phases.shape != (B, N):
                raise ValueError(
                    f"phase array must have shape ({B}, {N}) or ({N},), "
                    f"got {phases.shape}"
                )
            return phases
        if len(phases) != B:
            raise ValueError(
                f"need one phase mapping per replication ({B}), got "
                f"{len(phases)}"
            )
        node_ids = self._node_ids
        amber = TRANSITION_PHASE_INDEX
        rows = [
            [mapping.get(node_id, amber) for node_id in node_ids]
            for mapping in phases
        ]
        return np.array(rows, dtype=np.int64)

    def _promote(self, now: float) -> None:
        """Move transit units that reached the stop line into their lanes.

        Per-unit deque traffic stays in Python (a handful of units per
        slot); the batched array bookkeeping is committed with one
        scatter-add per array instead of per-unit scalar writes.
        """
        head_ready = self._head_ready
        due = head_ready <= now
        if not due.any():
            return
        inc_flat: List[int] = []
        inc_append = inc_flat.append
        pair_b: List[int] = []
        pair_n: List[int] = []
        head_b: List[int] = []
        head_r: List[int] = []
        head_v: List[float] = []
        inf = np.inf
        M = len(self._movement_keys)
        plans = self._promote_plan
        dbs, drs = np.nonzero(due)
        for b, ri in zip(dbs.tolist(), drs.tolist()):
            transit, lanes, gids, road_id = plans[b][ri]
            base = b * M
            promoted = 0
            while transit and transit[0][0] <= now:
                units = transit.popleft()[1]
                promoted += len(units)
                for unit in units:
                    gid = gids[unit[road_id]]
                    lanes[gid].append(unit)
                    inc_append(base + gid)
            if promoted:
                pair_b.append(b)
                pair_n.append(promoted)
            head_b.append(b)
            head_r.append(ri)
            head_v.append(transit[0][0] if transit else inf)
        head_ready[head_b, head_r] = head_v
        if inc_flat:
            np.add.at(self._queue_len.reshape(-1), inc_flat, 1)
            np.add.at(self._queued_total, pair_b, pair_n)

    def _apply_phase_switch(
        self, dt: float, phases_arr: np.ndarray, now: float
    ) -> None:
        """Validate a changed phase pattern and rebuild the serve cache.

        Phases hold for many consecutive mini-slots (green dwells), so
        everything derived from the pattern alone — amber/green masks,
        per-slot tracker increments, the active/eligible movement masks
        — is computed once per switch and replayed until the pattern
        changes again.
        """
        node_of = self._node_of
        # Phase validation: an unknown non-amber index raises the same
        # KeyError the reference engine's phase lookup would.
        in_range = (phases_arr >= 0) & (phases_arr <= self._max_phase[None, :])
        gp = self._phase_offsets[None, :] + np.where(in_range, phases_arr, 0)
        valid = in_range & self._valid_phase[gp]
        if not valid.all():
            b, n = np.argwhere(~valid)[0]
            self._intersections[n].phase_by_index(int(phases_arr[b, n]))
            raise AssertionError("phase_by_index must raise for invalid phases")
        switched = phases_arr != self._active_phase
        self._active_phase = phases_arr.copy()
        self._phase_started = np.where(switched, now, self._phase_started)
        # Phase switch: queue discharge restarts, unused service credit
        # must not carry over.
        self._credit[switched[:, node_of]] = 0.0
        green = phases_arr != TRANSITION_PHASE_INDEX
        self._c_green = green
        self._c_green_node_of = green[:, node_of]
        self._c_amber_dt = dt * ~green
        self._c_green_dt = dt * green
        self._c_green_int = green.astype(np.int64)
        self._c_capacity_dt = (self._rate_sum[gp] * dt) * green
        self._c_active = (
            phases_arr[:, node_of] == self._m_phase[None, :]
        ) & self._c_green_node_of
        # After this wall-clock point no node can still be inside its
        # start-up window, so the eligibility mask equals the active
        # mask until the next switch.
        self._startup_until = float(
            self._phase_started.max() + self._startup_lost
        )
        # Shared-pattern compression: when every replication shows the
        # same (all-green) pattern — open-loop plans, fixed-time drives,
        # the CI bench — the eligible set is one column subset shared
        # by the whole batch, and serve can run on (B, n_active) slices
        # instead of (B, n_movements) arrays.
        self._c_cols = None
        row0 = phases_arr[0]
        if (row0 != TRANSITION_PHASE_INDEX).all() and (
            phases_arr == row0[None, :]
        ).all():
            cols = np.nonzero(self._c_active[0])[0]
            if len(cols):
                self._c_cols = cols
                self._cc_accrual = self._accrual[cols]
                self._cc_bank = self._bank[cols]
                self._cc_out_cap = self._m_out_cap[cols]
                self._cc_out_idx = self._out_idx[cols]
                self._cc_in_idx = self._in_idx[cols]
                self._cc_nonexit = self._m_nonexit[cols]
                self._cc_is_exit = self._m_is_exit[cols]
                self._cc_node_of = node_of[cols]

    def _serve(self, dt: float, now: float) -> None:
        """One vectorized serve pass (reference arithmetic, exact).

        The fast path evaluates every movement against pre-step
        occupancy in one shot.  That equals the sequential reference
        result whenever no movement's downstream ``space`` binds
        (``space >= min(credit value, queue)`` everywhere): within a
        slot, occupancy a movement reads can only *drop* before its
        turn (its only co-active inflow writer would share its out-road
        inside one phase, which the constructor rejects), so a
        non-binding pre-step space stays non-binding in every
        sequential order.  If any space binds anywhere, the staged
        exact path replays the reference order.
        """
        B = self.batch_size
        node_of = self._node_of
        self._amber_time += self._c_amber_dt
        self._green_time += self._c_green_dt
        self._green_slots += self._c_green_int
        self._service_capacity += self._c_capacity_dt
        green = self._c_green
        if now >= self._startup_until:
            if self._c_cols is not None and self._serve_shared(now):
                return
            serving = green
            eligible = self._c_active
        else:
            in_startup = (now - self._phase_started) < self._startup_lost
            serving = green & ~in_startup
            self._wasted_green_slots += green & in_startup
            eligible = self._c_active & ~in_startup[:, node_of]
        value = self._credit + self._accrual
        queue_len = self._queue_len
        occ = self._occ
        bound_cq = np.minimum(value, queue_len)
        space = self._m_out_cap[None, :] - occ[:, self._out_idx]
        binding = eligible & self._m_nonexit[None, :] & (space < bound_cq)
        if not binding.any():
            # Fast path: space never binds, so every limit is the
            # credit/queue bound and space > 0 wherever a queue waits.
            limit_total = bound_cq.astype(np.int64)
            limit_total *= eligible
            servable = eligible & (queue_len > 0)
            sb, sm = np.nonzero(limit_total)
            vals = limit_total[sb, sm]
            if len(sb):
                np.add.at(occ, (sb, self._in_idx[sm]), -vals)
                ne = self._m_nonexit[sm]
                if ne.any():
                    np.add.at(
                        occ, (sb[ne], self._out_idx[sm[ne]]), vals[ne]
                    )
        else:
            limit_total, servable = self._serve_staged(
                eligible, value, queue_len, occ
            )
            sb, sm = np.nonzero(limit_total)
            vals = limit_total[sb, sm]
        # Bank at most one slot of unused service credit (reference
        # rule), for exactly the movements the reference loop touched.
        np.copyto(
            self._credit,
            np.minimum(value - limit_total, self._bank),
            where=eligible,
        )
        servable_node = np.add.reduceat(
            servable.view(np.int8), self._node_starts, axis=1
        )
        served_node = np.zeros((B, len(self._node_ids)), dtype=np.int64)
        if len(sb):
            np.add.at(served_node, (sb, node_of[sm]), vals)
        self._vehicles_served += served_node
        self._wasted_green_slots += (
            serving & (served_node == 0) & (servable_node == 0)
        )
        if len(sb):
            np.subtract.at(queue_len, (sb, sm), vals)
            np.subtract.at(self._queued_total, sb, vals)
            exit_mask = self._m_is_exit[sm]
            if exit_mask.any():
                np.add.at(
                    self.collector.vehicles_left,
                    sb[exit_mask],
                    vals[exit_mask],
                )
            self._transfer_units(sb, sm, vals, now)

    def _serve_shared(self, now: float) -> bool:
        """Serve on compressed shared-pattern columns; False = fall back.

        Only runs past every start-up window under one all-green
        pattern shared by the batch, so the active columns *are* the
        eligible set.  A second, per-step compression then drops the
        active columns no replication can serve or accrue on — empty
        queue everywhere and credit already saturated at the bank
        (``min(bank + accrual, bank) == bank``: skipping is exact).
        Returns ``False`` (having written nothing) when some downstream
        space binds — the caller then takes the general exact path.
        """
        B = self.batch_size
        N = len(self._node_ids)
        cols = self._c_cols
        occ = self._occ
        queue_len = self._queue_len
        queued = queue_len[:, cols]
        credit_cols = self._credit[:, cols]
        live = (queued > 0).any(axis=0) | (
            credit_cols < self._cc_bank
        ).any(axis=0)
        if not live.any():
            # Nothing queued, every credit saturated: every green node
            # wastes its slot (reference: served 0, nothing servable).
            self._wasted_green_slots += 1
            return True
        sub = np.nonzero(live)[0]
        full_width = len(sub) == len(cols)
        if not full_width:
            queued = queued[:, sub]
            credit_cols = credit_cols[:, sub]
        cols2 = cols if full_width else cols[sub]
        accrual = self._cc_accrual[sub]
        nonexit = self._cc_nonexit[sub]
        value = credit_cols + accrual
        bound = np.minimum(value, queued)
        space = self._cc_out_cap[sub][None, :] - occ[:, self._cc_out_idx[sub]]
        if (nonexit[None, :] & (space < bound)).any():
            return False
        limit = bound.astype(np.int64)
        sb, sl = np.nonzero(limit)
        vals = limit[sb, sl]
        in_idx2 = self._cc_in_idx[sub]
        out_idx2 = self._cc_out_idx[sub]
        if len(sb):
            np.add.at(occ, (sb, in_idx2[sl]), -vals)
            ne = nonexit[sl]
            if ne.any():
                np.add.at(occ, (sb[ne], out_idx2[sl[ne]]), vals[ne])
        self._credit[:, cols2] = np.minimum(
            value - limit, self._cc_bank[sub]
        )
        node_of_cols2 = self._cc_node_of[sub]
        served_node = np.zeros((B, N), dtype=np.int64)
        if len(sb):
            np.add.at(served_node, (sb, node_of_cols2[sl]), vals)
            self._vehicles_served += served_node
        servable_node = np.zeros((B, N), dtype=bool)
        qb, ql = np.nonzero(queued)
        if len(qb):
            servable_node[qb, node_of_cols2[ql]] = True
        self._wasted_green_slots += (served_node == 0) & ~servable_node
        if len(sb):
            sm = cols2[sl]
            np.subtract.at(queue_len, (sb, sm), vals)
            np.subtract.at(self._queued_total, sb, vals)
            exit_mask = self._cc_is_exit[sub][sl]
            if exit_mask.any():
                left_b = sb[exit_mask]
                np.add.at(self.collector.vehicles_left, left_b, vals[exit_mask])
            self._transfer_units(sb, sm, vals, now)
        return True

    def _serve_staged(
        self,
        eligible: np.ndarray,
        value: np.ndarray,
        queue_len: np.ndarray,
        occ: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The exact staged pass for congested slots (see module doc)."""
        B = self.batch_size
        M = len(self._movement_keys)
        limit_total = np.zeros((B, M), dtype=np.int64)
        servable = np.zeros((B, M), dtype=bool)
        for ids in self._stages:
            el = eligible[:, ids]
            if not el.any():
                continue
            queued = queue_len[:, ids]
            bound = np.minimum(value[:, ids], queued)
            is_exit = self._m_is_exit[ids]
            space = self._m_out_cap[ids][None, :] - occ[:, self._out_idx[ids]]
            bound = np.where(
                is_exit[None, :], bound, np.minimum(bound, space)
            )
            servable[:, ids] = el & (queued > 0) & (
                is_exit[None, :] | (space > 0)
            )
            limit = bound.astype(np.int64)
            limit *= el
            if limit.any():
                limit_total[:, ids] = limit
                sb, sm = np.nonzero(limit)
                vals = limit[sb, sm]
                gids = ids[sm]
                np.add.at(occ, (sb, self._in_idx[gids]), -vals)
                ne = self._m_nonexit[gids]
                if ne.any():
                    np.add.at(
                        occ, (sb[ne], self._out_idx[gids[ne]]), vals[ne]
                    )
        return limit_total, servable

    def _transfer_units(
        self,
        bs: np.ndarray,
        ms: np.ndarray,
        vals: np.ndarray,
        now: float,
    ) -> None:
        """Apply the per-unit queue pops / transit pushes of one serve.

        No ordering pass is needed: a transit FIFO's within-step push
        order could only matter if two co-active movements shared an
        out-road, which the constructor rejects — every (replication,
        out-road) receives at most one cohort per serve.
        """
        limits = vals.tolist()
        readies = (now + self._m_out_ttime[ms]).tolist()
        head_b: List[int] = []
        head_r: List[int] = []
        head_v: List[float] = []
        plans = self._transfer_plan
        for i, (b, m) in enumerate(zip(bs.tolist(), ms.tolist())):
            limit = limits[i]
            lane, transit, ri = plans[b][m]
            pop = lane.popleft
            if transit is None:  # exit movement: vehicles leave
                for _ in range(limit):
                    pop()
                continue
            if not transit:
                # (b, ri) pairs are unique here — a shared out-road
                # within one phase is rejected at construction.
                head_b.append(b)
                head_r.append(ri)
                head_v.append(readies[i])
            transit.append((readies[i], [pop() for _ in range(limit)]))
        if head_b:
            self._head_ready[head_b, head_r] = head_v

    def _refill_window(self, dt: float, now: float) -> None:
        """Pull the next ``ARRIVAL_WINDOW`` mini-slots of arrival counts.

        Times replicate the engine clock's own float accumulation, so
        every replication's :class:`PoissonArrivals` sees exactly the
        call sequence a serial run would make.
        """
        times = []
        t = now
        for _ in range(ARRIVAL_WINDOW):
            times.append(t)
            t += dt
        window = np.empty(
            (ARRIVAL_WINDOW, self.batch_size, len(self._entry_ids)),
            dtype=np.int64,
        )
        for b, processes in enumerate(self._arrivals):
            for e, process in enumerate(processes):
                window[:, b, e] = process.sample_count_block(times, dt)
        self._window = window
        self._window_pos = 0

    def _inject(self, dt: float, now: float) -> None:
        if self._window is None or self._window_pos >= ARRIVAL_WINDOW:
            self._refill_window(dt, now)
        counts = self._window[self._window_pos]
        self._window_pos += 1
        candidates = (counts > 0) | (self._backlog_len > 0)
        if not candidates.any():
            return
        pairs = np.argwhere(candidates)
        pb, pe = pairs[:, 0], pairs[:, 1]
        road_of_pair = self._entry_idx[pe]
        # Entry roads are distinct per (replication, entry) pair, so a
        # pre-loop occupancy gather sees exactly what the sequential
        # reference loop would read, and all writes commit in one
        # scatter each afterwards.
        spaces = (self._caps[road_of_pair] - self._occ[pb, road_of_pair]).tolist()
        readies = (now + self._transit_time[road_of_pair]).tolist()
        count_list = counts[pb, pe].tolist()
        road_list = road_of_pair.tolist()
        entry_ids = self._entry_ids
        plans = self._inject_plan
        head_b: List[int] = []
        head_r: List[int] = []
        head_v: List[float] = []
        delta_b: List[int] = []
        delta_e: List[int] = []
        delta_backlog: List[int] = []
        delta_admitted: List[int] = []
        route_nexts = self._route_nexts
        for i, (b, e) in enumerate(zip(pb.tolist(), pe.tolist())):
            backlog, transit, router = plans[b][e]
            count = count_list[i]
            admitted = 0
            if count:
                road_id = entry_ids[e]
                sample_route = router.sample_route
                for _ in range(count):
                    route = sample_route(road_id)
                    unit = route_nexts.get(id(route))
                    if unit is None:
                        unit = dict(zip(route, route[1:]))
                        if len(unit) != len(route) - 1:
                            # A road revisited along one route would
                            # alias in the next-hop map; grid routes
                            # never do (the samplers reject loops).
                            raise ValueError(
                                f"meso-vec: route revisits a road: {route}"
                            )
                        route_nexts[id(route)] = unit
                    backlog.append(unit)
            if backlog:
                space = spaces[i]
                if space > 0:
                    if not transit:
                        head_b.append(b)
                        head_r.append(road_list[i])
                        head_v.append(readies[i])
                    pop = backlog.popleft
                    cohort = []
                    while backlog and admitted < space:
                        cohort.append(pop())
                        admitted += 1
                    transit.append((readies[i], cohort))
            if count or admitted:
                delta_b.append(b)
                delta_e.append(e)
                delta_backlog.append(count - admitted)
                delta_admitted.append(admitted)
        if head_b:
            self._head_ready[head_b, head_r] = head_v
        if delta_b:
            np.add.at(self._backlog_len, (delta_b, delta_e), delta_backlog)
            admitted_arr = np.array(delta_admitted, dtype=np.int64)
            occ_b = delta_b
            np.add.at(
                self._occ,
                (occ_b, self._entry_idx[delta_e]),
                admitted_arr,
            )
            np.add.at(
                self.collector.vehicles_entered, delta_b, admitted_arr
            )

    # -- termination and introspection ---------------------------------------

    def finalize(self) -> None:
        """Close the aggregate books (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        self.collector.absorb_backlog(self._backlog_len.sum(axis=1))

    def summaries(self, duration: Optional[float] = None) -> List[Summary]:
        """Per-replication run summaries, in batch order."""
        return self.collector.summaries(duration)

    def utilization_of(self, replication: int) -> Dict[str, UtilizationTracker]:
        """One replication's per-intersection utilization books."""
        out: Dict[str, UtilizationTracker] = {}
        for n, node_id in enumerate(self._node_ids):
            out[node_id] = UtilizationTracker(
                node_id=node_id,
                green_time=float(self._green_time[replication, n]),
                amber_time=float(self._amber_time[replication, n]),
                service_capacity=float(
                    self._service_capacity[replication, n]
                ),
                vehicles_served=int(self._vehicles_served[replication, n]),
                wasted_green_slots=int(
                    self._wasted_green_slots[replication, n]
                ),
                green_slots=int(self._green_slots[replication, n]),
            )
        return out

    def road_occupancy(self, road_id: str) -> np.ndarray:
        """Vehicles currently on a road, per replication."""
        return self._occ[:, self._road_ids.index(road_id)].copy()

    def incoming_queue_total(self, road_id: str) -> np.ndarray:
        """Total queued vehicles at one stop line, per replication."""
        try:
            ri = self._road_ids.index(road_id)
        except ValueError:
            return np.zeros(self.batch_size, dtype=np.int64)
        gids = self._gids_of_road.get(ri)
        if gids is None:
            return np.zeros(self.batch_size, dtype=np.int64)
        return self._queue_len[:, gids].sum(axis=1)

    def vehicles_in_network(self) -> np.ndarray:
        """Total vehicles currently inside the network, per replication."""
        return self._occ.sum(axis=1)

    def backlog_size(self) -> np.ndarray:
        """Vehicles gated outside a full entry, per replication."""
        return self._backlog_len.sum(axis=1)


class _CollectorView:
    """Single-replication facade over the batch collector."""

    def __init__(self, collector: BatchAggregateMetricsCollector, b: int):
        self._collector = collector
        self._b = b

    @property
    def vehicles_entered(self) -> int:
        """Vehicles that entered this replication so far."""
        return int(self._collector.vehicles_entered[self._b])

    @property
    def vehicles_left(self) -> int:
        """Vehicles that left this replication so far."""
        return int(self._collector.vehicles_left[self._b])

    @property
    def total_queuing_time(self) -> float:
        """Accumulated queuing time of this replication."""
        return float(self._collector.total_queuing_time[self._b])

    @property
    def now(self) -> float:
        """Current simulation time of the batch."""
        return self._collector.now

    def summary(self, duration: Optional[float] = None) -> Summary:
        """Summary of this replication (engine-parity shape)."""
        return self._collector.summary_of(self._b, duration)


class SingleReplicationEngine:
    """:class:`SimulationEngine` adapter over a batch of one.

    Registered as the plain engine ``"meso-vec"`` so single specs, the
    CLI and the conformance suite drive the vectorized backend through
    the standard contract; the orchestration pool swaps in real batches
    behind the same name.
    """

    def __init__(self, batch: BatchCountsSimulator):
        if batch.batch_size != 1:
            raise ValueError(
                f"adapter wraps exactly one replication, got batch of "
                f"{batch.batch_size}"
            )
        self._batch = batch
        self.network = batch.network
        self.collector = _CollectorView(batch.collector, 0)

    @property
    def time(self) -> float:
        """Current simulation time."""
        return self._batch.time

    @property
    def utilization(self) -> Dict[str, UtilizationTracker]:
        """Per-node utilization of the selected replication."""
        return self._batch.utilization_of(0)

    def observations(self) -> Dict[str, QueueObservation]:
        """Queue observations of the selected replication."""
        return self._batch.observations()[0]

    def step(self, dt: float, phases: Mapping[str, int]) -> None:
        """Step the underlying batch one mini-slot forward."""
        self._batch.step(dt, (phases,))

    def finalize(self) -> None:
        """Flush remaining bookkeeping at the end of the horizon."""
        self._batch.finalize()

    def incoming_queue_total(self, road_id: str) -> int:
        """Queued count on one road of the selected replication."""
        return int(self._batch.incoming_queue_total(road_id)[0])

    def vehicles_in_network(self) -> int:
        """Vehicles currently inside the selected replication."""
        return int(self._batch.vehicles_in_network()[0])

    def backlog_size(self) -> int:
        """Blocked-entry backlog of the selected replication."""
        return int(self._batch.backlog_size()[0])


def _batch_from_scenarios(scenarios) -> BatchCountsSimulator:
    # ``scenarios`` are repro.scenarios.core.Scenario values of one
    # workload shape (same pattern and build parameters, one seed per
    # replication); typed loosely to keep the engine layer
    # import-independent of the scenario layer.
    first = scenarios[0]
    for scenario in scenarios[1:]:
        # A batch shares one plant: replications whose network, demand
        # or turning model differed would silently run on the first
        # scenario's dynamics under their own labels.
        if (
            scenario.name != first.name
            or scenario.demand != first.demand
            or scenario.turning != first.turning
            or list(scenario.network.roads) != list(first.network.roads)
        ):
            raise ValueError(
                f"batch replications must share one scenario shape: "
                f"{scenario.name!r} (seed {scenario.seed}) differs from "
                f"{first.name!r} (seed {first.seed})"
            )
    return BatchCountsSimulator(
        network=first.network,
        demand=first.demand,
        turning=first.turning,
        seeds=tuple(s.seed for s in scenarios),
    )


def _build_vectorized_single(scenario) -> SingleReplicationEngine:
    return SingleReplicationEngine(_batch_from_scenarios([scenario]))


register_engine("meso-vec", _build_vectorized_single)
register_batch_engine("meso-vec", _batch_from_scenarios)
