"""Vehicle entities of the mesoscopic engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["MesoVehicle"]


@dataclass
class MesoVehicle:
    """A vehicle progressing along a fixed route.

    Attributes
    ----------
    vehicle_id:
        Unique integer id (assigned by the simulator).
    route:
        Ordered road ids from entry to exit inclusive.
    leg:
        Index into ``route`` of the road the vehicle currently occupies.
    queued_since:
        Time at which the vehicle joined its current movement queue, or
        ``None`` while in transit.  Queuing time is accrued lazily from
        this timestamp when the vehicle is served (or when the run
        ends).
    """

    vehicle_id: int
    route: List[str]
    leg: int = 0
    queued_since: Optional[float] = None

    def __post_init__(self) -> None:
        if len(self.route) < 1:
            raise ValueError("route must contain at least one road")
        if not 0 <= self.leg < len(self.route):
            raise ValueError(
                f"leg {self.leg} out of range for route of {len(self.route)}"
            )

    @property
    def current_road(self) -> str:
        """The road the vehicle is currently on."""
        return self.route[self.leg]

    @property
    def next_road(self) -> Optional[str]:
        """The road the vehicle heads to next (``None`` on its last leg)."""
        if self.leg + 1 < len(self.route):
            return self.route[self.leg + 1]
        return None

    def advance(self) -> None:
        """Move the vehicle onto its next route leg."""
        if self.leg + 1 >= len(self.route):
            raise ValueError(
                f"vehicle {self.vehicle_id} is already on its final leg"
            )
        self.leg += 1
        self.queued_since = None
