"""Mesoscopic engine: the Sec.-II queuing model animated directly.

Vehicles are individual entities, but motion is abstracted to
*store-and-forward*: a served vehicle spends the road's free-flow time
in transit and then joins the dedicated movement queue of its next
turn.  Service respects the applied phase, the movement service rates
``µ_i^{i'}`` and the downstream capacities ``W_{i'}`` — exactly the
three conditions of Sec. II-C.

This engine is one-to-two orders of magnitude faster than the
microscopic one and is used for property-based tests (stability, work
conservation) and large parameter sweeps; the paper's headline figures
run on :mod:`repro.micro`.

:mod:`repro.meso.counts` implements the same dynamics again on
aggregate count structures (engine name ``"meso-counts"``): identical
queue-count trajectories under a shared seed, several times faster,
with aggregate-only metrics — the backend of choice for large
heterogeneous sweeps.  :mod:`repro.meso.vectorized` lifts those count
dynamics onto batched NumPy arrays (engine name ``"meso-vec"``):
``B`` seed-replications of one scenario shape stepped at once,
replication-exact against ``meso-counts`` — the backend of choice for
mass seed-replication.  :mod:`repro.meso.events` drives the same count
dynamics from a calendar event queue (engine name ``"meso-events"``):
bit-exact against ``meso-counts``, and fastest when most mini-slots
are idle (light load, large grids).
"""

from repro.meso.counts import CountsSimulator
from repro.meso.events import EventCountsSimulator
from repro.meso.simulator import MesoSimulator
from repro.meso.vehicle import MesoVehicle
from repro.meso.vectorized import BatchCountsSimulator

__all__ = [
    "BatchCountsSimulator",
    "CountsSimulator",
    "EventCountsSimulator",
    "MesoSimulator",
    "MesoVehicle",
]
