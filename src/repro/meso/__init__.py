"""Mesoscopic engine: the Sec.-II queuing model animated directly.

Vehicles are individual entities, but motion is abstracted to
*store-and-forward*: a served vehicle spends the road's free-flow time
in transit and then joins the dedicated movement queue of its next
turn.  Service respects the applied phase, the movement service rates
``µ_i^{i'}`` and the downstream capacities ``W_{i'}`` — exactly the
three conditions of Sec. II-C.

This engine is one-to-two orders of magnitude faster than the
microscopic one and is used for property-based tests (stability, work
conservation) and large parameter sweeps; the paper's headline figures
run on :mod:`repro.micro`.
"""

from repro.meso.simulator import MesoSimulator
from repro.meso.vehicle import MesoVehicle

__all__ = ["MesoSimulator", "MesoVehicle"]
