"""The scenario library: named, parameterized simulation workloads.

* :mod:`repro.scenarios.core` — the :class:`Scenario` value object and
  the paper's grid builder (``build_scenario``).
* :mod:`repro.scenarios.profiles` — per-side demand shapes (steady,
  tidal, surge) and turning-probability variants.
* :mod:`repro.scenarios.catalog` — the name registry, with dynamic
  ``<family>-<R>x<C>`` resolution for arbitrary grid sizes.
* :mod:`repro.scenarios.library` — the shipped families and catalog
  entries; imported here so the registry is populated by
  ``import repro.scenarios``.

``repro scenarios list`` on the command line prints the catalog;
:class:`~repro.orchestration.spec.RunSpec` accepts any catalog name in
its ``pattern`` field, so sweeps enumerate scenario names exactly like
the paper's patterns.
"""

from repro.scenarios.catalog import (
    ScenarioEntry,
    ScenarioFamily,
    accepted_scenario_params,
    build_named_scenario,
    catalog_entries,
    family_names,
    is_scenario_name,
    register_family,
    register_scenario,
    scenario_names,
    validate_scenario_params,
)
from repro.scenarios.core import (
    DEFAULT_DURATIONS,
    Scenario,
    build_scenario,
    demand_from_profile,
    entry_side,
    scale_schedule,
)
from repro.scenarios import library as _library  # noqa: F401  (registers catalog)

__all__ = [
    "Scenario",
    "build_scenario",
    "build_named_scenario",
    "demand_from_profile",
    "entry_side",
    "scale_schedule",
    "DEFAULT_DURATIONS",
    "ScenarioEntry",
    "ScenarioFamily",
    "register_family",
    "register_scenario",
    "family_names",
    "scenario_names",
    "catalog_entries",
    "is_scenario_name",
    "accepted_scenario_params",
    "validate_scenario_params",
]
