"""The paper's workload definitions: Tables I and II.

* Table I — turning probabilities of vehicles entering the network,
  per entry side.
* Table II — average inter-arrival time of vehicles entering the
  network, per entry side and traffic pattern:

  =========  ===============  ====  ====  ====  ====
  pattern    description      N     E     S     W
  =========  ===============  ====  ====  ====  ====
  I          adjacent heavy   3 s   5 s   7 s   9 s
  II         uniform          6 s   6 s   6 s   6 s
  III        opposite heavy   3 s   7 s   5 s   9 s
  IV         single heavy     3 s   9 s   9 s   9 s
  =========  ===============  ====  ====  ====  ====

  The *mixed* pattern concatenates patterns I-IV for one hour each
  (4 h total).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.arrivals import ArrivalSchedule
from repro.model.geometry import Direction
from repro.model.routing import TurningProbabilities

__all__ = [
    "TURNING",
    "PATTERNS",
    "PATTERN_NAMES",
    "MIXED_SEGMENT_DURATION",
    "interarrival_times",
    "arrival_schedule",
    "pattern_description",
]

#: Table I — right/left turning probabilities per entry side.
TURNING = TurningProbabilities(
    right={
        Direction.N: 0.4,
        Direction.E: 0.3,
        Direction.S: 0.4,
        Direction.W: 0.3,
    },
    left={
        Direction.N: 0.2,
        Direction.E: 0.3,
        Direction.S: 0.3,
        Direction.W: 0.4,
    },
)

#: Table II — mean inter-arrival time (seconds) per entry side.
_PATTERN_TABLE: Dict[str, Dict[Direction, float]] = {
    "I": {Direction.N: 3.0, Direction.E: 5.0, Direction.S: 7.0, Direction.W: 9.0},
    "II": {Direction.N: 6.0, Direction.E: 6.0, Direction.S: 6.0, Direction.W: 6.0},
    "III": {Direction.N: 3.0, Direction.E: 7.0, Direction.S: 5.0, Direction.W: 9.0},
    "IV": {Direction.N: 3.0, Direction.E: 9.0, Direction.S: 9.0, Direction.W: 9.0},
}

_DESCRIPTIONS: Dict[str, str] = {
    "I": "adjacent heavy",
    "II": "uniform",
    "III": "opposite heavy",
    "IV": "single heavy",
    "mixed": "patterns I-IV, one segment each",
}

#: Names accepted by :func:`arrival_schedule` and the scenario builder.
PATTERN_NAMES: Tuple[str, ...] = ("I", "II", "III", "IV", "mixed")

#: Duration of each pattern segment within the mixed pattern (paper: 1 h).
MIXED_SEGMENT_DURATION = 3600.0

PATTERNS = _PATTERN_TABLE  # public alias matching the paper's Table II


def pattern_description(pattern: str) -> str:
    """The paper's one-word description of a pattern."""
    try:
        return _DESCRIPTIONS[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; expected one of {PATTERN_NAMES}"
        )


def interarrival_times(pattern: str) -> Dict[Direction, float]:
    """Table II row for a (non-mixed) pattern."""
    try:
        return dict(_PATTERN_TABLE[pattern])
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; expected one of "
            f"{tuple(_PATTERN_TABLE)}"
        )


def arrival_schedule(
    pattern: str,
    side: Direction,
    segment_duration: float = MIXED_SEGMENT_DURATION,
) -> ArrivalSchedule:
    """Arrival schedule for one entry side under a pattern.

    For patterns I-IV this is a constant rate (1 / inter-arrival
    time).  For ``"mixed"`` it is the four patterns' rates back to
    back, each lasting ``segment_duration`` seconds; the final
    segment's rate persists beyond the nominal 4-segment horizon.
    """
    if pattern == "mixed":
        if segment_duration <= 0:
            raise ValueError(
                f"segment_duration must be > 0, got {segment_duration}"
            )
        pieces: List[Tuple[float, float]] = []
        for index, name in enumerate(("I", "II", "III", "IV")):
            rate = 1.0 / _PATTERN_TABLE[name][side]
            pieces.append((index * segment_duration, rate))
        return ArrivalSchedule.piecewise(pieces)
    return ArrivalSchedule.from_interarrival(interarrival_times(pattern)[side])
