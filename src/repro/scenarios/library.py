"""The shipped scenario catalog: families bound to public names.

Each family builder accepts the shared grid axes (``rows``, ``cols``,
``capacity``, ``service_rate``, ``road_length``), the ``load`` level
and family-specific shape parameters, and returns a plain
:class:`~repro.scenarios.core.Scenario` — the same object the paper's
:func:`~repro.scenarios.core.build_scenario` produces, so every engine
and driver runs catalog workloads unchanged.

Importing this module populates the registry in
:mod:`repro.scenarios.catalog`; the package ``__init__`` does that, so
``import repro.scenarios`` is all a worker process needs.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.scenarios.patterns import TURNING
from repro.model.geometry import Direction
from repro.model.grid import (
    build_grid_network,
    entry_road_id,
    grid_node_id,
    internal_road_id,
)
from repro.model.routing import TurningProbabilities
from repro.scenarios.catalog import register_family, register_scenario
from repro.scenarios.core import Scenario, demand_from_profile
from repro.scenarios.profiles import (
    SideSchedules,
    asymmetric_turning,
    steady_profile,
    surge_profile,
    tidal_profile,
)

__all__ = [
    "STEADY",
    "TIDAL",
    "SURGE",
    "INCIDENT",
    "ASYMMETRIC",
    "GRIDLOCK",
    "incident_road",
]


def _grid_scenario(
    name: str,
    seed: int,
    rows: int,
    cols: int,
    per_side: SideSchedules,
    duration: float,
    turning: Optional[TurningProbabilities] = None,
    capacity: int = 120,
    service_rate: float = 1.0,
    road_length: float = 300.0,
    capacity_overrides: Optional[Mapping[str, int]] = None,
    node_service_rates: Optional[Mapping[str, float]] = None,
) -> Scenario:
    """Assemble a scenario from a grid spec and a per-side profile."""
    network = build_grid_network(
        rows,
        cols,
        capacity=capacity,
        road_length=road_length,
        service_rate=service_rate,
        capacity_overrides=capacity_overrides,
        node_service_rates=node_service_rates,
    )
    return Scenario(
        name=name,
        network=network,
        demand=demand_from_profile(network, per_side),
        turning=turning or TURNING,
        seed=seed,
        default_duration=duration,
    )


def _build_steady(
    name: str = "steady",
    seed: int = 0,
    rows: int = 3,
    cols: int = 3,
    load: float = 1.0,
    duration: float = 3600.0,
    **grid_kwargs: Any,
) -> Scenario:
    return _grid_scenario(
        name, seed, rows, cols, steady_profile(load), duration, **grid_kwargs
    )


def _build_tidal(
    name: str = "tidal",
    seed: int = 0,
    rows: int = 3,
    cols: int = 3,
    load: float = 1.0,
    reversal_time: float = 1800.0,
    peak_factor: float = 2.0,
    offpeak_factor: float = 0.5,
    duration: Optional[float] = None,
    **grid_kwargs: Any,
) -> Scenario:
    per_side = tidal_profile(
        load,
        reversal_time=reversal_time,
        peak_factor=peak_factor,
        offpeak_factor=offpeak_factor,
    )
    if duration is None:
        duration = 2 * reversal_time
    return _grid_scenario(
        name, seed, rows, cols, per_side, duration, **grid_kwargs
    )


def _build_surge(
    name: str = "surge",
    seed: int = 0,
    rows: int = 3,
    cols: int = 3,
    load: float = 1.0,
    surge_start: float = 1200.0,
    surge_duration: float = 1200.0,
    surge_factor: float = 2.5,
    duration: float = 3600.0,
    **grid_kwargs: Any,
) -> Scenario:
    per_side = surge_profile(
        load,
        surge_start=surge_start,
        surge_duration=surge_duration,
        surge_factor=surge_factor,
    )
    return _grid_scenario(
        name, seed, rows, cols, per_side, duration, **grid_kwargs
    )


def incident_road(rows: int, cols: int) -> str:
    """The road an ``incident`` scenario degrades on an RxC grid.

    The road feeding the central intersection from its west neighbour;
    single-column grids fall back to the north neighbour, and a 1x1
    grid to the western entry road.
    """
    mid_row, mid_col = rows // 2, cols // 2
    center = grid_node_id(mid_row, mid_col)
    if mid_col >= 1:
        return internal_road_id(grid_node_id(mid_row, mid_col - 1), center)
    if mid_row >= 1:
        return internal_road_id(grid_node_id(mid_row - 1, mid_col), center)
    return entry_road_id(Direction.W, center)


def _build_incident(
    name: str = "incident",
    seed: int = 0,
    rows: int = 3,
    cols: int = 3,
    load: float = 1.0,
    capacity: int = 120,
    service_rate: float = 1.0,
    capacity_factor: float = 0.4,
    service_factor: float = 0.5,
    duration: float = 3600.0,
    **grid_kwargs: Any,
) -> Scenario:
    """Steady demand over a grid with a lane-capacity-drop incident.

    The central intersection's main feeder keeps only
    ``capacity_factor`` of its lanes and the junction serves at
    ``service_factor`` of the nominal rate — demand does not adapt.
    """
    degraded = incident_road(rows, cols)
    overrides: Dict[str, int] = {
        degraded: max(1, int(capacity * capacity_factor))
    }
    node_rates = {
        grid_node_id(rows // 2, cols // 2): service_rate * service_factor
    }
    return _grid_scenario(
        name,
        seed,
        rows,
        cols,
        steady_profile(load),
        duration,
        capacity=capacity,
        service_rate=service_rate,
        capacity_overrides=overrides,
        node_service_rates=node_rates,
        **grid_kwargs,
    )


def _build_asymmetric(
    name: str = "asymmetric",
    seed: int = 0,
    rows: int = 3,
    cols: int = 3,
    load: float = 1.0,
    heavy_side: Direction = Direction.N,
    heavy_left: float = 0.55,
    duration: float = 3600.0,
    **grid_kwargs: Any,
) -> Scenario:
    turning = asymmetric_turning(heavy_side=heavy_side, heavy_left=heavy_left)
    return _grid_scenario(
        name,
        seed,
        rows,
        cols,
        steady_profile(load),
        duration,
        turning=turning,
        **grid_kwargs,
    )


def _build_gridlock(
    name: str = "gridlock",
    seed: int = 0,
    rows: int = 3,
    cols: int = 3,
    load: float = 1.6,
    duration: float = 3600.0,
    **grid_kwargs: Any,
) -> Scenario:
    return _grid_scenario(
        name, seed, rows, cols, steady_profile(load), duration, **grid_kwargs
    )


#: The ``**grid_kwargs`` every family builder forwards verbatim to
#: :func:`_grid_scenario`; declared at registration so the catalog can
#: validate sweep parameters eagerly (families that bind one of these
#: themselves must subtract it — passing it again would be a
#: ``TypeError``, exactly what eager validation exists to prevent).
_GRID_PASSTHROUGH = frozenset(
    {
        "turning",
        "capacity",
        "service_rate",
        "road_length",
        "capacity_overrides",
        "node_service_rates",
    }
)

STEADY = register_family(
    "steady",
    "uniform constant Poisson demand on all sides",
    _build_steady,
    extra_params=_GRID_PASSTHROUGH,
)
TIDAL = register_family(
    "tidal",
    "peak-direction demand that reverses mid-horizon (commute tide)",
    _build_tidal,
    extra_params=_GRID_PASSTHROUGH,
)
SURGE = register_family(
    "surge",
    "uniform base load with a step-change surge window (flash crowd)",
    _build_surge,
    extra_params=_GRID_PASSTHROUGH,
)
INCIDENT = register_family(
    "incident",
    "steady demand over a lane-capacity-drop at the central junction",
    _build_incident,
    # capacity/service_rate are explicit builder params and the
    # overrides are computed from the incident shape itself.
    extra_params=_GRID_PASSTHROUGH
    - {"capacity", "service_rate", "capacity_overrides", "node_service_rates"},
)
ASYMMETRIC = register_family(
    "asymmetric",
    "steady demand with a dominant left-turn stream from one side",
    _build_asymmetric,
    # turning is derived from heavy_side/heavy_left.
    extra_params=_GRID_PASSTHROUGH - {"turning"},
)
GRIDLOCK = register_family(
    "gridlock",
    "over-saturating uniform demand (stability stress)",
    _build_gridlock,
    extra_params=_GRID_PASSTHROUGH,
)

register_scenario(
    "steady-3x3", STEADY, "paper-style uniform demand, 3x3 grid",
    rows=3, cols=3,
)
register_scenario(
    "steady-4x4", STEADY, "uniform demand scaled to a 4x4 grid",
    rows=4, cols=4,
)
register_scenario(
    "tidal-3x3", TIDAL, "N/E peak reversing to S/W at mid-horizon, 3x3",
    rows=3, cols=3,
)
register_scenario(
    "tidal-4x4", TIDAL, "commute tide on a 4x4 grid",
    rows=4, cols=4,
)
register_scenario(
    "surge-3x3", SURGE, "2.5x N/E surge for 20 min mid-run, 3x3",
    rows=3, cols=3,
)
register_scenario(
    "surge-4x4", SURGE, "2.5x N/E surge for 20 min mid-run, 4x4",
    rows=4, cols=4,
)
register_scenario(
    "incident-3x3", INCIDENT,
    "central feeder loses 60% capacity, junction serves at half rate, 3x3",
    rows=3, cols=3,
)
register_scenario(
    "incident-4x4", INCIDENT, "central lane-capacity-drop on a 4x4 grid",
    rows=4, cols=4,
)
register_scenario(
    "asymmetric-3x3", ASYMMETRIC,
    "55% of northern entries turn left (starves opposing straight), 3x3",
    rows=3, cols=3,
)
register_scenario(
    "gridlock-3x3", GRIDLOCK, "1.6x uniform overload (stability stress), 3x3",
    rows=3, cols=3,
)
