"""The :class:`Scenario` value object and the paper's grid builder.

A :class:`Scenario` bundles everything a run needs except the
controller: the network, the per-entry arrival schedules, the turning
probabilities and the seed.  :func:`build_scenario` creates the paper's
setup — a 3x3 grid of Fig.-1 intersections with ``W_i = 120``,
``µ = 1`` and Table I/II demand — and is parameterized so tests and
ablations can build smaller or differently loaded variants.

The catalog of richer workloads (tidal, surge, incident, ...) lives in
:mod:`repro.scenarios.library`; every catalog builder returns the same
:class:`Scenario` object this module defines, so engines, the runner
and the orchestration layer are agnostic to where a scenario came from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.scenarios.patterns import (
    MIXED_SEGMENT_DURATION,
    PATTERN_NAMES,
    TURNING,
    arrival_schedule,
)
from repro.model.arrivals import ArrivalSchedule
from repro.model.geometry import Direction
from repro.model.grid import build_grid_network
from repro.model.network import Network
from repro.model.routing import TurningProbabilities

__all__ = [
    "Scenario",
    "build_scenario",
    "demand_from_profile",
    "entry_side",
    "scale_schedule",
    "DEFAULT_DURATIONS",
]

#: The simulation horizon the paper uses per pattern (Sec. V): one hour
#: for patterns I-IV, four hours for the mixed pattern.
DEFAULT_DURATIONS: Dict[str, float] = {
    "I": 3600.0,
    "II": 3600.0,
    "III": 3600.0,
    "IV": 3600.0,
    "mixed": 4 * 3600.0,
}


@dataclass
class Scenario:
    """A fully specified simulation scenario (sans controller)."""

    name: str
    network: Network
    demand: Dict[str, ArrivalSchedule]
    turning: TurningProbabilities
    seed: int
    default_duration: float = 3600.0

    def __post_init__(self) -> None:
        entry_roads = set(self.network.entry_roads())
        unknown = set(self.demand) - entry_roads
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} declares demand on non-entry roads: "
                f"{sorted(unknown)}"
            )


def entry_side(road_id: str) -> Optional[Direction]:
    """Entry side encoded in a grid boundary road id (``IN:N@J01``)."""
    if not road_id.startswith("IN:"):
        return None
    return Direction(road_id[3])


def scale_schedule(schedule: ArrivalSchedule, factor: float) -> ArrivalSchedule:
    """A copy of ``schedule`` with every rate multiplied by ``factor``."""
    if factor == 1.0:
        return schedule
    return ArrivalSchedule.piecewise(
        [(start, rate * factor) for start, rate in schedule.segments]
    )


def demand_from_profile(
    network: Network, per_side: Mapping[Direction, ArrivalSchedule]
) -> Dict[str, ArrivalSchedule]:
    """Assign a per-side schedule map to every entry road of a network.

    This is how every scenario family turns a *demand profile* (four
    side schedules) into the per-road demand dict a
    :class:`Scenario` carries, independent of the grid's size.
    """
    demand: Dict[str, ArrivalSchedule] = {}
    for road_id in network.entry_roads():
        side = entry_side(road_id)
        if side is None:
            continue
        demand[road_id] = per_side[side]
    return demand


def build_scenario(
    pattern: str = "I",
    seed: int = 0,
    rows: int = 3,
    cols: int = 3,
    capacity: int = 120,
    service_rate: float = 1.0,
    road_length: float = 300.0,
    turning: Optional[TurningProbabilities] = None,
    mixed_segment_duration: float = MIXED_SEGMENT_DURATION,
    demand_scale: float = 1.0,
) -> Scenario:
    """Build the paper's 3x3 evaluation scenario (or a variant).

    Parameters
    ----------
    pattern:
        ``"I"``-``"IV"`` or ``"mixed"`` (Table II).
    seed:
        Base seed for all stochastic streams.
    rows, cols, capacity, service_rate, road_length:
        Network parameters; defaults are the paper's.
    turning:
        Turning probabilities; defaults to Table I.
    mixed_segment_duration:
        Per-pattern segment length inside the mixed schedule.  The
        paper uses one hour; benchmarks shrink it to keep CI fast.
    demand_scale:
        Multiplier on every arrival rate (1.0 = paper demand).  Used
        by stability/ablation studies.
    """
    if pattern not in PATTERN_NAMES:
        raise ValueError(
            f"unknown pattern {pattern!r}; expected one of {PATTERN_NAMES}"
        )
    if demand_scale <= 0:
        raise ValueError(f"demand_scale must be > 0, got {demand_scale}")

    network = build_grid_network(
        rows,
        cols,
        capacity=capacity,
        road_length=road_length,
        service_rate=service_rate,
    )
    per_side = {
        side: scale_schedule(
            arrival_schedule(
                pattern, side, segment_duration=mixed_segment_duration
            ),
            demand_scale,
        )
        for side in Direction
    }
    demand = demand_from_profile(network, per_side)

    duration = DEFAULT_DURATIONS[pattern]
    if pattern == "mixed":
        duration = 4 * mixed_segment_duration
    return Scenario(
        name=f"grid{rows}x{cols}-pattern-{pattern}",
        network=network,
        demand=demand,
        turning=turning or TURNING,
        seed=seed,
        default_duration=duration,
    )
