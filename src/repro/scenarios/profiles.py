"""Demand profiles: per-side arrival-rate shapes over time.

A *profile* maps each compass entry side to an
:class:`~repro.model.arrivals.ArrivalSchedule`; it is independent of
the grid size, so the same profile drives a 2x2 and a 6x6 network
(:func:`repro.scenarios.core.demand_from_profile` fans it out over
whatever entry roads the grid has).  All rates scale linearly with
``load`` (``1.0`` ≈ the paper's uniform Pattern-II intensity per side).

Profiles
--------
steady      constant uniform rate on all four sides
tidal       a peak direction carries heavy flow, then the peak
            reverses mid-horizon (morning/evening commute)
surge       uniform base load with a step-change surge window on the
            peak sides (flash crowd / event egress)
incident    the demand half of an incident scenario: uniform load that
            does *not* adapt while the network loses capacity
asymmetric  constant rates but skewed turning probabilities
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.model.arrivals import ArrivalSchedule
from repro.model.geometry import Direction
from repro.model.routing import TurningProbabilities
from repro.util.validation import check_positive

__all__ = [
    "BASE_INTERARRIVAL",
    "steady_profile",
    "tidal_profile",
    "surge_profile",
    "asymmetric_turning",
]

#: Mean inter-arrival time (s) per side at ``load = 1.0`` — the
#: paper's uniform Pattern II intensity.
BASE_INTERARRIVAL = 6.0

#: The base per-side rate (veh/s) at ``load = 1.0``.
BASE_RATE = 1.0 / BASE_INTERARRIVAL

SideSchedules = Dict[Direction, ArrivalSchedule]


def steady_profile(load: float = 1.0) -> SideSchedules:
    """Constant, side-uniform Poisson demand."""
    check_positive("load", load)
    schedule = ArrivalSchedule.constant(load * BASE_RATE)
    return {side: schedule for side in Direction}


def tidal_profile(
    load: float = 1.0,
    reversal_time: float = 1800.0,
    peak_factor: float = 2.0,
    offpeak_factor: float = 0.5,
) -> SideSchedules:
    """Peak-direction demand that reverses mid-horizon.

    Until ``reversal_time`` the north and east sides carry
    ``peak_factor`` times the base rate while south and west carry
    ``offpeak_factor`` times it; afterwards the peak flips to
    south/west — the classic morning/evening commute tide.
    """
    check_positive("load", load)
    check_positive("reversal_time", reversal_time)
    check_positive("peak_factor", peak_factor)
    check_positive("offpeak_factor", offpeak_factor)
    peak = load * BASE_RATE * peak_factor
    off = load * BASE_RATE * offpeak_factor
    morning_peak = (Direction.N, Direction.E)
    profile: SideSchedules = {}
    for side in Direction:
        first, second = (peak, off) if side in morning_peak else (off, peak)
        profile[side] = ArrivalSchedule.piecewise(
            [(0.0, first), (reversal_time, second)]
        )
    return profile


def surge_profile(
    load: float = 1.0,
    surge_start: float = 1200.0,
    surge_duration: float = 1200.0,
    surge_factor: float = 2.5,
    surge_sides: Tuple[Direction, ...] = (Direction.N, Direction.E),
) -> SideSchedules:
    """Uniform base demand with a step-change surge window.

    During ``[surge_start, surge_start + surge_duration)`` the
    ``surge_sides`` jump to ``surge_factor`` times the base rate and
    then drop back — the abrupt regime change backpressure control and
    changepoint-sensitive evaluation care about.
    """
    check_positive("load", load)
    check_positive("surge_start", surge_start)
    check_positive("surge_duration", surge_duration)
    check_positive("surge_factor", surge_factor)
    base = load * BASE_RATE
    surged = ArrivalSchedule.piecewise(
        [
            (0.0, base),
            (surge_start, base * surge_factor),
            (surge_start + surge_duration, base),
        ]
    )
    steady = ArrivalSchedule.constant(base)
    return {
        side: surged if side in surge_sides else steady for side in Direction
    }


def asymmetric_turning(
    heavy_side: Direction = Direction.N,
    heavy_left: float = 0.55,
    base_right: float = 0.15,
    base_left: float = 0.15,
) -> TurningProbabilities:
    """Turning probabilities skewed towards one heavy left-turn side.

    Vehicles entering from ``heavy_side`` mostly turn left (a
    dominant turning stream starves the opposing straight phase —
    the asymmetric workload the paper's Table I only hints at).
    """
    right = {side: base_right for side in Direction}
    left = {side: base_left for side in Direction}
    left[heavy_side] = heavy_left
    return TurningProbabilities(right=right, left=left)
