"""The scenario registry: named, parameterized workload builders.

Two levels of registration:

* A **family** is a parameterized builder — ``builder(name=..., rows=...,
  cols=..., seed=..., load=..., **family_params) -> Scenario`` — one per
  demand-profile shape (steady, tidal, surge, incident, ...).
* A **catalog entry** binds a family to a concrete public name and
  default parameters (``surge-4x4`` = the surge family on a 4x4 grid).

Names that are not registered but match ``<family>-<R>x<C>`` resolve
dynamically: ``steady-2x5`` builds the steady family on a 2x5 grid even
though only 3x3/4x4 variants ship in the catalog.  That is what makes
the grid axis genuinely *arbitrary* from the CLI and from
:class:`~repro.orchestration.spec.RunSpec` without pre-registering every
size.

Everything here is import-time static (no I/O, no randomness): a
worker process that imports :mod:`repro.scenarios` sees the identical
catalog, which the orchestration layer's spec hashing relies on.
"""

from __future__ import annotations

import inspect
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.scenarios.core import Scenario, build_scenario
from repro.scenarios.patterns import PATTERN_NAMES

__all__ = [
    "ScenarioFamily",
    "ScenarioEntry",
    "register_family",
    "register_scenario",
    "family_names",
    "scenario_names",
    "catalog_entries",
    "is_scenario_name",
    "build_named_scenario",
    "accepted_scenario_params",
    "validate_scenario_params",
]

#: Builder signature of a family: keyword-only scenario construction.
FamilyBuilder = Callable[..., Scenario]

#: ``<family>-<rows>x<cols>`` — the dynamic-name shape (1-based dims,
#: so zero-dimension grids fail validation here, not mid-sweep).
_GRID_NAME = re.compile(
    r"(?P<family>[a-z][a-z0-9-]*?)-(?P<rows>[1-9]\d*)x(?P<cols>[1-9]\d*)"
)


@dataclass(frozen=True)
class ScenarioFamily:
    """A demand-profile shape, parameterized by grid size and load.

    ``extra_params`` names the keyword arguments a ``**kwargs``-taking
    builder forwards to its helpers (so eager validation can still
    enumerate what the family accepts).  ``None`` means "unknown":
    validation then accepts anything beyond the builder's explicit
    signature rather than rejecting parameters it cannot see.
    """

    name: str
    description: str
    builder: FamilyBuilder
    extra_params: Optional[FrozenSet[str]] = None


@dataclass(frozen=True)
class ScenarioEntry:
    """One public catalog name: a family bound to default parameters."""

    name: str
    family: ScenarioFamily
    description: str
    defaults: Mapping[str, Any] = field(default_factory=dict)

    @property
    def grid(self) -> str:
        """``RxC`` shorthand of the entry's default grid."""
        rows = self.defaults.get("rows", 3)
        cols = self.defaults.get("cols", 3)
        return f"{rows}x{cols}"

    def build(self, seed: int = 0, **overrides: Any) -> Scenario:
        """Build the scenario (overrides win over entry defaults)."""
        params: Dict[str, Any] = dict(self.defaults)
        params.update(overrides)
        return self.family.builder(name=self.name, seed=seed, **params)


_FAMILIES: Dict[str, ScenarioFamily] = {}
_REGISTRY: Dict[str, ScenarioEntry] = {}


def register_family(
    name: str,
    description: str,
    builder: FamilyBuilder,
    extra_params: Optional[Iterable[str]] = None,
) -> ScenarioFamily:
    """Register a scenario family (idempotent per name).

    ``extra_params`` declares the pass-through keywords a
    ``**kwargs``-taking builder accepts (see
    :class:`ScenarioFamily`); leave it ``None`` to opt the family out
    of eager parameter validation.
    """
    family = ScenarioFamily(
        name=name,
        description=description,
        builder=builder,
        extra_params=(
            None if extra_params is None else frozenset(extra_params)
        ),
    )
    _FAMILIES[name] = family
    return family


def register_scenario(
    name: str,
    family: ScenarioFamily,
    description: str,
    **defaults: Any,
) -> ScenarioEntry:
    """Bind a family + defaults to a public catalog name."""
    entry = ScenarioEntry(
        name=name, family=family, description=description, defaults=defaults
    )
    _REGISTRY[name] = entry
    return entry


def family_names() -> Tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


def scenario_names() -> Tuple[str, ...]:
    """All registered catalog names, sorted."""
    return tuple(sorted(_REGISTRY))


def catalog_entries() -> Tuple[ScenarioEntry, ...]:
    """All catalog entries, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())


def _dynamic_entry(name: str) -> ScenarioEntry:
    """Resolve an unregistered ``<family>-<R>x<C>`` name on the fly."""
    match = _GRID_NAME.fullmatch(name)
    if match is None or match.group("family") not in _FAMILIES:
        raise ValueError(
            f"unknown scenario {name!r}; registered: {list(scenario_names())} "
            f"(or <family>-<R>x<C> with family in {list(family_names())})"
        )
    family = _FAMILIES[match.group("family")]
    rows, cols = int(match.group("rows")), int(match.group("cols"))
    return ScenarioEntry(
        name=name,
        family=family,
        description=f"{family.description} (dynamic {rows}x{cols} grid)",
        defaults={"rows": rows, "cols": cols},
    )


def is_scenario_name(name: str) -> bool:
    """True if ``name`` resolves to a catalog entry (static or dynamic)."""
    if name in _REGISTRY:
        return True
    match = _GRID_NAME.fullmatch(name)
    return match is not None and match.group("family") in _FAMILIES


def build_named_scenario(name: str, seed: int = 0, **overrides: Any) -> Scenario:
    """Build a catalog scenario by name.

    ``overrides`` are forwarded to the family builder on top of the
    entry's defaults (e.g. ``load=1.4`` or ``rows=6``), so sweeps can
    vary the load/grid axes of any named workload.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        entry = _dynamic_entry(name)
    return entry.build(seed=seed, **overrides)


# -- eager builder-signature validation ---------------------------------------
#
# Sweep grids share ``scenario_params`` across their whole workload
# axis.  A pattern-only keyword (``mixed_segment_duration``) landing on
# a catalog cell used to surface as a ``TypeError`` inside a worker
# process mid-sweep; the helpers below let the orchestration layer
# reject such grids at construction time with a message that names the
# offending parameter and what the workload actually accepts.

#: Builder arguments supplied by the registry itself, never by sweeps.
_RESERVED_BUILDER_ARGS = frozenset({"name", "seed", "pattern"})


def _explicit_keywords(builder: Callable[..., Any]) -> Tuple[FrozenSet[str], bool]:
    """A builder's named keyword parameters and whether it has ``**kwargs``."""
    accepts_kwargs = False
    names = set()
    for parameter in inspect.signature(builder).parameters.values():
        if parameter.kind == inspect.Parameter.VAR_KEYWORD:
            accepts_kwargs = True
        elif parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            names.add(parameter.name)
    return frozenset(names - _RESERVED_BUILDER_ARGS), accepts_kwargs


def accepted_scenario_params(workload: str) -> Optional[FrozenSet[str]]:
    """The ``scenario_params`` keys a workload's builder accepts.

    ``workload`` is either one of the paper's pattern names (built by
    :func:`~repro.scenarios.core.build_scenario`) or a catalog name
    (built by its family's builder).  Returns ``None`` when the set
    cannot be determined — a ``**kwargs`` builder whose family declared
    no ``extra_params`` — in which case callers must not reject
    anything.  Raises ``ValueError`` for unknown workload names.
    """
    if workload in PATTERN_NAMES:
        names, _ = _explicit_keywords(build_scenario)
        return names
    entry = _REGISTRY.get(workload)
    if entry is None:
        entry = _dynamic_entry(workload)  # raises for unknown names
    family = entry.family
    names, accepts_kwargs = _explicit_keywords(family.builder)
    if not accepts_kwargs:
        return names
    if family.extra_params is None:
        return None
    return names | family.extra_params


def validate_scenario_params(
    workload: str,
    params: Union[Mapping[str, Any], Iterable[Tuple[str, Any]]],
) -> None:
    """Reject ``scenario_params`` the workload's builder cannot accept.

    Raises ``ValueError`` naming the unknown keys and the accepted
    ones, so a misassembled sweep grid fails at construction instead
    of as a ``TypeError`` inside a worker mid-sweep.
    """
    keys = set(params.keys() if isinstance(params, Mapping) else (k for k, _ in params))
    if not keys:
        return
    accepted = accepted_scenario_params(workload)
    if accepted is None:
        return
    unknown = keys - accepted
    if unknown:
        raise ValueError(
            f"scenario parameter(s) {sorted(unknown)} are not accepted by "
            f"workload {workload!r} (its builder accepts: "
            f"{sorted(accepted)}); per-workload parameters belong on that "
            f"workload's own axis entry, not on the shared scenario_params"
        )
