"""The scenario registry: named, parameterized workload builders.

Two levels of registration:

* A **family** is a parameterized builder — ``builder(name=..., rows=...,
  cols=..., seed=..., load=..., **family_params) -> Scenario`` — one per
  demand-profile shape (steady, tidal, surge, incident, ...).
* A **catalog entry** binds a family to a concrete public name and
  default parameters (``surge-4x4`` = the surge family on a 4x4 grid).

Names that are not registered but match ``<family>-<R>x<C>`` resolve
dynamically: ``steady-2x5`` builds the steady family on a 2x5 grid even
though only 3x3/4x4 variants ship in the catalog.  That is what makes
the grid axis genuinely *arbitrary* from the CLI and from
:class:`~repro.orchestration.spec.RunSpec` without pre-registering every
size.

Everything here is import-time static (no I/O, no randomness): a
worker process that imports :mod:`repro.scenarios` sees the identical
catalog, which the orchestration layer's spec hashing relies on.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple

from repro.scenarios.core import Scenario

__all__ = [
    "ScenarioFamily",
    "ScenarioEntry",
    "register_family",
    "register_scenario",
    "family_names",
    "scenario_names",
    "catalog_entries",
    "is_scenario_name",
    "build_named_scenario",
]

#: Builder signature of a family: keyword-only scenario construction.
FamilyBuilder = Callable[..., Scenario]

#: ``<family>-<rows>x<cols>`` — the dynamic-name shape (1-based dims,
#: so zero-dimension grids fail validation here, not mid-sweep).
_GRID_NAME = re.compile(
    r"(?P<family>[a-z][a-z0-9-]*?)-(?P<rows>[1-9]\d*)x(?P<cols>[1-9]\d*)"
)


@dataclass(frozen=True)
class ScenarioFamily:
    """A demand-profile shape, parameterized by grid size and load."""

    name: str
    description: str
    builder: FamilyBuilder


@dataclass(frozen=True)
class ScenarioEntry:
    """One public catalog name: a family bound to default parameters."""

    name: str
    family: ScenarioFamily
    description: str
    defaults: Mapping[str, Any] = field(default_factory=dict)

    @property
    def grid(self) -> str:
        """``RxC`` shorthand of the entry's default grid."""
        rows = self.defaults.get("rows", 3)
        cols = self.defaults.get("cols", 3)
        return f"{rows}x{cols}"

    def build(self, seed: int = 0, **overrides: Any) -> Scenario:
        """Build the scenario (overrides win over entry defaults)."""
        params: Dict[str, Any] = dict(self.defaults)
        params.update(overrides)
        return self.family.builder(name=self.name, seed=seed, **params)


_FAMILIES: Dict[str, ScenarioFamily] = {}
_REGISTRY: Dict[str, ScenarioEntry] = {}


def register_family(
    name: str, description: str, builder: FamilyBuilder
) -> ScenarioFamily:
    """Register a scenario family (idempotent per name)."""
    family = ScenarioFamily(name=name, description=description, builder=builder)
    _FAMILIES[name] = family
    return family


def register_scenario(
    name: str,
    family: ScenarioFamily,
    description: str,
    **defaults: Any,
) -> ScenarioEntry:
    """Bind a family + defaults to a public catalog name."""
    entry = ScenarioEntry(
        name=name, family=family, description=description, defaults=defaults
    )
    _REGISTRY[name] = entry
    return entry


def family_names() -> Tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


def scenario_names() -> Tuple[str, ...]:
    """All registered catalog names, sorted."""
    return tuple(sorted(_REGISTRY))


def catalog_entries() -> Tuple[ScenarioEntry, ...]:
    """All catalog entries, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())


def _dynamic_entry(name: str) -> ScenarioEntry:
    """Resolve an unregistered ``<family>-<R>x<C>`` name on the fly."""
    match = _GRID_NAME.fullmatch(name)
    if match is None or match.group("family") not in _FAMILIES:
        raise ValueError(
            f"unknown scenario {name!r}; registered: {list(scenario_names())} "
            f"(or <family>-<R>x<C> with family in {list(family_names())})"
        )
    family = _FAMILIES[match.group("family")]
    rows, cols = int(match.group("rows")), int(match.group("cols"))
    return ScenarioEntry(
        name=name,
        family=family,
        description=f"{family.description} (dynamic {rows}x{cols} grid)",
        defaults={"rows": rows, "cols": cols},
    )


def is_scenario_name(name: str) -> bool:
    """True if ``name`` resolves to a catalog entry (static or dynamic)."""
    if name in _REGISTRY:
        return True
    match = _GRID_NAME.fullmatch(name)
    return match is not None and match.group("family") in _FAMILIES


def build_named_scenario(name: str, seed: int = 0, **overrides: Any) -> Scenario:
    """Build a catalog scenario by name.

    ``overrides`` are forwarded to the family builder on top of the
    entry's defaults (e.g. ``load=1.4`` or ``rows=6``), so sweeps can
    vary the load/grid axes of any named workload.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        entry = _dynamic_entry(name)
    return entry.build(seed=seed, **overrides)
