"""Junction-utilization measures.

The paper argues about *utilization* qualitatively; to make the
ablation benchmarks quantitative we define, per intersection:

* **service utilization** — vehicles actually served divided by the
  maximum the applied phases could have served (``sum mu * dt`` over
  green mini-slots);
* **amber share** — fraction of time spent in transition phases;
* **wasted green** — green mini-slots during which an activated
  movement served nothing because its queue was empty or its
  downstream road was full (the two special cases of Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["UtilizationTracker"]


@dataclass
class UtilizationTracker:
    """Accumulates utilization statistics for one intersection."""

    node_id: str
    green_time: float = 0.0
    amber_time: float = 0.0
    service_capacity: float = 0.0
    vehicles_served: int = 0
    wasted_green_slots: int = 0
    green_slots: int = 0

    def record_slot(
        self,
        phase_index: int,
        dt: float,
        max_service: float,
        served: int,
        had_servable_link: bool,
    ) -> None:
        """Record one mini-slot.

        Parameters
        ----------
        phase_index:
            The applied phase (0 = transition).
        dt:
            Mini-slot length in seconds.
        max_service:
            ``sum mu * dt`` over the phase's movements (0 for amber).
        served:
            Vehicles actually served during the mini-slot.
        had_servable_link:
            Whether at least one activated movement had a non-empty
            queue and a non-full downstream road at the slot start.
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if served < 0:
            raise ValueError(f"served must be >= 0, got {served}")
        if phase_index == 0:
            self.amber_time += dt
            return
        self.green_time += dt
        self.green_slots += 1
        self.service_capacity += max_service
        self.vehicles_served += served
        if served == 0 and not had_servable_link:
            self.wasted_green_slots += 1

    @property
    def service_utilization(self) -> float:
        """Served vehicles / maximum serveable vehicles (0..1)."""
        if self.service_capacity == 0:
            return 0.0
        return self.vehicles_served / self.service_capacity

    @property
    def amber_share(self) -> float:
        """Amber time / total controlled time (0..1)."""
        total = self.green_time + self.amber_time
        return self.amber_time / total if total > 0 else 0.0

    @property
    def wasted_green_share(self) -> float:
        """Fraction of green mini-slots with nothing servable (0..1)."""
        if self.green_slots == 0:
            return 0.0
        return self.wasted_green_slots / self.green_slots

    def merged(self, other: "UtilizationTracker") -> "UtilizationTracker":
        """Combine two trackers (e.g. across intersections)."""
        merged = UtilizationTracker(node_id=f"{self.node_id}+{other.node_id}")
        for name in (
            "green_time",
            "amber_time",
            "service_capacity",
            "vehicles_served",
            "wasted_green_slots",
            "green_slots",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    def to_dict(self) -> Dict:
        """A JSON-serializable view of the tracker."""
        return {
            "node_id": self.node_id,
            "green_time": self.green_time,
            "amber_time": self.amber_time,
            "service_capacity": self.service_capacity,
            "vehicles_served": self.vehicles_served,
            "wasted_green_slots": self.wasted_green_slots,
            "green_slots": self.green_slots,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "UtilizationTracker":
        """Rebuild a tracker serialized with :meth:`to_dict`."""
        return cls(
            node_id=payload["node_id"],
            green_time=float(payload["green_time"]),
            amber_time=float(payload["amber_time"]),
            service_capacity=float(payload["service_capacity"]),
            vehicles_served=int(payload["vehicles_served"]),
            wasted_green_slots=int(payload["wasted_green_slots"]),
            green_slots=int(payload["green_slots"]),
        )
