"""Per-vehicle accounting and summary statistics.

The paper's headline metric is the *average queuing time of a vehicle
in the entire network*: the time a vehicle spends stopped in queues,
averaged over vehicles.  The microscopic engine accrues queuing time
whenever a vehicle's speed drops below 0.1 m/s (SUMO's accumulated
waiting-time definition); the mesoscopic engine accrues it while a
vehicle sits in a movement queue.  Vehicles still in the network when
the simulation ends contribute their waiting accumulated so far — a
congested controller cannot hide vehicles by never delivering them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Summary", "MetricsCollector"]


@dataclass(frozen=True)
class Summary:
    """Aggregate results of one simulation run."""

    duration: float
    vehicles_entered: int
    vehicles_left: int
    average_queuing_time: float
    average_travel_time: float
    total_queuing_time: float
    max_queuing_time: float
    throughput_per_hour: float
    #: How delay metrics were obtained: ``"per-vehicle"`` (exact
    #: per-vehicle records) or ``"aggregate"`` (counts-based engine:
    #: queuing totals exact, travel time a Little's-law estimate,
    #: max queuing unavailable).
    delay_mode: str = "per-vehicle"

    def __str__(self) -> str:
        flag = (
            ""
            if self.delay_mode == "per-vehicle"
            else f" [{self.delay_mode}: travel time is a Little's-law estimate]"
        )
        return (
            f"Summary(entered={self.vehicles_entered}, "
            f"left={self.vehicles_left}, "
            f"avg_queuing={self.average_queuing_time:.2f}s, "
            f"avg_travel={self.average_travel_time:.2f}s, "
            f"throughput={self.throughput_per_hour:.0f}/h)"
            f"{flag}"
        )

    def to_dict(self) -> Dict[str, float]:
        """A JSON-serializable view of the summary."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "Summary":
        """Rebuild a summary serialized with :meth:`to_dict`."""
        return cls(
            duration=float(payload["duration"]),
            vehicles_entered=int(payload["vehicles_entered"]),
            vehicles_left=int(payload["vehicles_left"]),
            average_queuing_time=float(payload["average_queuing_time"]),
            average_travel_time=float(payload["average_travel_time"]),
            total_queuing_time=float(payload["total_queuing_time"]),
            max_queuing_time=float(payload["max_queuing_time"]),
            throughput_per_hour=float(payload["throughput_per_hour"]),
            delay_mode=str(payload.get("delay_mode", "per-vehicle")),
        )


@dataclass
class _VehicleRecord:
    entered_at: float
    left_at: Optional[float] = None
    queuing_time: float = 0.0


@dataclass
class MetricsCollector:
    """Collects per-vehicle statistics during a run."""

    _records: Dict[int, _VehicleRecord] = field(default_factory=dict)
    _clock: float = 0.0

    def advance(self, now: float) -> None:
        """Move the collector clock forward (monotonic)."""
        if now < self._clock:
            raise ValueError(f"clock moved backwards: {now} < {self._clock}")
        self._clock = now

    @property
    def now(self) -> float:
        """The collector's current clock."""
        return self._clock

    def vehicle_entered(self, vehicle_id: int, time: float) -> None:
        """Register a vehicle entering the network."""
        if vehicle_id in self._records:
            raise ValueError(f"vehicle {vehicle_id} entered twice")
        self._records[vehicle_id] = _VehicleRecord(entered_at=time)

    def vehicle_left(self, vehicle_id: int, time: float) -> None:
        """Register a vehicle leaving the network."""
        record = self._require(vehicle_id)
        if record.left_at is not None:
            raise ValueError(f"vehicle {vehicle_id} left twice")
        if time < record.entered_at:
            raise ValueError(
                f"vehicle {vehicle_id} left at {time} before entering at "
                f"{record.entered_at}"
            )
        record.left_at = time

    def add_queuing_time(self, vehicle_id: int, seconds: float) -> None:
        """Accrue queuing (waiting) time for a vehicle."""
        if seconds < 0:
            raise ValueError(f"queuing time increment must be >= 0, got {seconds}")
        self._require(vehicle_id).queuing_time += seconds

    def _require(self, vehicle_id: int) -> _VehicleRecord:
        try:
            return self._records[vehicle_id]
        except KeyError:
            raise KeyError(f"unknown vehicle {vehicle_id}")

    # -- aggregate views ---------------------------------------------------

    @property
    def vehicles_entered(self) -> int:
        """Number of vehicles that have entered so far."""
        return len(self._records)

    @property
    def vehicles_left(self) -> int:
        """Number of vehicles that have completed their trip."""
        return sum(1 for r in self._records.values() if r.left_at is not None)

    def queuing_time_of(self, vehicle_id: int) -> float:
        """Accumulated queuing time of one vehicle."""
        return self._require(vehicle_id).queuing_time

    def summary(self, duration: Optional[float] = None) -> Summary:
        """Aggregate the run into a :class:`Summary`.

        ``duration`` defaults to the collector clock; it is used for
        the throughput rate only.
        """
        horizon = self._clock if duration is None else duration
        entered = self.vehicles_entered
        left = self.vehicles_left
        total_queuing = sum(r.queuing_time for r in self._records.values())
        max_queuing = max(
            (r.queuing_time for r in self._records.values()), default=0.0
        )
        travel_times = [
            r.left_at - r.entered_at
            for r in self._records.values()
            if r.left_at is not None
        ]
        avg_travel = sum(travel_times) / len(travel_times) if travel_times else 0.0
        avg_queuing = total_queuing / entered if entered else 0.0
        throughput = left / horizon * 3600.0 if horizon > 0 else 0.0
        return Summary(
            duration=horizon,
            vehicles_entered=entered,
            vehicles_left=left,
            average_queuing_time=avg_queuing,
            average_travel_time=avg_travel,
            total_queuing_time=total_queuing,
            max_queuing_time=max_queuing,
            throughput_per_hour=throughput,
        )
