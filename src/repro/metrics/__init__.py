"""Measurement: the quantities the paper's evaluation reports.

* :mod:`repro.metrics.collector` — per-vehicle queuing/travel time
  accounting, throughput, and the summary statistics behind Table III
  and Fig. 2.
* :mod:`repro.metrics.traces` — time-series recorders for phase traces
  (Figs. 3-4) and queue-length traces (Fig. 5).
* :mod:`repro.metrics.utilization` — junction-utilization measures
  (served vehicles per green mini-slot, amber share) used by the
  ablation benchmarks.
"""

from repro.metrics.aggregate import AggregateMetricsCollector
from repro.metrics.collector import MetricsCollector, Summary
from repro.metrics.traces import PhaseTrace, QueueTrace
from repro.metrics.utilization import UtilizationTracker

__all__ = [
    "AggregateMetricsCollector",
    "MetricsCollector",
    "Summary",
    "PhaseTrace",
    "QueueTrace",
    "UtilizationTracker",
]
