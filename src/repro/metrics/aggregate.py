"""Aggregate (counts-only) metrics accounting for the fast engine.

The per-vehicle :class:`~repro.metrics.collector.MetricsCollector`
keeps one record per vehicle, which is exactly the overhead the
counts-based engine exists to avoid.  This module provides the
aggregate alternative: the engine reports, once per mini-slot, how many
vehicles are currently waiting (queued at a stop line or gated in an
entry backlog) and how many are inside the network, and the collector
integrates those counts over time.

What stays **exact** (bit-for-bit equal to the per-vehicle books at
finalize time, for any fixed mini-slot):

* vehicles entered / left and throughput;
* *total* queuing time — the time integral of the waiting-vehicle
  count equals the sum of per-vehicle waiting durations, because both
  queue joins and services happen on mini-slot boundaries;
* average queuing time (total / entered).

What becomes an **estimate** (flagged via ``Summary.delay_mode ==
"aggregate"``):

* average travel time — Little's-law estimate: the vehicle-seconds
  spent inside the network divided by the number of completed trips;
* max queuing time — unavailable without per-vehicle records,
  reported as 0.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.metrics.collector import Summary

__all__ = ["AggregateMetricsCollector"]


@dataclass
class AggregateMetricsCollector:
    """Integrates aggregate vehicle counts instead of per-vehicle records.

    Duck-type compatible with the surface of
    :class:`~repro.metrics.collector.MetricsCollector` that engines,
    the runner and the tests use: ``advance``/``now``,
    ``vehicles_entered``, ``vehicles_left`` and ``summary``.
    """

    vehicles_entered: int = 0
    vehicles_left: int = 0
    #: Exact: integral of (queued + backlogged vehicles) over time.
    total_queuing_time: float = 0.0
    #: Basis of the Little's-law travel-time estimate: integral of
    #: vehicles-in-network over time.
    network_time_integral: float = 0.0
    _clock: float = 0.0

    def advance(self, now: float) -> None:
        """Move the collector clock forward (monotonic)."""
        if now < self._clock:
            raise ValueError(f"clock moved backwards: {now} < {self._clock}")
        self._clock = now

    @property
    def now(self) -> float:
        """The collector's current clock."""
        return self._clock

    def record_interval(
        self, dt: float, waiting: int, in_network: int
    ) -> None:
        """Integrate one mini-slot's aggregate counts.

        ``waiting`` is the number of vehicles currently accruing
        queuing time (stop-line queues plus entry backlog);
        ``in_network`` the total vehicles inside the network.  Both are
        the counts *after* the slot's events, which makes the integral
        equal the per-vehicle sum (joins and services land on slot
        boundaries).
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if waiting < 0 or in_network < 0:
            raise ValueError(
                f"counts must be >= 0, got waiting={waiting}, "
                f"in_network={in_network}"
            )
        self.total_queuing_time += dt * waiting
        self.network_time_integral += dt * in_network

    def absorb_backlog(self, count: int) -> None:
        """Count still-gated vehicles as entered (end-of-run books).

        Mirrors the reference engine's ``finalize``: vehicles generated
        but never admitted have spent their whole existence in depart
        delay, which the waiting integral already accrued; here they
        join the entered population so averages divide by the same
        denominator as the per-vehicle collector.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.vehicles_entered += count

    def summary(self, duration: Optional[float] = None) -> Summary:
        """Aggregate the run into a :class:`Summary` (``delay_mode="aggregate"``)."""
        horizon = self._clock if duration is None else duration
        entered = self.vehicles_entered
        left = self.vehicles_left
        avg_queuing = self.total_queuing_time / entered if entered else 0.0
        avg_travel = self.network_time_integral / left if left else 0.0
        throughput = left / horizon * 3600.0 if horizon > 0 else 0.0
        return Summary(
            duration=horizon,
            vehicles_entered=entered,
            vehicles_left=left,
            average_queuing_time=avg_queuing,
            average_travel_time=avg_travel,
            total_queuing_time=self.total_queuing_time,
            max_queuing_time=0.0,
            throughput_per_hour=throughput,
            delay_mode="aggregate",
        )
