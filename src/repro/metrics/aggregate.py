"""Aggregate (counts-only) metrics accounting for the fast engine.

The per-vehicle :class:`~repro.metrics.collector.MetricsCollector`
keeps one record per vehicle, which is exactly the overhead the
counts-based engine exists to avoid.  This module provides the
aggregate alternative: the engine reports, once per mini-slot, how many
vehicles are currently waiting (queued at a stop line or gated in an
entry backlog) and how many are inside the network, and the collector
integrates those counts over time.

What stays **exact** (bit-for-bit equal to the per-vehicle books at
finalize time, for any fixed mini-slot):

* vehicles entered / left and throughput;
* *total* queuing time — the time integral of the waiting-vehicle
  count equals the sum of per-vehicle waiting durations, because both
  queue joins and services happen on mini-slot boundaries;
* average queuing time (total / entered).

What becomes an **estimate** (flagged via ``Summary.delay_mode ==
"aggregate"``):

* average travel time — Little's-law estimate: the vehicle-seconds
  spent inside the network divided by the number of completed trips;
* max queuing time — unavailable without per-vehicle records,
  reported as 0.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.metrics.collector import Summary

__all__ = ["AggregateMetricsCollector", "BatchAggregateMetricsCollector"]


@dataclass
class AggregateMetricsCollector:
    """Integrates aggregate vehicle counts instead of per-vehicle records.

    Duck-type compatible with the surface of
    :class:`~repro.metrics.collector.MetricsCollector` that engines,
    the runner and the tests use: ``advance``/``now``,
    ``vehicles_entered``, ``vehicles_left`` and ``summary``.
    """

    vehicles_entered: int = 0
    vehicles_left: int = 0
    #: Exact: integral of (queued + backlogged vehicles) over time.
    total_queuing_time: float = 0.0
    #: Basis of the Little's-law travel-time estimate: integral of
    #: vehicles-in-network over time.
    network_time_integral: float = 0.0
    _clock: float = 0.0

    def advance(self, now: float) -> None:
        """Move the collector clock forward (monotonic)."""
        if now < self._clock:
            raise ValueError(f"clock moved backwards: {now} < {self._clock}")
        self._clock = now

    @property
    def now(self) -> float:
        """The collector's current clock."""
        return self._clock

    def record_interval(
        self, dt: float, waiting: int, in_network: int
    ) -> None:
        """Integrate one mini-slot's aggregate counts.

        ``waiting`` is the number of vehicles currently accruing
        queuing time (stop-line queues plus entry backlog);
        ``in_network`` the total vehicles inside the network.  Both are
        the counts *after* the slot's events, which makes the integral
        equal the per-vehicle sum (joins and services land on slot
        boundaries).
        """
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if waiting < 0 or in_network < 0:
            raise ValueError(
                f"counts must be >= 0, got waiting={waiting}, "
                f"in_network={in_network}"
            )
        self.total_queuing_time += dt * waiting
        self.network_time_integral += dt * in_network

    def absorb_backlog(self, count: int) -> None:
        """Count still-gated vehicles as entered (end-of-run books).

        Mirrors the reference engine's ``finalize``: vehicles generated
        but never admitted have spent their whole existence in depart
        delay, which the waiting integral already accrued; here they
        join the entered population so averages divide by the same
        denominator as the per-vehicle collector.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.vehicles_entered += count

    def summary(self, duration: Optional[float] = None) -> Summary:
        """Aggregate the run into a :class:`Summary` (``delay_mode="aggregate"``)."""
        horizon = self._clock if duration is None else duration
        return _aggregate_summary(
            horizon,
            self.vehicles_entered,
            self.vehicles_left,
            self.total_queuing_time,
            self.network_time_integral,
        )


def _aggregate_summary(
    horizon: float,
    entered: int,
    left: int,
    total_queuing_time: float,
    network_time_integral: float,
) -> Summary:
    """The shared summary arithmetic of the aggregate collectors.

    One implementation for both the scalar and the batch collector, so
    a replication summarized through either produces the bit-identical
    :class:`Summary` (the batch-engine parity suite compares them with
    ``==``).
    """
    avg_queuing = total_queuing_time / entered if entered else 0.0
    avg_travel = network_time_integral / left if left else 0.0
    throughput = left / horizon * 3600.0 if horizon > 0 else 0.0
    return Summary(
        duration=horizon,
        vehicles_entered=entered,
        vehicles_left=left,
        average_queuing_time=avg_queuing,
        average_travel_time=avg_travel,
        total_queuing_time=total_queuing_time,
        max_queuing_time=0.0,
        throughput_per_hour=throughput,
        delay_mode="aggregate",
    )


class BatchAggregateMetricsCollector:
    """The batch-engine counterpart: one aggregate book per replication.

    Holds the same four integrals as
    :class:`AggregateMetricsCollector`, but as ``(B,)`` arrays updated
    with one vectorized operation per mini-slot.  Every per-replication
    value evolves through the identical float64 arithmetic as a scalar
    collector fed that replication alone, so
    :meth:`summary_of` returns the :class:`Summary` the scalar
    collector would have produced (the ``meso-vec`` parity contract).
    """

    def __init__(self, batch_size: int):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.vehicles_entered = np.zeros(batch_size, dtype=np.int64)
        self.vehicles_left = np.zeros(batch_size, dtype=np.int64)
        self.total_queuing_time = np.zeros(batch_size, dtype=np.float64)
        self.network_time_integral = np.zeros(batch_size, dtype=np.float64)
        self._clock = 0.0

    def advance(self, now: float) -> None:
        """Move the (shared) collector clock forward (monotonic)."""
        if now < self._clock:
            raise ValueError(f"clock moved backwards: {now} < {self._clock}")
        self._clock = now

    @property
    def now(self) -> float:
        """The collector's current clock."""
        return self._clock

    def record_interval(
        self, dt: float, waiting: np.ndarray, in_network: np.ndarray
    ) -> None:
        """Integrate one mini-slot's aggregate counts for every replication."""
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        if (waiting < 0).any() or (in_network < 0).any():
            raise ValueError("counts must be >= 0 in every replication")
        self.total_queuing_time += dt * waiting
        self.network_time_integral += dt * in_network

    def absorb_backlog(self, counts: np.ndarray) -> None:
        """Count still-gated vehicles as entered, per replication."""
        if (counts < 0).any():
            raise ValueError("backlog counts must be >= 0")
        self.vehicles_entered += counts

    def summary_of(
        self, replication: int, duration: Optional[float] = None
    ) -> Summary:
        """The :class:`Summary` of one replication (pure Python numbers)."""
        horizon = self._clock if duration is None else duration
        return _aggregate_summary(
            float(horizon),
            int(self.vehicles_entered[replication]),
            int(self.vehicles_left[replication]),
            float(self.total_queuing_time[replication]),
            float(self.network_time_integral[replication]),
        )

    def summaries(self, duration: Optional[float] = None) -> list:
        """Per-replication summaries, in batch order."""
        return [self.summary_of(b, duration) for b in range(self.batch_size)]
