"""Trace recorders for the paper's figures.

* :class:`PhaseTrace` records the phase applied at an intersection over
  time (Figs. 3-4: "applied control phases on the top-right
  intersection").
* :class:`QueueTrace` records the queue length of a road (or movement)
  over time (Fig. 5: "queue lengths at the incoming road from the
  east").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.series import TimeSeries

__all__ = ["PhaseTrace", "QueueTrace", "next_grid_sample"]


def next_grid_sample(now: float, interval: float) -> float:
    """The first instant of the fixed grid ``0, T, 2T, ...`` after ``now``.

    Trace sampling snaps to this grid rather than anchoring on the
    time a sample happened to be taken: anchoring on ``now`` would
    drift whenever the stepping cadence (a mini-slot that does not
    divide the interval, or an event-driven engine's jumps) is not
    commensurate with ``interval``.  Every sampler — serial, batch and
    event-time — uses this helper so they land on identical sample
    instants.
    """
    return (math.floor(now / interval) + 1) * interval


@dataclass
class PhaseTrace:
    """Step-wise record of the phase index applied at one intersection."""

    node_id: str
    times: List[float] = field(default_factory=list)
    phases: List[int] = field(default_factory=list)

    def record(self, time: float, phase_index: int) -> None:
        """Record the phase applied from ``time`` onwards.

        Consecutive identical phases are coalesced, so the trace holds
        one entry per phase *switch* — directly yielding the phase
        intervals plotted in Figs. 3-4.
        """
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"phase trace time went backwards: {time} < {self.times[-1]}"
            )
        if self.phases and self.phases[-1] == phase_index:
            return
        self.times.append(float(time))
        self.phases.append(int(phase_index))

    def intervals(self, end_time: float) -> List[Tuple[float, float, int]]:
        """Return ``(start, end, phase)`` intervals up to ``end_time``."""
        out: List[Tuple[float, float, int]] = []
        for idx, (start, phase) in enumerate(zip(self.times, self.phases)):
            end = self.times[idx + 1] if idx + 1 < len(self.times) else end_time
            if end > start:
                out.append((start, min(end, end_time), phase))
        return out

    def phase_durations(self, end_time: float) -> Dict[int, float]:
        """Total seconds each phase (incl. 0 = amber) was applied."""
        totals: Dict[int, float] = {}
        for start, end, phase in self.intervals(end_time):
            totals[phase] = totals.get(phase, 0.0) + (end - start)
        return totals

    def switch_count(self) -> int:
        """Number of phase switches recorded (excluding the first set)."""
        return max(0, len(self.phases) - 1)

    def mean_control_phase_length(self, end_time: float) -> float:
        """Average duration of non-transition phase applications."""
        lengths = [
            end - start
            for start, end, phase in self.intervals(end_time)
            if phase != 0
        ]
        return sum(lengths) / len(lengths) if lengths else 0.0

    def as_series(self, end_time: float) -> TimeSeries:
        """A staircase series suitable for ASCII plotting."""
        series = TimeSeries(f"phase@{self.node_id}")
        for start, end, phase in self.intervals(end_time):
            series.append(start, float(phase))
            series.append(max(start, end - 1e-9), float(phase))
        return series

    def to_dict(self) -> dict:
        """A JSON-serializable view of the trace."""
        return {
            "node_id": self.node_id,
            "times": list(self.times),
            "phases": list(self.phases),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PhaseTrace":
        """Rebuild a trace serialized with :meth:`to_dict`."""
        return cls(
            node_id=payload["node_id"],
            times=[float(t) for t in payload["times"]],
            phases=[int(p) for p in payload["phases"]],
        )


@dataclass
class QueueTrace:
    """Sampled queue length of one road (optionally one movement)."""

    road_id: str
    movement: Optional[Tuple[str, str]] = None
    series: TimeSeries = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.series is None:
            label = self.road_id if self.movement is None else (
                f"{self.movement[0]}->{self.movement[1]}"
            )
            self.series = TimeSeries(label)

    def sample(self, time: float, queue_length: int) -> None:
        """Record the queue length observed at ``time``."""
        if queue_length < 0:
            raise ValueError(f"queue length must be >= 0, got {queue_length}")
        self.series.append(time, float(queue_length))

    def __len__(self) -> int:
        """Number of samples recorded so far.

        The changepoint analyzer uses this to decide whether a trace
        carries enough post-warm-up samples to be worth scanning.
        """
        return len(self.series)

    def mean(self) -> float:
        """Time-average of the sampled queue length."""
        return self.series.mean()

    def max(self) -> float:
        """Maximum sampled queue length."""
        return self.series.max()

    def to_dict(self) -> dict:
        """A JSON-serializable view of the trace."""
        return {
            "road_id": self.road_id,
            "movement": list(self.movement) if self.movement else None,
            "series": self.series.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QueueTrace":
        """Rebuild a trace serialized with :meth:`to_dict`."""
        movement = payload.get("movement")
        return cls(
            road_id=payload["road_id"],
            movement=tuple(movement) if movement else None,
            series=TimeSeries.from_dict(payload["series"]),
        )
