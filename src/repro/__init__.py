"""Reproduction of *CPS-oriented Modeling and Control of Traffic
Signals Using Adaptive Back Pressure* (Chang et al., DATE 2020).

The package is organized bottom-up:

* :mod:`repro.util` — RNG streams, ASCII reports, validation.
* :mod:`repro.model` — the queuing-network model of Sec. II (roads,
  movements, phases, intersections, arrivals, networks).
* :mod:`repro.core` — the paper's contribution: pressure/gain metrics
  (Sec. III-A) and the UTIL-BP adaptive controller (Algorithm 1).
* :mod:`repro.control` — baseline controllers: fixed-time, original
  back-pressure [3], capacity-aware back-pressure [4] (CAP-BP).
* :mod:`repro.meso` — discrete-time store-and-forward network
  simulator (the Sec. II model animated directly).
* :mod:`repro.micro` — microscopic traffic simulator (Krauss
  car-following; the SUMO substitute).
* :mod:`repro.traci` — TraCI-style control facade over the
  microscopic simulator.
* :mod:`repro.metrics` — waiting times, queue/phase traces, summaries.
* :mod:`repro.results` — the results subsystem: the SQLite-backed
  :class:`~repro.results.store.ResultStore` (resumable sweeps), shared
  group-by aggregation with delay-mode safety, and the declarative
  :class:`~repro.results.experiment.ExperimentDefinition` registry.
* :mod:`repro.analysis` — regime-shift analytics over stored results:
  CUSUM changepoint detection with permutation calibration and
  per-cell stability verdicts (``stable`` / ``breakdown@t*``).
* :mod:`repro.experiments` — the 3x3 evaluation scenarios and the
  drivers regenerating every table and figure of the paper, each one
  an experiment definition.

Quickstart
----------
>>> from repro.api import RunConfig, build_scenario, run_scenario
>>> scenario = build_scenario("I", seed=1)
>>> config = RunConfig(controller="util-bp", duration=300)
>>> result = run_scenario(scenario, config=config)
>>> result.average_queuing_time  # doctest: +SKIP
42.0

(:mod:`repro.api` is the versioned public façade — the only supported
import surface for downstream code.)
"""

__version__ = "0.3.0"

from repro.core import UtilBpConfig, UtilBpController
from repro.control import (
    CapBpController,
    FixedTimeController,
    NetworkController,
    OriginalBpController,
    make_controller,
    make_network_controller,
)
from repro.model import (
    Direction,
    Intersection,
    Movement,
    Network,
    Phase,
    QueueObservation,
    Road,
    TurnType,
    build_standard_intersection,
)

__all__ = [
    "__version__",
    "UtilBpConfig",
    "UtilBpController",
    "CapBpController",
    "FixedTimeController",
    "OriginalBpController",
    "NetworkController",
    "make_controller",
    "make_network_controller",
    "Direction",
    "TurnType",
    "Road",
    "Movement",
    "Phase",
    "Intersection",
    "Network",
    "QueueObservation",
    "build_standard_intersection",
]
