"""The versioned public API façade.

This module is the **only supported import surface** for downstream
code.  Everything re-exported here — and nothing else — is covered by
the compatibility promise tracked by :data:`API_VERSION`; internal
modules may move between releases, but ``from repro.api import X``
keeps working (deprecated names go through a warning cycle first, like
``repro.experiments.scenario`` did).

:data:`API_VERSION` follows ``major.minor``:

* **major** bumps when a name is removed or its call signature
  changes incompatibly;
* **minor** bumps when names are added.

The simulation service embeds ``API_VERSION`` as ``api_version`` in
every HTTP response envelope, so remote clients can detect drift the
same way importers do.

Layout of the surface:

* scenarios — :class:`Scenario`, :func:`build_scenario`,
  :func:`build_named_scenario`, :func:`scenario_names`;
* running — :class:`RunConfig`, :class:`RunResult`,
  :func:`run_scenario`, :func:`run_scenario_batch`;
* specs & sweeps — :class:`RunSpec`, :class:`BatchRunSpec`,
  :class:`SweepGrid`, :data:`SPEC_SCHEMA_VERSION`,
  :func:`parse_shard`, :func:`shard_index_of`;
* orchestration — :class:`ExperimentPool`, :class:`PoolStats`,
  :func:`run_fleet`, :class:`FleetReport`, :class:`ShardOutcome`;
* results — :class:`ResultStore`, :class:`StoredRecord`,
  :class:`MergeStats`, :class:`MergeError`,
  :func:`aggregate`, :func:`tidy_table`, :class:`MetricStats`;
* analysis — :class:`AnalysisOptions`, :class:`StabilityVerdict`,
  :func:`analyze_records`, :func:`analyze_store`,
  :func:`breakdown_frontier`, :func:`verdict_rows`,
  :func:`detect_changepoint`, :func:`detect_changepoints`,
  :func:`cusum_scan`, :func:`permutation_threshold`,
  :func:`onset_interval`;
* service — :func:`serve`, :func:`create_app`,
  :class:`ServiceClient` (imported lazily so ``repro.api`` stays
  cheap and the service layer can import :data:`API_VERSION` from
  here without a cycle);
* logging — :func:`get_logger`, :func:`log_context`,
  :func:`configure_logging`.
"""

from __future__ import annotations

from typing import Any

from repro.analysis import (
    AnalysisOptions,
    Changepoint,
    CusumScan,
    StabilityVerdict,
    analyze_records,
    analyze_store,
    breakdown_frontier,
    cusum_scan,
    detect_changepoint,
    detect_changepoints,
    onset_interval,
    permutation_threshold,
    verdict_rows,
)
from repro.experiments.runner import (
    RunConfig,
    RunResult,
    run_scenario,
    run_scenario_batch,
)
from repro.orchestration.fleet import FleetReport, ShardOutcome, run_fleet
from repro.orchestration.pool import ExperimentPool, PoolStats
from repro.orchestration.spec import (
    SPEC_SCHEMA_VERSION,
    BatchRunSpec,
    RunSpec,
    SweepGrid,
    parse_shard,
    shard_index_of,
)
from repro.results.aggregate import MetricStats, aggregate, tidy_table
from repro.results.store import (
    MergeError,
    MergeStats,
    ResultStore,
    StoredRecord,
)
from repro.scenarios import (
    Scenario,
    build_named_scenario,
    build_scenario,
    scenario_names,
)
from repro.util.logging import configure as configure_logging
from repro.util.logging import get_logger, log_context

#: The public API schema version (``major.minor``); embedded in every
#: service response envelope as ``api_version``.
API_VERSION = "1.2"


def package_version() -> str:
    """The installed package version (distinct from :data:`API_VERSION`).

    Resolved from installed-distribution metadata when the package is
    installed, falling back to ``repro.__version__`` for source-tree
    (``PYTHONPATH=src``) use.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        import repro

        return repro.__version__


__all__ = [
    "API_VERSION",
    "package_version",
    # scenarios
    "Scenario",
    "build_scenario",
    "build_named_scenario",
    "scenario_names",
    # running
    "RunConfig",
    "RunResult",
    "run_scenario",
    "run_scenario_batch",
    # specs & sweeps
    "RunSpec",
    "BatchRunSpec",
    "SweepGrid",
    "SPEC_SCHEMA_VERSION",
    "parse_shard",
    "shard_index_of",
    # orchestration
    "ExperimentPool",
    "PoolStats",
    "run_fleet",
    "FleetReport",
    "ShardOutcome",
    # results
    "ResultStore",
    "StoredRecord",
    "MergeStats",
    "MergeError",
    "aggregate",
    "tidy_table",
    "MetricStats",
    # analysis
    "AnalysisOptions",
    "Changepoint",
    "CusumScan",
    "StabilityVerdict",
    "analyze_records",
    "analyze_store",
    "breakdown_frontier",
    "cusum_scan",
    "detect_changepoint",
    "detect_changepoints",
    "onset_interval",
    "permutation_threshold",
    "verdict_rows",
    # service (lazy wrappers)
    "serve",
    "create_app",
    "ServiceClient",
    # logging
    "get_logger",
    "log_context",
    "configure_logging",
]


# The service wrappers import repro.service lazily: repro.service.app
# imports API_VERSION from this module at import time, so importing it
# at the top here would be a cycle — and most repro.api users never
# touch the service at all.


def serve(
    store: str = "results.sqlite",
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 1,
    batch_size: int = 16,
) -> None:
    """Run the simulation service (blocking); see :mod:`repro.service`."""
    from repro.service.app import serve as _serve

    _serve(
        store=store,
        host=host,
        port=port,
        workers=workers,
        batch_size=batch_size,
    )


def create_app(store: str, **kwargs: Any):
    """Build a (not yet started) :class:`repro.service.app.ServiceApp`."""
    from repro.service.app import ServiceApp

    return ServiceApp(store, **kwargs)


def ServiceClient(base_url: str, timeout: float = 30.0):
    """Construct a :class:`repro.service.client.ServiceClient`."""
    from repro.service.client import ServiceClient as _ServiceClient

    return _ServiceClient(base_url, timeout=timeout)
