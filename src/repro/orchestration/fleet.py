"""Local fleet execution: one process + store file per shard, then merge.

A single :class:`~repro.orchestration.pool.ExperimentPool` funnels every
completed cell through one writable SQLite connection — fine for one
host, but the single writer (and the single pool queue) is exactly the
bottleneck mass-replication sweeps hit first.  The fleet runner removes
it locally, and rehearses the multi-host story:

* the grid is partitioned with :meth:`SweepGrid.shard` — a
  deterministic, spec-content-hash-based assignment, so the shards are
  disjoint, complete, and identical on every host that agrees on the
  shard count;
* each shard runs in its **own subprocess** with its **own store
  file** and its own worker pool — no shared SQLite writer, no shared
  queue, no coordination while simulating;
* when every shard finishes, the shard stores are **merged by spec
  hash** into the canonical store
  (:meth:`~repro.results.store.ResultStore.merge_from`), which is pure
  bookkeeping because rows are immutable per-put-committed facts.

The exact same three steps run across machines by hand: ``repro sweep
--shard i/N --store shard-i.sqlite`` on each host, then ``repro
results merge canonical.sqlite shard-*.sqlite``.  ``run_fleet`` is the
one-host, one-command version (``repro sweep --fleet N``).

Shard stores default to ``<store>.shards/shard-<i>-of-<N>.sqlite``;
because the partition and the paths are deterministic, an interrupted
fleet re-run resumes — each shard pool skips the cells its store
already holds.

Shard lifecycle events (``shard_started`` / ``cell_completed`` /
``shard_completed`` / ``fleet_merged``) are emitted through
:mod:`repro.util.logging`.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.orchestration.spec import SweepGrid
from repro.util.logging import get_logger

__all__ = ["FleetReport", "ShardOutcome", "run_fleet"]


def _shard_entry(
    grid_payload: dict,
    index: int,
    count: int,
    store_path: str,
    workers: int,
    batch_size: int,
    events,
) -> None:
    """Subprocess entry: run one shard against its own store.

    Rebuilds the grid from its wire form (the subprocess may be a
    fresh ``spawn`` interpreter), takes the shard, and drives a
    private :class:`ExperimentPool` — this process is the sole writer
    of ``store_path``.  Per-cell progress and the final stats go back
    over the ``events`` queue; an exception is reported and then
    re-raised so the exit code stays non-zero.
    """
    from repro.orchestration.pool import ExperimentPool

    try:
        grid = SweepGrid.from_dict(grid_payload)
        specs = grid.shard(index, count)
        pool = ExperimentPool(
            workers=workers, store=store_path, batch_size=batch_size
        )
        pool.run(
            list(specs),
            on_cell=lambda spec, result, source: events.put(
                ("cell", index, spec.spec_hash(), source)
            ),
        )
        events.put(
            ("done", index, pool.stats.executed, pool.stats.cache_hits)
        )
    except BaseException as error:  # noqa: BLE001 - reported, then re-raised
        events.put(("error", index, f"{type(error).__name__}: {error}"))
        raise


@dataclass
class ShardOutcome:
    """One shard's slice of the fleet run."""

    index: int
    store: str
    cells: int
    executed: int = 0
    cache_hits: int = 0
    duration_s: float = 0.0


@dataclass
class FleetReport:
    """What a :func:`run_fleet` call did, shard by shard."""

    store: str
    shard_count: int
    shards: List[ShardOutcome] = field(default_factory=list)
    merged_rows: int = 0
    identical_rows: int = 0
    wall_time_s: float = 0.0

    @property
    def cells(self) -> int:
        """Total grid cells across all shards."""
        return sum(shard.cells for shard in self.shards)

    @property
    def executed(self) -> int:
        """Cells actually simulated (not served from a store)."""
        return sum(shard.executed for shard in self.shards)

    @property
    def cache_hits(self) -> int:
        """Cells served from shard stores without simulating."""
        return sum(shard.cache_hits for shard in self.shards)


def run_fleet(
    grid: SweepGrid,
    shards: int,
    store: Union[str, os.PathLike],
    workers_per_shard: int = 1,
    batch_size: int = 16,
    shard_dir: Optional[Union[str, os.PathLike]] = None,
    keep_shard_stores: bool = False,
    prefer: Optional[str] = None,
) -> FleetReport:
    """Run ``grid`` as ``shards`` parallel shard processes, then merge.

    Each shard subprocess owns a private store file under ``shard_dir``
    (default ``<store>.shards/``) and a private worker pool of
    ``workers_per_shard`` processes; once all shards exit successfully
    their stores are merged into ``store`` in shard order.  Shard
    stores are deleted after a clean merge unless ``keep_shard_stores``
    — and always kept when a shard fails, so the re-run resumes from
    the cells that completed.

    Raises ``RuntimeError`` naming the failed shard(s) if any shard
    process exits non-zero; the canonical store is not touched in that
    case.
    """
    from repro.results.store import ResultStore

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    store_path = Path(store)
    if str(store_path.parent):
        store_path.parent.mkdir(parents=True, exist_ok=True)
    directory = (
        Path(shard_dir)
        if shard_dir is not None
        else store_path.with_name(store_path.name + ".shards")
    )
    directory.mkdir(parents=True, exist_ok=True)

    log = get_logger("fleet")
    started = time.perf_counter()
    grid_payload = grid.to_dict()
    report = FleetReport(store=str(store_path), shard_count=shards)

    # ``spawn`` keeps shard interpreters independent of this process's
    # threads (the HTTP service runs fleets from a worker thread, where
    # fork is unsafe); the pool re-registers plugin engines the same way.
    context = multiprocessing.get_context("spawn")
    events = context.Queue()
    processes = {}
    shard_started = {}
    outcomes = {}
    for index in range(shards):
        shard_store = directory / f"shard-{index}-of-{shards}.sqlite"
        cells = len(grid.shard(index, shards))
        outcome = ShardOutcome(
            index=index, store=str(shard_store), cells=cells
        )
        outcomes[index] = outcome
        report.shards.append(outcome)
        if cells == 0:
            log.info("shard_empty", shard=index, shard_count=shards)
            continue
        process = context.Process(
            target=_shard_entry,
            args=(
                grid_payload,
                index,
                shards,
                str(shard_store),
                workers_per_shard,
                batch_size,
                events,
            ),
            name=f"repro-shard-{index}",
        )
        shard_started[index] = time.perf_counter()
        process.start()
        processes[index] = process
        log.info(
            "shard_started",
            shard=index,
            shard_count=shards,
            cells=cells,
            store=str(shard_store),
            workers=workers_per_shard,
        )

    errors = {}
    remaining = set(processes)
    while remaining:
        try:
            message = events.get(timeout=0.5)
        except queue_module.Empty:
            # A shard that died without reporting (OOM kill, hard
            # crash) would otherwise hang the fleet forever.
            for index in sorted(remaining):
                process = processes[index]
                if not process.is_alive() and process.exitcode != 0:
                    errors.setdefault(
                        index, f"exit code {process.exitcode}"
                    )
                    remaining.discard(index)
            continue
        kind, index = message[0], message[1]
        if kind == "cell":
            log.info(
                "cell_completed",
                shard=index,
                spec_hash=message[2],
                source=message[3],
            )
        elif kind == "done":
            outcome = outcomes[index]
            outcome.executed = message[2]
            outcome.cache_hits = message[3]
            outcome.duration_s = time.perf_counter() - shard_started[index]
            remaining.discard(index)
            log.info(
                "shard_completed",
                shard=index,
                cells=outcome.cells,
                executed=outcome.executed,
                cache_hits=outcome.cache_hits,
                duration_s=round(outcome.duration_s, 3),
            )
        elif kind == "error":
            errors[index] = message[2]
            remaining.discard(index)
    for process in processes.values():
        process.join()
    for index, process in processes.items():
        if process.exitcode != 0 and index not in errors:
            errors[index] = f"exit code {process.exitcode}"
    if errors:
        detail = "; ".join(
            f"shard {index}: {reason}" for index, reason in sorted(errors.items())
        )
        log.error("fleet_failed", errors=detail)
        raise RuntimeError(
            f"fleet run failed ({detail}); shard stores kept in "
            f"{directory} — re-running resumes from the completed cells"
        )

    with ResultStore(store_path) as destination:
        for outcome in report.shards:
            if outcome.cells == 0:
                continue
            stats = destination.merge_from(outcome.store, prefer=prefer)
            report.merged_rows += stats.inserted
            report.identical_rows += stats.identical
    if not keep_shard_stores:
        for outcome in report.shards:
            shard_store = Path(outcome.store)
            for suffix in ("", "-wal", "-shm"):
                sidecar = Path(str(shard_store) + suffix)
                if sidecar.exists():
                    sidecar.unlink()
        try:
            directory.rmdir()
        except OSError:
            pass  # foreign files in the shard dir are not ours to delete
    report.wall_time_s = time.perf_counter() - started
    log.info(
        "fleet_merged",
        store=str(store_path),
        shards=shards,
        cells=report.cells,
        executed=report.executed,
        cache_hits=report.cache_hits,
        merged_rows=report.merged_rows,
        identical_rows=report.identical_rows,
        wall_time_s=round(report.wall_time_s, 3),
    )
    return report
