"""The process-parallel sweep executor backed by the result store.

Every (scenario x controller x engine x seed) cell of a sweep is an
independent simulation whose outcome is fully determined by its
:class:`~repro.orchestration.spec.RunSpec` — the spec carries the seed,
so results cannot depend on which worker runs a cell or in what order.
:class:`ExperimentPool` exploits that:

* ``workers > 1`` fans cells out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`;
* ``workers == 1`` runs them serially in-process (no executor, no
  pickling overhead — the debugging-friendly path);
* with a :class:`~repro.results.store.ResultStore`, every finished
  cell is committed to the store the moment it completes, and
  re-submitting a completed spec loads the stored result instead of
  simulating again — which is what makes any sweep *resumable*: kill
  it mid-flight, re-run it against the same store, and only the
  missing cells execute.

``store`` is the one canonical persistence keyword: it accepts a live
:class:`ResultStore` or a path to its SQLite file.  ``cache_dir`` (the
older directory-shaped option) is a **deprecated** alias that opens
``<dir>/results.sqlite`` and imports any legacy per-spec JSON cache
entries found in the directory exactly once; it emits a
``DeprecationWarning`` and will be removed — open the store with
:meth:`ResultStore.at_directory` and pass it as ``store`` instead.

Long-running callers (the HTTP service's job worker) drive the pool
incrementally: ``run(specs, on_cell=...)`` invokes the callback the
moment each unique cell is satisfied — whether served from the store
or freshly executed — so progress can be streamed while the batch is
still in flight.

Results travel between processes (and to/from the store) as the plain
dict form produced by ``RunResult.to_dict``; both execution paths
reconstruct through ``RunResult.from_dict`` so serial and parallel runs
return identical objects.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.engine import batch_provider_module, has_batch_engine, provider_module
from repro.experiments.runner import RunResult
from repro.orchestration.spec import BatchRunSpec, RunSpec

__all__ = ["CellCallback", "ExperimentPool", "PoolStats"]

#: One schedulable unit of work: a single cell, or a seed-batch.
_WorkUnit = Union[RunSpec, BatchRunSpec]

#: Per-cell completion callback: ``(spec, result, source)`` where
#: ``source`` is ``"store"`` (served without simulating) or
#: ``"executed"`` (freshly computed); called once per unique spec.
CellCallback = Callable[[RunSpec, RunResult, str], None]


def _execute_payload(
    spec: RunSpec, engine_module: Optional[str] = None
) -> Dict[str, Any]:
    """Worker entry point: run one spec, return its serializable form.

    ``engine_module`` re-registers a plugin engine in the worker: under
    the ``spawn`` start method workers begin with a fresh registry, so
    the module that registered the engine in the parent is imported
    here first (importing is what registers, as for the built-ins).
    """
    if engine_module is not None:
        import importlib

        importlib.import_module(engine_module)
    return spec.execute().to_dict()


def _execute_batch_payload(
    batch: BatchRunSpec, engine_module: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Worker entry point for a seed-batch: one payload per member."""
    if engine_module is not None:
        import importlib

        importlib.import_module(engine_module)
    return [result.to_dict() for result in batch.execute()]


@dataclass
class PoolStats:
    """Counts of how the pool satisfied the submitted cells.

    Both counters are per *unique* spec: duplicate occurrences of one
    spec within a batch are satisfied by a single execution or a
    single store read.
    """

    executed: int = 0
    cache_hits: int = 0

    @property
    def total(self) -> int:
        """Unique cells satisfied so far (executed + served from store)."""
        return self.executed + self.cache_hits


class ExperimentPool:
    """Executes :class:`RunSpec` batches, in parallel when asked.

    Parameters
    ----------
    workers:
        Worker processes; ``1`` (default) runs everything serially
        in-process.
    cache_dir:
        **Deprecated** alias for ``store`` (emits a
        ``DeprecationWarning``): opens (creating if needed)
        ``<cache_dir>/results.sqlite`` as the pool's store and imports
        any legacy per-spec JSON cache entries found in the directory,
        once.  Ignored when ``store`` is given; migrate to
        ``store=ResultStore.at_directory(cache_dir)``.
    store:
        The canonical persistence option: a
        :class:`~repro.results.store.ResultStore`, or a path to its
        SQLite file; ``None`` (with no ``cache_dir``) disables
        persistence.  Completed cells are committed incrementally, so
        a warm store makes re-running a completed sweep free and an
        interrupted sweep resumable.
    batch_size:
        Maximum seed-batch width.  Cells that differ only in their seed
        and name a batch-capable engine (``meso-vec``) are grouped and
        executed as one batched simulation of up to this many
        replications; results fan back into the individual per-spec
        store rows (cache keys unchanged — a warm store still resumes
        cell by cell).  ``1`` disables grouping.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
        store: Optional[Any] = None,
        batch_size: int = 16,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        if cache_dir is not None:
            warnings.warn(
                "ExperimentPool(cache_dir=...) is deprecated; pass "
                "store=ResultStore.at_directory(cache_dir) (or a store "
                "file path) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if store is None and cache_dir is not None:
            from repro.results.store import ResultStore

            store = ResultStore.at_directory(cache_dir)
        elif store is not None and not hasattr(store, "get"):
            from repro.results.store import ResultStore

            store = ResultStore(store)
        self.store = store
        self.stats = PoolStats()

    # -- public API ---------------------------------------------------------

    def run(
        self,
        specs: Iterable[RunSpec],
        on_cell: Optional[CellCallback] = None,
    ) -> List[RunResult]:
        """Execute a batch of specs; results match the input order.

        Store hits are returned without simulating; duplicate specs in
        one batch are executed once and fanned back out.  ``on_cell``
        (if given) is invoked once per *unique* spec the moment it is
        satisfied — ``on_cell(spec, result, "store")`` for store hits,
        ``on_cell(spec, result, "executed")`` for fresh executions
        (after the store commit) — so long-running callers can stream
        per-cell progress while the batch is in flight.
        """
        spec_list = list(specs)
        results: List[Optional[RunResult]] = [None] * len(spec_list)

        # Group duplicate cells so each unique spec is satisfied once —
        # one store read or one execution, fanned out to every index.
        groups: Dict[RunSpec, List[int]] = {}
        for index, spec in enumerate(spec_list):
            groups.setdefault(spec, []).append(index)

        pending: Dict[RunSpec, List[int]] = {}
        for spec, indices in groups.items():
            cached = self.store.get(spec) if self.store is not None else None
            if cached is not None:
                self.stats.cache_hits += 1
                for index in indices:
                    results[index] = cached
                if on_cell is not None:
                    on_cell(spec, cached, "store")
            else:
                pending[spec] = indices

        if pending:
            units = self._plan_units(list(pending))
            if self.workers == 1 or len(units) == 1:
                for unit in units:
                    self._execute_unit(unit, pending, results, on_cell)
            else:
                self._run_parallel(units, pending, results, on_cell)

        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> RunResult:
        """Execute a single spec (store-aware)."""
        return self.run([spec])[0]

    # -- seed-batch planning -------------------------------------------------

    def _plan_units(self, specs: Sequence[RunSpec]) -> List[_WorkUnit]:
        """Group batchable same-cell/different-seed specs into batches.

        Cells whose engine cannot batch (or lone seeds) stay individual
        units; batchable groups are chunked to ``batch_size``.  Unit
        order follows the first appearance of each cell, so scheduling
        stays deterministic.
        """
        if self.batch_size == 1:
            return list(specs)
        # Same-cell key as BatchRunSpec.from_specs: the spec with its
        # seed normalized away (specs are hashable value objects).
        groups: Dict[RunSpec, List[RunSpec]] = {}
        order: List[Tuple[Optional[RunSpec], RunSpec]] = []
        for spec in specs:
            if not has_batch_engine(spec.engine):
                order.append((None, spec))
                continue
            key = dataclasses.replace(spec, seed=0)
            if key not in groups:
                order.append((key, spec))
            groups.setdefault(key, []).append(spec)
        units: List[_WorkUnit] = []
        for key, spec in order:
            if key is None:
                units.append(spec)
                continue
            members = groups[key]
            for start in range(0, len(members), self.batch_size):
                chunk = members[start:start + self.batch_size]
                if len(chunk) == 1:
                    units.append(chunk[0])
                else:
                    units.append(BatchRunSpec.from_specs(chunk))
        return units

    def _execute_unit(
        self,
        unit: _WorkUnit,
        pending: Dict[RunSpec, List[int]],
        results: List[Optional[RunResult]],
        on_cell: Optional[CellCallback] = None,
    ) -> None:
        """Run one work unit in-process and account its results."""
        if isinstance(unit, BatchRunSpec):
            payloads = _execute_batch_payload(unit)
            for spec, payload in zip(unit.specs(), payloads):
                self._finish(spec, payload, pending, results, on_cell)
        else:
            self._finish(unit, _execute_payload(unit), pending, results, on_cell)

    def _finish(
        self,
        spec: RunSpec,
        payload: Dict[str, Any],
        pending: Dict[RunSpec, List[int]],
        results: List[Optional[RunResult]],
        on_cell: Optional[CellCallback] = None,
    ) -> None:
        """Account, persist and fan out one completed cell."""
        self.stats.executed += 1
        if self.store is not None:
            self.store.put(spec, payload)
        result = RunResult.from_dict(payload)
        for index in pending[spec]:
            results[index] = result
        if on_cell is not None:
            on_cell(spec, result, "executed")

    def _run_parallel(
        self,
        units: Sequence[_WorkUnit],
        pending: Dict[RunSpec, List[int]],
        results: List[Optional[RunResult]],
        on_cell: Optional[CellCallback] = None,
    ) -> None:
        """Fan work units (cells or seed-batches) out over processes.

        Each completed unit is committed to the store the moment it
        completes — not when the whole batch does — so an interrupted
        or partially failed sweep resumes from the cells that finished.
        If a unit raises: with a store, the remaining completions are
        still drained into it before the first error propagates;
        without one, draining would only burn compute on results nobody
        keeps, so not-yet-started units are cancelled and the error
        surfaces promptly.
        """
        max_workers = min(self.workers, len(units))
        first_error: Optional[BaseException] = None
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            futures = {}
            for unit in units:
                if isinstance(unit, BatchRunSpec):
                    future = executor.submit(
                        _execute_batch_payload,
                        unit,
                        batch_provider_module(unit.template.engine),
                    )
                else:
                    future = executor.submit(
                        _execute_payload, unit, provider_module(unit.engine)
                    )
                futures[future] = unit
            for future in as_completed(futures):
                try:
                    payload = future.result()
                except BaseException as error:  # noqa: BLE001 - re-raised
                    if first_error is None:
                        first_error = error
                        if self.store is None:
                            for other in futures:
                                other.cancel()
                    continue
                unit = futures[future]
                if isinstance(unit, BatchRunSpec):
                    for spec, spec_payload in zip(unit.specs(), payload):
                        self._finish(spec, spec_payload, pending, results, on_cell)
                else:
                    self._finish(unit, payload, pending, results, on_cell)
        if first_error is not None:
            raise first_error
