"""Parallel sweep orchestration.

The layer between the closed-loop runner and the experiment drivers:

* :mod:`repro.orchestration.spec` — :class:`RunSpec` (one hashable,
  serializable simulation cell) and :class:`SweepGrid` (cartesian
  expansion of sweep axes);
* :mod:`repro.orchestration.pool` — :class:`ExperimentPool`, the
  process-parallel executor with a serial in-process fallback and an
  on-disk JSON result cache keyed by spec hash.

Every table/figure driver and ``scripts/collect_results.py`` submit
their sweeps through this layer; ``repro sweep --workers N`` exposes it
on the command line.
"""

from repro.orchestration.pool import ExperimentPool, PoolStats
from repro.orchestration.spec import (
    SPEC_SCHEMA_VERSION,
    RunSpec,
    SweepGrid,
    execute_spec,
)

__all__ = [
    "RunSpec",
    "SweepGrid",
    "ExperimentPool",
    "PoolStats",
    "execute_spec",
    "SPEC_SCHEMA_VERSION",
]
