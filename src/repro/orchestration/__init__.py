"""Parallel sweep orchestration.

The layer between the closed-loop runner and the experiment drivers:

* :mod:`repro.orchestration.spec` — :class:`RunSpec` (one hashable,
  serializable simulation cell) and :class:`SweepGrid` (cartesian
  expansion of sweep axes, partitionable into deterministic shards via
  :meth:`SweepGrid.shard`);
* :mod:`repro.orchestration.pool` — :class:`ExperimentPool`, the
  process-parallel executor; give it a
  :class:`~repro.results.store.ResultStore` (or ``cache_dir``) and
  every completed cell is committed incrementally, making sweeps
  resumable and shareable across drivers;
* :mod:`repro.orchestration.fleet` — :func:`run_fleet`, the local
  fleet runner: one subprocess + store file per shard, auto-merged
  into the canonical store when every shard finishes.

Every table/figure driver runs through
:func:`repro.results.experiment.run_experiment` on this layer, and
``repro sweep --workers N --store FILE`` (plus ``--shard i/N`` /
``--fleet N``) exposes it on the command line.
"""

from repro.orchestration.fleet import FleetReport, ShardOutcome, run_fleet
from repro.orchestration.pool import ExperimentPool, PoolStats
from repro.orchestration.spec import (
    SPEC_SCHEMA_VERSION,
    BatchRunSpec,
    RunSpec,
    SweepGrid,
    execute_spec,
    parse_shard,
    shard_index_of,
)

__all__ = [
    "RunSpec",
    "BatchRunSpec",
    "SweepGrid",
    "ExperimentPool",
    "PoolStats",
    "FleetReport",
    "ShardOutcome",
    "run_fleet",
    "execute_spec",
    "parse_shard",
    "shard_index_of",
    "SPEC_SCHEMA_VERSION",
]
