"""Parallel sweep orchestration.

The layer between the closed-loop runner and the experiment drivers:

* :mod:`repro.orchestration.spec` — :class:`RunSpec` (one hashable,
  serializable simulation cell) and :class:`SweepGrid` (cartesian
  expansion of sweep axes);
* :mod:`repro.orchestration.pool` — :class:`ExperimentPool`, the
  process-parallel executor; give it a
  :class:`~repro.results.store.ResultStore` (or ``cache_dir``) and
  every completed cell is committed incrementally, making sweeps
  resumable and shareable across drivers.

Every table/figure driver runs through
:func:`repro.results.experiment.run_experiment` on this layer, and
``repro sweep --workers N --store FILE`` exposes it on the command
line.
"""

from repro.orchestration.pool import ExperimentPool, PoolStats
from repro.orchestration.spec import (
    SPEC_SCHEMA_VERSION,
    BatchRunSpec,
    RunSpec,
    SweepGrid,
    execute_spec,
)

__all__ = [
    "RunSpec",
    "BatchRunSpec",
    "SweepGrid",
    "ExperimentPool",
    "PoolStats",
    "execute_spec",
    "SPEC_SCHEMA_VERSION",
]
