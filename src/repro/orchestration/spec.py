"""Declarative run specifications and sweep grids.

A :class:`RunSpec` is the unit of work of the orchestration layer: a
hashable, picklable, JSON-serializable value object that fully
determines one closed-loop simulation — scenario pattern and build
parameters, controller and its parameters, engine, seed, horizon and
recording options.  Because a spec *is* the run (all randomness derives
from the spec's seed), any worker process executing the same spec
produces the identical result, which is what makes process-parallel
sweeps and on-disk result caching sound.

:class:`SweepGrid` expands cartesian products of patterns, controllers,
seeds, engines and horizons into spec lists — the shape of every
table/figure sweep in the paper and of the larger grids the
orchestration pool exists to serve.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.engine import engine_names, has_batch_engine
from repro.experiments.runner import (
    RunConfig,
    RunResult,
    run_scenario,
    run_scenario_batch,
)
from repro.scenarios import (
    Scenario,
    build_named_scenario,
    build_scenario,
    is_scenario_name,
    validate_scenario_params,
)
from repro.scenarios.patterns import PATTERN_NAMES

__all__ = [
    "RunSpec",
    "BatchRunSpec",
    "SweepGrid",
    "execute_spec",
    "parse_shard",
    "shard_index_of",
    "SPEC_SCHEMA_VERSION",
]

#: Bump when the spec or result schema changes incompatibly; part of
#: the spec hash so stale cache entries are never reused.
SPEC_SCHEMA_VERSION = 1

#: Parameter mappings are stored as sorted ``(key, value)`` tuples so
#: specs stay hashable; this alias names that shape.
FrozenParams = Tuple[Tuple[str, Any], ...]


def _freeze_params(params: Union[None, Mapping[str, Any], Sequence]) -> FrozenParams:
    """Normalize a parameter mapping to a sorted, hashable tuple."""
    if not params:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    frozen = []
    for key, value in items:
        if isinstance(value, (list, tuple)):
            value = tuple(value)
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


def _params_to_json(params: FrozenParams) -> list:
    """Frozen params as pure JSON values (tuple values become lists)."""
    return [
        [key, list(value) if isinstance(value, tuple) else value]
        for key, value in params
    ]


@dataclass(frozen=True)
class RunSpec:
    """One fully specified (scenario x controller x engine x seed) cell.

    Parameters given as mappings are frozen to sorted tuples on
    construction, so instances are hashable and usable as dict keys.
    ``duration=None`` means the scenario's default horizon.
    """

    pattern: str = "I"
    controller: str = "util-bp"
    controller_params: FrozenParams = ()
    engine: str = "meso"
    seed: int = 1
    duration: Optional[float] = None
    mini_slot: float = 1.0
    queue_sample_interval: float = 5.0
    scenario_params: FrozenParams = ()
    record_phases: Tuple[str, ...] = ()
    record_queues: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.pattern not in PATTERN_NAMES and not is_scenario_name(
            self.pattern
        ):
            raise ValueError(
                f"unknown pattern/scenario {self.pattern!r}; expected one of "
                f"{PATTERN_NAMES} or a scenario-catalog name"
            )
        if self.engine not in engine_names():
            # Fail at spec construction, not mid-sweep in a worker: an
            # unknown engine (typo, or a plugin that was never
            # registered/imported) would otherwise surface only after
            # other cells burned compute.
            raise ValueError(
                f"unknown engine {self.engine!r}; known: "
                f"{list(engine_names())} (plugins must register before "
                f"specs are built)"
            )
        object.__setattr__(
            self, "controller_params", _freeze_params(self.controller_params)
        )
        object.__setattr__(
            self, "scenario_params", _freeze_params(self.scenario_params)
        )
        # Eagerly reject parameters the workload's builder cannot take:
        # a typo'd or pattern-only key must fail here, not as a
        # TypeError inside a worker process mid-sweep.
        validate_scenario_params(self.pattern, self.scenario_params)
        object.__setattr__(self, "record_phases", tuple(self.record_phases))
        object.__setattr__(
            self,
            "record_queues",
            tuple((node, road) for node, road in self.record_queues),
        )
        if self.duration is not None:
            object.__setattr__(self, "duration", float(self.duration))

    # -- views --------------------------------------------------------------

    def controller_kwargs(self) -> Dict[str, Any]:
        """The controller parameters as a plain keyword dict."""
        return dict(self.controller_params)

    def scenario_kwargs(self) -> Dict[str, Any]:
        """The extra ``build_scenario`` parameters as a keyword dict."""
        return dict(self.scenario_params)

    def label(self) -> str:
        """A short human-readable cell label for tables and logs."""
        params = ",".join(f"{k}={v}" for k, v in self.controller_params)
        suffix = f"({params})" if params else ""
        return (
            f"{self.pattern}/{self.controller}{suffix}"
            f"/{self.engine}/seed{self.seed}"
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view of the spec.

        Uses pure JSON types throughout (tuples become lists), so the
        output survives a ``json`` round trip unchanged — the cache
        relies on that to validate stored entries by equality.
        """
        return {
            "pattern": self.pattern,
            "controller": self.controller,
            "controller_params": _params_to_json(self.controller_params),
            "engine": self.engine,
            "seed": self.seed,
            "duration": self.duration,
            "mini_slot": self.mini_slot,
            "queue_sample_interval": self.queue_sample_interval,
            "scenario_params": _params_to_json(self.scenario_params),
            "record_phases": list(self.record_phases),
            "record_queues": [list(pair) for pair in self.record_queues],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunSpec":
        """Rebuild a spec serialized with :meth:`to_dict`."""
        return cls(
            pattern=payload["pattern"],
            controller=payload["controller"],
            controller_params=tuple(
                (k, v) for k, v in payload.get("controller_params", [])
            ),
            engine=payload["engine"],
            seed=int(payload["seed"]),
            duration=payload.get("duration"),
            mini_slot=float(payload.get("mini_slot", 1.0)),
            queue_sample_interval=float(
                payload.get("queue_sample_interval", 5.0)
            ),
            scenario_params=tuple(
                (k, v) for k, v in payload.get("scenario_params", [])
            ),
            record_phases=tuple(payload.get("record_phases", ())),
            record_queues=tuple(
                (n, r) for n, r in payload.get("record_queues", ())
            ),
        )

    def spec_hash(self) -> str:
        """Stable content hash; the result-cache key for this spec."""
        canonical = json.dumps(
            {"version": SPEC_SCHEMA_VERSION, "spec": self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- execution ----------------------------------------------------------

    def make_scenario(self) -> Scenario:
        """Build the scenario this spec describes.

        ``pattern`` is either one of the paper's pattern names
        (``I``-``IV``, ``mixed``) or any scenario-catalog name
        (``surge-4x4``, ``tidal-6x6``, ...); ``scenario_params`` are
        forwarded to whichever builder applies.
        """
        if self.pattern in PATTERN_NAMES:
            return build_scenario(
                self.pattern, seed=self.seed, **self.scenario_kwargs()
            )
        return build_named_scenario(
            self.pattern, seed=self.seed, **self.scenario_kwargs()
        )

    def run_config(self) -> RunConfig:
        """This spec's run knobs as one validated :class:`RunConfig`."""
        return RunConfig(
            controller=self.controller,
            controller_params=self.controller_kwargs(),
            duration=self.duration,
            engine=self.engine,
            mini_slot=self.mini_slot,
            record_phases=self.record_phases,
            record_queues=self.record_queues,
            queue_sample_interval=self.queue_sample_interval,
        )

    def execute(self) -> RunResult:
        """Run the cell (in whatever process this is called from)."""
        return run_scenario(self.make_scenario(), config=self.run_config())


def execute_spec(spec: RunSpec) -> RunResult:
    """Module-level alias of :meth:`RunSpec.execute` (picklable target)."""
    return spec.execute()


def shard_index_of(spec: RunSpec, count: int) -> int:
    """Which of ``count`` shards owns this spec.

    The assignment hashes the spec's *content* (its
    :meth:`RunSpec.spec_hash`), so it depends on nothing but the cell
    itself and ``count``: not on the grid the spec came from, not on
    axis ordering or expansion order, not on the process computing it
    (sha256, unlike Python's salted ``hash()``).  Any two hosts that
    agree on ``count`` therefore agree on the whole partition.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    # The leading 64 bits of the content hash are plenty for a balanced
    # modulo; parsing the full 256-bit hex would cost 4x for nothing.
    return int(spec.spec_hash()[:16], 16) % count


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``INDEX/COUNT`` shard designator (``"0/4"`` ... ``"3/4"``).

    Indices are zero-based: a fleet of ``N`` shards is ``0/N`` through
    ``N-1/N``.  Raises ``ValueError`` on malformed text or an index
    outside the count.
    """
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"malformed shard {text!r}; expected INDEX/COUNT, e.g. 0/4"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {text!r}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index {index} out of range for count {count} "
            f"(valid: 0..{count - 1})"
        )
    return index, count


@dataclass(frozen=True)
class BatchRunSpec:
    """One batched execution unit: the same cell under many seeds.

    Groups :class:`RunSpec` cells that differ *only* in their seed and
    whose engine can step whole seed-batches (see
    :func:`repro.core.engine.has_batch_engine`).  The batch is purely an
    execution strategy: :meth:`execute` returns one
    :class:`RunResult` per member spec — equal, by the batch engines'
    parity contract, to what each spec's own ``execute()`` would have
    produced — so callers (the pool) can fan results back into the
    per-spec result store under unchanged cache keys.
    """

    template: RunSpec
    seeds: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("a batch needs at least one seed")
        if not has_batch_engine(self.template.engine):
            raise ValueError(
                f"engine {self.template.engine!r} cannot step seed-batches; "
                f"submit the specs individually"
            )
        object.__setattr__(
            self, "seeds", tuple(int(seed) for seed in self.seeds)
        )

    @classmethod
    def from_specs(cls, specs: Sequence[RunSpec]) -> "BatchRunSpec":
        """Build a batch from specs that differ only in their seed."""
        if not specs:
            raise ValueError("a batch needs at least one spec")
        template = specs[0]
        reference = dataclasses.replace(template, seed=0)
        for spec in specs[1:]:
            if dataclasses.replace(spec, seed=0) != reference:
                raise ValueError(
                    f"batch members must differ only in seed: "
                    f"{spec.label()} vs {template.label()}"
                )
        return cls(template=template, seeds=tuple(s.seed for s in specs))

    def specs(self) -> Tuple[RunSpec, ...]:
        """The member cells, in batch (seed) order."""
        return tuple(
            dataclasses.replace(self.template, seed=seed)
            for seed in self.seeds
        )

    def __len__(self) -> int:
        return len(self.seeds)

    def execute(self) -> Tuple[RunResult, ...]:
        """Run the whole batch; one result per member spec, in order."""
        template = self.template
        scenarios = [
            dataclasses.replace(template, seed=seed).make_scenario()
            for seed in self.seeds
        ]
        return tuple(
            run_scenario_batch(scenarios, config=template.run_config())
        )


#: A controller axis entry: a name, or ``(name, params)``.
ControllerEntry = Union[str, Tuple[str, Optional[Mapping[str, Any]]]]


#: A scenarios-axis entry: a catalog name, or ``(name, params)`` where
#: the params override the entry's defaults for that cell only.
ScenarioAxisEntry = Union[str, Tuple[str, Optional[Mapping[str, Any]]]]


@dataclass(frozen=True)
class SweepGrid:
    """Cartesian product of sweep axes, expandable to :class:`RunSpec` s.

    Axes: traffic ``patterns`` (the paper's ``I``-``mixed``),
    ``scenarios`` (catalog names, optionally with per-entry parameters
    — ``("surge-4x4", {"load": 1.2})``), ``controllers`` (name or
    ``(name, params)`` entries), ``seeds``, ``engines`` and
    ``durations``.  The patterns and scenarios axes are concatenated
    into one workload axis; ``patterns=None`` (the default) means
    pattern ``I`` when no scenarios are given and nothing otherwise,
    so a scenarios-only grid does not sweep an unrequested pattern.
    Scalar run options (``mini_slot``, ``scenario_params``, recording)
    are shared by every cell; per-entry scenario parameters win over
    the shared ones.  ``record_entry_queues`` switches on queue-trace
    recording at each workload's entry roads (``0`` = off, ``-1`` =
    all entries, ``n > 0`` = the first ``n`` in sorted road order) —
    the input the regime-shift analyzer (:mod:`repro.analysis`) needs.
    """

    patterns: Optional[Tuple[str, ...]] = None
    controllers: Tuple[Tuple[str, FrozenParams], ...] = (("util-bp", ()),)
    seeds: Tuple[int, ...] = (1,)
    engines: Tuple[str, ...] = ("meso",)
    durations: Tuple[Optional[float], ...] = (None,)
    mini_slot: float = 1.0
    scenario_params: FrozenParams = ()
    scenarios: Tuple[Tuple[str, FrozenParams], ...] = ()
    record_entry_queues: int = 0

    def __post_init__(self) -> None:
        scenarios = []
        for entry in self.scenarios:
            if isinstance(entry, str):
                scenarios.append((entry, ()))
            else:
                name, params = entry
                scenarios.append((name, _freeze_params(params)))
        object.__setattr__(self, "scenarios", tuple(scenarios))
        if self.patterns is None:
            patterns: Tuple[str, ...] = () if scenarios else ("I",)
        else:
            patterns = tuple(self.patterns)
        object.__setattr__(self, "patterns", patterns)
        controllers = []
        for entry in self.controllers:
            if isinstance(entry, str):
                controllers.append((entry, ()))
            else:
                name, params = entry
                controllers.append((name, _freeze_params(params)))
        object.__setattr__(self, "controllers", tuple(controllers))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        engines = tuple(self.engines)
        known = engine_names()
        for engine in engines:
            if engine not in known:
                raise ValueError(
                    f"unknown engine {engine!r} in engines axis; known: "
                    f"{list(known)}"
                )
        object.__setattr__(self, "engines", engines)
        durations = tuple(
            None if d is None else float(d) for d in self.durations
        )
        object.__setattr__(self, "durations", durations)
        object.__setattr__(
            self, "scenario_params", _freeze_params(self.scenario_params)
        )
        record = int(self.record_entry_queues)
        if record < -1:
            raise ValueError(
                f"record_entry_queues must be >= -1 "
                f"(0=off, -1=all entries, n=first n), got {record}"
            )
        object.__setattr__(self, "record_entry_queues", record)
        # scenario_params are shared across the whole workload axis, so
        # a pattern-only key combined with a catalog scenario (or vice
        # versa) must fail at grid construction — per workload, against
        # the merged per-cell parameters each spec would receive.
        for name, extra in self.workloads():
            merged = dict(self.scenario_params)
            merged.update(extra)
            validate_scenario_params(name, merged)

    def workloads(self) -> Tuple[Tuple[str, FrozenParams], ...]:
        """The combined workload axis: patterns then catalog scenarios."""
        return tuple(
            [(pattern, ()) for pattern in self.patterns]
            + list(self.scenarios)
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view of the (normalized) grid.

        This is the grid's wire format: the HTTP service accepts it as
        a submission body, and :meth:`from_dict` round-trips it
        exactly.
        """
        return {
            "patterns": list(self.patterns),
            "scenarios": [
                [name, _params_to_json(params)]
                for name, params in self.scenarios
            ],
            "controllers": [
                [name, _params_to_json(params)]
                for name, params in self.controllers
            ],
            "seeds": list(self.seeds),
            "engines": list(self.engines),
            "durations": list(self.durations),
            "mini_slot": self.mini_slot,
            "scenario_params": _params_to_json(self.scenario_params),
            "record_entry_queues": self.record_entry_queues,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepGrid":
        """Build a grid from its JSON form (lenient, eagerly validated).

        Accepts the exact :meth:`to_dict` shape, but is deliberately
        forgiving about the hand-written variants a service client
        would send: every key is optional, controller/scenario entries
        may be bare names (``"util-bp"``) or ``[name, params]`` pairs
        with the params as a mapping or a ``[key, value]`` list.
        Unknown keys raise ``ValueError`` — the wire format is a public
        contract, so a typo'd axis must not be silently dropped.
        """
        known = {
            "patterns",
            "scenarios",
            "controllers",
            "seeds",
            "engines",
            "durations",
            "mini_slot",
            "scenario_params",
            "record_entry_queues",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown sweep-grid key(s) {unknown}; known: {sorted(known)}"
            )

        def entries(value):
            """Normalize an axis list of names / [name, params] pairs."""
            out = []
            for entry in value:
                if isinstance(entry, str):
                    out.append((entry, ()))
                else:
                    name, params = entry
                    if isinstance(params, Mapping):
                        out.append((name, params))
                    else:
                        out.append(
                            (name, tuple((k, v) for k, v in params or ()))
                        )
            return tuple(out)

        patterns = payload.get("patterns")
        scenario_params = payload.get("scenario_params") or ()
        if not isinstance(scenario_params, Mapping):
            scenario_params = tuple((k, v) for k, v in scenario_params)
        return cls(
            patterns=None if patterns is None else tuple(patterns),
            scenarios=entries(payload.get("scenarios", ())),
            controllers=entries(payload.get("controllers", ("util-bp",))),
            seeds=tuple(payload.get("seeds", (1,))),
            engines=tuple(payload.get("engines", ("meso",))),
            durations=tuple(payload.get("durations", (None,))),
            mini_slot=float(payload.get("mini_slot", 1.0)),
            scenario_params=scenario_params,
            record_entry_queues=int(payload.get("record_entry_queues", 0)),
        )

    def __len__(self) -> int:
        return (
            len(self.workloads())
            * len(self.controllers)
            * len(self.seeds)
            * len(self.engines)
            * len(self.durations)
        )

    def _entry_queue_pairs(
        self, name: str, scenario_params: FrozenParams
    ) -> Tuple[Tuple[str, str], ...]:
        """Resolve a workload's recorded entry roads to trace pairs.

        Builds the workload's network once (the topology depends only
        on the build parameters, not on seed or demand realization) and
        maps each requested entry road to the ``(downstream node,
        road)`` pair :class:`RunSpec.record_queues` expects.
        """
        params = dict(scenario_params)
        if name in PATTERN_NAMES:
            scenario = build_scenario(name, seed=self.seeds[0], **params)
        else:
            scenario = build_named_scenario(
                name, seed=self.seeds[0], **params
            )
        entries = scenario.network.entry_roads()
        if self.record_entry_queues > 0:
            entries = entries[: self.record_entry_queues]
        return tuple(
            (scenario.network.road_destination[road], road)
            for road in entries
        )

    def specs(self) -> Tuple[RunSpec, ...]:
        """Expand the grid into one spec per cell (deterministic order)."""
        out = []
        pair_cache: Dict[Tuple[str, FrozenParams], Tuple] = {}
        for workload, (controller, params), seed, engine, duration in product(
            self.workloads(),
            self.controllers,
            self.seeds,
            self.engines,
            self.durations,
        ):
            name, extra_params = workload
            scenario_params: FrozenParams = self.scenario_params
            if extra_params:
                merged = dict(self.scenario_params)
                merged.update(extra_params)
                scenario_params = _freeze_params(merged)
            record_queues: Tuple[Tuple[str, str], ...] = ()
            if self.record_entry_queues:
                cache_key = (name, scenario_params)
                if cache_key not in pair_cache:
                    pair_cache[cache_key] = self._entry_queue_pairs(
                        name, scenario_params
                    )
                record_queues = pair_cache[cache_key]
            out.append(
                RunSpec(
                    pattern=name,
                    controller=controller,
                    controller_params=params,
                    engine=engine,
                    seed=seed,
                    duration=duration,
                    mini_slot=self.mini_slot,
                    scenario_params=scenario_params,
                    record_queues=record_queues,
                )
            )
        return tuple(out)

    # -- sharding ------------------------------------------------------------

    def shard(self, index: int, count: int) -> Tuple[RunSpec, ...]:
        """The ``index``-th of ``count`` deterministic grid partitions.

        Cells are assigned by :func:`shard_index_of` — the spec content
        hash modulo ``count`` — which makes the partition:

        * **disjoint and complete**: every cell lands in exactly one
          shard, and the union of all ``count`` shards is exactly
          :meth:`specs`;
        * **stable**: independent of axis ordering, of the grid object
          that expanded the cell, and of the process/host computing it,
          so ``repro sweep --shard i/N`` invocations on different
          machines never overlap and never miss a cell;
        * **count-keyed**: changing ``count`` reshuffles the partition,
          so a fleet must agree on one ``N`` for a sweep.

        ``count`` may exceed the grid size; the surplus shards are
        simply empty.  Within a shard, cells keep the grid's expansion
        order.
        """
        if count < 1:
            raise ValueError(f"shard count must be >= 1, got {count}")
        if not 0 <= index < count:
            raise ValueError(
                f"shard index {index} out of range for count {count} "
                f"(valid: 0..{count - 1})"
            )
        return tuple(
            spec
            for spec in self.specs()
            if shard_index_of(spec, count) == index
        )
