"""Regime-shift analytics over stored simulation results.

The fleet runner produces mass replications; this package turns their
recorded queue-length series into *detected* quantities:

- :mod:`repro.analysis.changepoint` — the statistics: standardized
  CUSUM scan, circular-block-permutation threshold calibration,
  penalized single/multiple changepoint localization, and the
  distribution-free order-statistic confidence interval for the onset
  time across seeds.
- :mod:`repro.analysis.stability` — the verdicts: per (workload,
  controller, load) cell, ``stable`` / ``breakdown@t* [CI lo, hi]`` /
  ``insufficient-data``, computed from any :class:`ResultStore`
  (including fleet-merged stores), plus the registered
  ``stability-regimes`` experiment mapping the breakdown-load frontier
  per controller.

Surfaces: ``repro analyze changepoints`` (CLI), ``GET
/results/changepoints`` (service), and the :mod:`repro.api` facade.
All detection is deterministic — seeded permutations, no wall-clock —
so verdicts are byte-stable across hosts.
"""

from __future__ import annotations

from repro.analysis.changepoint import (
    Changepoint,
    CusumScan,
    cusum_scan,
    detect_changepoint,
    detect_changepoints,
    estimate_sigma,
    onset_interval,
    permutation_threshold,
)
from repro.analysis.stability import (
    AnalysisOptions,
    StabilityVerdict,
    analyze_records,
    analyze_store,
    breakdown_frontier,
    queue_total_series,
    render_verdicts,
    verdict_rows,
)

__all__ = [
    "AnalysisOptions",
    "Changepoint",
    "CusumScan",
    "StabilityVerdict",
    "analyze_records",
    "analyze_store",
    "breakdown_frontier",
    "cusum_scan",
    "detect_changepoint",
    "detect_changepoints",
    "estimate_sigma",
    "onset_interval",
    "permutation_threshold",
    "queue_total_series",
    "render_verdicts",
    "verdict_rows",
]
