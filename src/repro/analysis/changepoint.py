"""CUSUM changepoint statistics over queue-length time series.

The detector answers one question about a sampled series: *did the
mean level shift somewhere, and if so, where?*  The statistic is the
classical standardized CUSUM (Horvath & Trapani, arXiv:2104.13440):

.. math::

    T_k = \\frac{|S_k - (k/n) S_n|}{\\hat\\sigma \\sqrt{n}},
    \\qquad S_k = \\sum_{i \\le k} x_i,

with the noise scale :math:`\\hat\\sigma` estimated from first
differences (robust to the very mean shifts being tested).  The max
over ``k`` locates the most likely changepoint; whether that max is
*significant* is calibrated per series by a circular block permutation
null (:func:`permutation_threshold`): shuffling fixed-length blocks of
the observed series preserves its short-range autocorrelation while
destroying the placement of any trend, which is exactly the
distribution-free null the queue traces need — they are strongly
persistent, so an i.i.d. null would wildly over-detect.

Multiple changepoints come from penalized binary segmentation
(:func:`detect_changepoints`): recursively split at the best CUSUM
point while the segment statistic clears ``penalty x`` its own
permutation threshold and both children stay viable.

Aggregation across seeds uses the distribution-free order-statistic
confidence interval for the median onset (:func:`onset_interval`),
after Hore & Ramdas (arXiv:2602.06267): no normality assumption, exact
coverage from the binomial sign-test inversion.

Everything is deterministic: permutations draw from
``numpy.random.default_rng`` seeded by the caller (per-segment seeds
are derived from the segment bounds), and no wall-clock enters any
code path — identical inputs give byte-identical verdicts on any host.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.util.series import TimeSeries

__all__ = [
    "Changepoint",
    "CusumScan",
    "cusum_scan",
    "detect_changepoint",
    "detect_changepoints",
    "estimate_sigma",
    "onset_interval",
    "permutation_threshold",
]

#: Fewest samples a series needs before the statistic means anything.
MIN_POINTS = 20

SeriesLike = Union[TimeSeries, Sequence[float], np.ndarray]


def _as_values(series: SeriesLike) -> np.ndarray:
    """Coerce a series-like input to a float array of sample values."""
    if isinstance(series, TimeSeries):
        return np.asarray(series.values, dtype=float)
    return np.asarray(series, dtype=float)


def _times_of(series: SeriesLike, n: int) -> np.ndarray:
    """Sample times for ``series`` (sample indices when none exist)."""
    if isinstance(series, TimeSeries):
        return np.asarray(series.times, dtype=float)
    return np.arange(n, dtype=float)


def estimate_sigma(values: np.ndarray) -> float:
    """Noise scale from first differences: ``sqrt(mean(diff^2) / 2)``.

    Differencing removes any (piecewise-)constant mean, so the
    estimate is not inflated by the level shift under test — the
    standard trick for CUSUM standardization on shifted series.
    Returns 0.0 for constant or too-short series.
    """
    if len(values) < 2:
        return 0.0
    d = np.diff(values)
    return float(np.sqrt(np.mean(d * d) / 2.0))


@dataclass(frozen=True)
class CusumScan:
    """The standardized CUSUM scan of one series."""

    #: ``max_k T_k`` — the evidence for a mean shift.
    statistic: float
    #: The arg-max sample index (last index *before* the shift).
    index: int
    #: The first-difference noise scale used to standardize.
    sigma: float

    @property
    def degenerate(self) -> bool:
        """True when the series carried no usable variation."""
        return self.sigma <= 0.0


def cusum_scan(series: SeriesLike) -> CusumScan:
    """Scan a series for its best mean-shift candidate.

    Returns the maximum standardized CUSUM statistic and the index it
    occurs at (the proposed last pre-shift sample).  A constant (or
    near-constant) series has ``sigma == 0`` and scans to a degenerate
    zero-statistic result rather than raising.
    """
    values = _as_values(series)
    n = len(values)
    if n < 2:
        return CusumScan(statistic=0.0, index=0, sigma=0.0)
    sigma = estimate_sigma(values)
    if sigma <= 0.0:
        return CusumScan(statistic=0.0, index=0, sigma=0.0)
    partial = np.cumsum(values)
    k = np.arange(1, n + 1, dtype=float)
    curve = np.abs(partial - (k / n) * partial[-1]) / (sigma * math.sqrt(n))
    # k == n is identically zero and k cannot split the series there;
    # restrict the arg max to proper split points.
    index = int(np.argmax(curve[:-1]))
    return CusumScan(statistic=float(curve[index]), index=index, sigma=sigma)


def permutation_threshold(
    series: SeriesLike,
    n_permutations: int = 199,
    quantile: float = 0.95,
    block_length: int = 12,
    seed: int = 0,
) -> float:
    """Calibrate the CUSUM detection threshold by block permutation.

    Draws ``n_permutations`` circular block resamples of the observed
    values (blocks of ``block_length`` consecutive samples, wrapped
    around), scans each, and returns the requested ``quantile`` of the
    null statistics.  Block resampling keeps the series' short-range
    autocorrelation in the null — a plain value shuffle would make the
    persistent queue traces look significant everywhere — while
    destroying any global trend, which is the alternative under test.

    Fully deterministic for a given ``seed`` (``numpy``'s
    ``default_rng``; no global RNG state is touched).
    """
    values = _as_values(series)
    n = len(values)
    if n < 2:
        return float("inf")
    if n_permutations < 1:
        raise ValueError(
            f"n_permutations must be >= 1, got {n_permutations}"
        )
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    block = max(1, min(int(block_length), n))
    rng = np.random.default_rng(seed)
    n_blocks = int(math.ceil(n / block))
    offsets = np.arange(block)
    stats = np.empty(n_permutations, dtype=float)
    for p in range(n_permutations):
        starts = rng.integers(0, n, size=n_blocks)
        idx = (starts[:, None] + offsets[None, :]).ravel()[:n] % n
        stats[p] = cusum_scan(values[idx]).statistic
    return float(np.quantile(stats, quantile))


@dataclass(frozen=True)
class Changepoint:
    """One detected mean shift in a series."""

    #: Last sample index before the shift.
    index: int
    #: Sample time of :attr:`index` (the onset estimate).
    time: float
    #: The standardized CUSUM statistic at the split.
    statistic: float
    #: The calibrated threshold the statistic cleared.
    threshold: float
    #: Mean of the samples up to and including :attr:`index`.
    mean_before: float
    #: Mean of the samples after :attr:`index`.
    mean_after: float

    @property
    def shift(self) -> float:
        """Signed mean shift (positive = the level went up)."""
        return self.mean_after - self.mean_before


def _changepoint_at(
    values: np.ndarray,
    times: np.ndarray,
    index: int,
    statistic: float,
    threshold: float,
) -> Changepoint:
    before = values[: index + 1]
    after = values[index + 1 :]
    return Changepoint(
        index=index,
        time=float(times[index]),
        statistic=statistic,
        threshold=threshold,
        mean_before=float(before.mean()),
        mean_after=float(after.mean()),
    )


def detect_changepoint(
    series: SeriesLike,
    min_points: int = MIN_POINTS,
    n_permutations: int = 199,
    quantile: float = 0.95,
    block_length: int = 12,
    seed: int = 0,
) -> Optional[Changepoint]:
    """Detect the single most likely mean shift, or ``None``.

    ``None`` means "no significant shift": the series is shorter than
    ``min_points``, constant, or its CUSUM maximum does not clear the
    block-permutation threshold.  The caller decides what that means
    (for stability analysis: the run looks stable or carries too
    little data).
    """
    values = _as_values(series)
    n = len(values)
    if n < max(min_points, 2):
        return None
    scan = cusum_scan(values)
    if scan.degenerate:
        return None
    threshold = permutation_threshold(
        values,
        n_permutations=n_permutations,
        quantile=quantile,
        block_length=block_length,
        seed=seed,
    )
    if scan.statistic < threshold:
        return None
    times = _times_of(series, n)
    return _changepoint_at(
        values, times, scan.index, scan.statistic, threshold
    )


def detect_changepoints(
    series: SeriesLike,
    max_changepoints: int = 5,
    min_segment: int = MIN_POINTS,
    penalty: float = 1.0,
    n_permutations: int = 199,
    quantile: float = 0.95,
    block_length: int = 12,
    seed: int = 0,
) -> List[Changepoint]:
    """Locate multiple mean shifts by penalized binary segmentation.

    Recursively splits the series at its strongest CUSUM point while
    the segment statistic clears ``penalty x`` the segment's own
    permutation threshold and both children keep at least
    ``min_segment`` samples.  ``penalty > 1`` demands proportionally
    stronger evidence per extra changepoint — the knob trading
    sensitivity for parsimony.  Results are sorted by index.

    Per-segment permutation seeds are derived from ``(seed, lo, hi)``,
    so the full segmentation is deterministic regardless of recursion
    order.
    """
    if penalty <= 0.0:
        raise ValueError(f"penalty must be > 0, got {penalty}")
    if min_segment < 2:
        raise ValueError(f"min_segment must be >= 2, got {min_segment}")
    values = _as_values(series)
    times = _times_of(series, len(values))
    found: List[Changepoint] = []

    def split(lo: int, hi: int) -> None:
        """Recurse on ``values[lo:hi]``, appending accepted splits."""
        if len(found) >= max_changepoints:
            return
        segment = values[lo:hi]
        if len(segment) < 2 * min_segment:
            return
        scan = cusum_scan(segment)
        if scan.degenerate:
            return
        threshold = penalty * permutation_threshold(
            segment,
            n_permutations=n_permutations,
            quantile=quantile,
            block_length=block_length,
            seed=(seed, lo, hi),
        )
        if scan.statistic < threshold:
            return
        index = lo + scan.index
        if index + 1 - lo < min_segment or hi - (index + 1) < min_segment:
            return
        found.append(
            _changepoint_at(
                values[lo:hi],
                times[lo:hi],
                scan.index,
                scan.statistic,
                threshold,
            )
        )
        # Re-anchor the recorded changepoint to absolute coordinates.
        local = found[-1]
        found[-1] = Changepoint(
            index=index,
            time=float(times[index]),
            statistic=local.statistic,
            threshold=local.threshold,
            mean_before=local.mean_before,
            mean_after=local.mean_after,
        )
        split(lo, index + 1)
        split(index + 1, hi)

    split(0, len(values))
    return sorted(found, key=lambda cp: cp.index)


def onset_interval(
    onsets: Sequence[float], confidence: float = 0.95
) -> Optional[Tuple[float, float]]:
    """Distribution-free confidence interval for the median onset.

    Given per-seed onset times, inverts the binomial sign test: the
    interval ``[x_(l+1), x_(n-l)]`` (order statistics) covers the true
    median with probability at least ``confidence``, with ``l`` the
    largest count whose one-sided binomial tail stays within
    ``(1 - confidence) / 2``.  No distributional assumption on the
    onsets; for small ``n`` the interval is simply the full range.
    Returns ``None`` for an empty input.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(onsets)
    if n == 0:
        return None
    ordered = sorted(float(t) for t in onsets)
    alpha = (1.0 - confidence) / 2.0
    tail = 0.0
    depth = 0
    for i in range(n):
        tail += math.comb(n, i) * 0.5**n
        if tail <= alpha:
            depth = i + 1
        else:
            break
    # depth < n/2 always, so both indices stay in range.
    return ordered[depth], ordered[n - 1 - depth]
