"""Stability verdicts: detected regime shifts per sweep cell.

The stability experiments ask "did the network stabilize?"; this
module turns that from an eyeball judgment over scalar end-of-run
proxies into a *detected* quantity.  For every stored run that
recorded queue traces (``RunSpec.record_queues`` /
``SweepGrid.record_entry_queues``) the per-road entry-queue series are
summed into one network pressure series, the warm-up transient is
discarded, and the CUSUM detector of
:mod:`repro.analysis.changepoint` is asked for a significant *upward*
mean shift.  A run counts as broken down only when the shift is both
statistically significant (block-permutation calibrated) and
practically large (at least
:attr:`AnalysisOptions.min_shift_per_series` vehicles per summed
series) — the effect-size floor keeps a slow drift toward a busy but
bounded equilibrium from being flagged.

Runs are grouped into (workload, controller, load) cells; the cell's
:class:`StabilityVerdict` is ``breakdown`` when a strict majority of
its analyzed runs flag, with the onset ``t*`` as the median across
flagged seeds and a distribution-free order-statistic confidence
interval around it (:func:`repro.analysis.changepoint.onset_interval`).
Cells whose runs carry no usable traces come back ``insufficient-data``
instead of raising, so the analyzer can be pointed at any store.

The ``stability-regimes`` :class:`ExperimentDefinition` sweeps
(controller x load) with entry-queue recording switched on and maps
the breakdown-load frontier per controller
(:func:`breakdown_frontier`) — the paper's stability region, detected
rather than eyeballed.

Determinism: grouping is sorted, the detector's permutation seed is
fixed in :class:`AnalysisOptions`, and nothing reads a clock — the
same store yields byte-identical verdicts on any host.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.changepoint import (
    cusum_scan,
    onset_interval,
    permutation_threshold,
)
from repro.results.experiment import (
    ExperimentDefinition,
    register_experiment,
)
from repro.util.series import TimeSeries
from repro.util.tables import render_table

__all__ = [
    "AnalysisOptions",
    "StabilityVerdict",
    "STABILITY_REGIMES",
    "analyze_records",
    "analyze_store",
    "breakdown_frontier",
    "queue_total_series",
    "render_verdicts",
    "verdict_rows",
]

#: Statuses a verdict can carry.
STATUS_STABLE = "stable"
STATUS_BREAKDOWN = "breakdown"
STATUS_INSUFFICIENT = "insufficient-data"


@dataclass(frozen=True)
class AnalysisOptions:
    """Tuning knobs of the stability detector (defaults are sane).

    The defaults were calibrated on the catalog's gridlock (1.6x
    overload) vs steady workloads: gridlock's summed entry queues show
    shifts of 35+ vehicles at 900 s while steady's warm-up drift stays
    under ~20 across 12 entries — the per-series effect-size floor of
    2 vehicles separates the two with margin on either side.
    """

    #: Leading fraction of the horizon discarded before detection (the
    #: network filling from empty is itself a mean shift).
    warmup_fraction: float = 0.25
    #: Fewest post-warm-up samples a run needs to be analyzed.
    min_points: int = 20
    #: Effect-size floor: the upward shift must reach this many
    #: vehicles *per summed series* to count as a breakdown.
    min_shift_per_series: float = 2.0
    #: Null quantile of the permutation calibration.
    quantile: float = 0.95
    #: Permutation draws per series (odd keeps quantiles exact).
    n_permutations: int = 199
    #: Circular block length of the permutation null (samples).
    block_length: int = 12
    #: RNG seed of the permutation draws (fixed => deterministic).
    seed: int = 0
    #: Coverage of the onset confidence interval across seeds.
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got "
                f"{self.warmup_fraction}"
            )
        if self.min_points < 2:
            raise ValueError(
                f"min_points must be >= 2, got {self.min_points}"
            )
        if self.min_shift_per_series < 0.0:
            raise ValueError(
                f"min_shift_per_series must be >= 0, got "
                f"{self.min_shift_per_series}"
            )


@dataclass(frozen=True)
class StabilityVerdict:
    """The detected stability status of one (workload, controller, load) cell."""

    pattern: str
    controller: str
    controller_params: str
    engine: str
    delay_mode: str
    load: Optional[float]
    status: str
    #: Runs (seeds) in the cell / runs with analyzable traces / runs
    #: whose series flagged a significant upward shift.
    n_runs: int
    n_analyzed: int
    n_flagged: int
    #: Median detected onset time across flagged seeds (breakdown only).
    onset: Optional[float] = None
    #: Distribution-free CI for the median onset (breakdown only).
    onset_lo: Optional[float] = None
    onset_hi: Optional[float] = None
    #: Median upward mean shift (vehicles) across flagged seeds.
    mean_shift: Optional[float] = None

    def label(self) -> str:
        """Human-readable verdict: ``breakdown@t* [lo, hi]`` or status."""
        if self.status != STATUS_BREAKDOWN or self.onset is None:
            return self.status
        text = f"breakdown@{self.onset:.0f}s"
        if self.onset_lo is not None and self.onset_hi is not None:
            text += f" [{self.onset_lo:.0f}, {self.onset_hi:.0f}]"
        return text

    def to_row(self) -> Dict[str, Any]:
        """One tidy plain-JSON row (CSV/JSON export + service payload)."""
        return {
            "pattern": self.pattern,
            "controller": self.controller,
            "controller_params": self.controller_params,
            "engine": self.engine,
            "delay_mode": self.delay_mode,
            "load": self.load,
            "status": self.status,
            "verdict": self.label(),
            "n_runs": self.n_runs,
            "n_analyzed": self.n_analyzed,
            "n_flagged": self.n_flagged,
            "onset": self.onset,
            "onset_lo": self.onset_lo,
            "onset_hi": self.onset_hi,
            "mean_shift": self.mean_shift,
        }


def queue_total_series(result: Any) -> Optional[TimeSeries]:
    """Sum a run's recorded queue traces into one pressure series.

    Individual approaches break down unevenly (one entry gridlocks
    while its neighbour still drains), so the robust per-run signal is
    the *total* queued count across everything the run recorded.  All
    traces sample on the shared fixed grid; ragged lengths (an engine
    cut short) are truncated to the shortest.  Returns ``None`` when
    the run recorded no traces or no samples.
    """
    traces = getattr(result, "queue_traces", None)
    if not traces:
        return None
    series_list = [trace.series for trace in traces.values()]
    length = min(len(s) for s in series_list)
    if length == 0:
        return None
    total = TimeSeries("entry-queue-total")
    times = series_list[0].times
    for i in range(length):
        total.append(times[i], sum(s.values[i] for s in series_list))
    return total


@dataclass(frozen=True)
class _RunDetection:
    """Internal per-run outcome feeding a cell verdict."""

    status: str
    onset: Optional[float] = None
    shift: Optional[float] = None


def _analyze_run(
    series: Optional[TimeSeries], n_series: int, options: AnalysisOptions
) -> _RunDetection:
    """Classify one run's summed series as stable/breakdown/insufficient."""
    if series is None:
        return _RunDetection(STATUS_INSUFFICIENT)
    skip = int(len(series) * options.warmup_fraction)
    values = series.values[skip:]
    times = series.times[skip:]
    if len(values) < options.min_points:
        return _RunDetection(STATUS_INSUFFICIENT)
    scan = cusum_scan(values)
    if scan.degenerate:
        # Constant series (all-zero traces included): nothing moved,
        # which is the definition of stable.
        return _RunDetection(STATUS_STABLE)
    threshold = permutation_threshold(
        values,
        n_permutations=options.n_permutations,
        quantile=options.quantile,
        block_length=options.block_length,
        seed=options.seed,
    )
    if scan.statistic < threshold:
        return _RunDetection(STATUS_STABLE)
    before = values[: scan.index + 1]
    after = values[scan.index + 1 :]
    shift = (sum(after) / len(after)) - (sum(before) / len(before))
    if shift < options.min_shift_per_series * max(n_series, 1):
        # Statistically visible but practically small: a drift toward
        # a busier bounded equilibrium, not a breakdown.
        return _RunDetection(STATUS_STABLE, shift=shift)
    return _RunDetection(
        STATUS_BREAKDOWN, onset=float(times[scan.index]), shift=shift
    )


def _as_pair(record: Any) -> Tuple[Any, Any]:
    """Accept ``StoredRecord`` s and plain ``(spec, result)`` pairs."""
    if hasattr(record, "spec") and hasattr(record, "result"):
        return record.spec, record.result
    spec, result = record
    return spec, result


def _load_of(spec: Any) -> Optional[float]:
    """The cell's demand level from its scenario parameters, if any."""
    params = dict(spec.scenario_params)
    for key in ("demand_scale", "load"):
        value = params.get(key)
        if value is not None:
            return float(value)
    return None


def _params_label(spec: Any) -> str:
    return ",".join(f"{k}={v}" for k, v in spec.controller_params) or "-"


def analyze_records(
    records: Iterable[Any],
    options: Optional[AnalysisOptions] = None,
) -> List[StabilityVerdict]:
    """Detect regime shifts across stored cells, one verdict per cell.

    ``records`` are :class:`~repro.results.store.StoredRecord` s or
    plain ``(spec, result)`` pairs — ``store.query(...)`` output, or
    ``zip(specs, pool.run(specs))``.  Cells group by (pattern,
    controller+params, engine, delay-mode, load); seeds within a cell
    are the replications the verdict aggregates over.  Output is
    sorted by group key and deterministic for a given input.
    """
    options = options or AnalysisOptions()
    groups: Dict[Tuple, List[Tuple[Any, Any]]] = {}
    for record in records:
        spec, result = _as_pair(record)
        key = (
            spec.pattern,
            spec.controller,
            _params_label(spec),
            spec.engine,
            result.summary.delay_mode,
            _load_of(spec),
        )
        groups.setdefault(key, []).append((spec, result))

    verdicts: List[StabilityVerdict] = []
    for key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
        pattern, controller, params, engine, delay_mode, load = key
        members = groups[key]
        detections = []
        for _, result in members:
            series = queue_total_series(result)
            n_series = len(getattr(result, "queue_traces", {}) or {})
            detections.append(_analyze_run(series, n_series, options))
        analyzed = [d for d in detections if d.status != STATUS_INSUFFICIENT]
        flagged = [d for d in analyzed if d.status == STATUS_BREAKDOWN]
        if not analyzed:
            status = STATUS_INSUFFICIENT
        elif 2 * len(flagged) > len(analyzed):
            status = STATUS_BREAKDOWN
        else:
            status = STATUS_STABLE
        onset = onset_lo = onset_hi = mean_shift = None
        if status == STATUS_BREAKDOWN:
            onsets = [d.onset for d in flagged if d.onset is not None]
            onset = float(statistics.median(onsets))
            interval = onset_interval(onsets, confidence=options.confidence)
            if interval is not None:
                onset_lo, onset_hi = interval
            shifts = [d.shift for d in flagged if d.shift is not None]
            if shifts:
                mean_shift = float(statistics.median(shifts))
        verdicts.append(
            StabilityVerdict(
                pattern=pattern,
                controller=controller,
                controller_params=params,
                engine=engine,
                delay_mode=delay_mode,
                load=load,
                status=status,
                n_runs=len(members),
                n_analyzed=len(analyzed),
                n_flagged=len(flagged),
                onset=onset,
                onset_lo=onset_lo,
                onset_hi=onset_hi,
                mean_shift=mean_shift,
            )
        )
    return verdicts


def analyze_store(
    path: str,
    options: Optional[AnalysisOptions] = None,
    **filters: Any,
) -> List[StabilityVerdict]:
    """Open a result store read-only and analyze its (filtered) cells.

    ``filters`` are the store's query axes (``pattern``,
    ``controller``, ``engine``, ``seed``, ``delay_mode``, ...), so a
    merged fleet store can be narrowed to one workload family before
    detection.
    """
    from repro.results.store import ResultStore

    with ResultStore(path, read_only=True) as store:
        records = store.query(**filters)
    return analyze_records(records, options=options)


def verdict_rows(verdicts: Sequence[StabilityVerdict]) -> List[Dict[str, Any]]:
    """Verdicts as tidy plain-JSON rows (the shared export payload).

    The CLI's ``--format json/csv`` export and the service's
    ``GET /results/changepoints`` endpoint both emit exactly this, so
    the two surfaces stay byte-comparable.
    """
    return [verdict.to_row() for verdict in verdicts]


def render_verdicts(verdicts: Sequence[StabilityVerdict]) -> str:
    """ASCII table of verdicts for terminals and smoke logs."""
    rows = [
        (
            v.pattern,
            v.controller,
            v.controller_params,
            v.engine,
            "-" if v.load is None else f"{v.load:.2f}",
            f"{v.n_flagged}/{v.n_analyzed}/{v.n_runs}",
            "-" if v.mean_shift is None else f"{v.mean_shift:.1f}",
            v.label(),
        )
        for v in verdicts
    ]
    return render_table(
        (
            "workload",
            "controller",
            "params",
            "engine",
            "load",
            "flag/ana/run",
            "shift [veh]",
            "verdict",
        ),
        rows,
        title=(
            f"Regime-shift analysis — {len(verdicts)} cells "
            f"(CUSUM, block-permutation calibrated)"
        ),
    )


def breakdown_frontier(
    verdicts: Sequence[StabilityVerdict],
) -> List[Dict[str, Any]]:
    """The breakdown-load frontier per (controller, engine).

    For every controller/engine combination with load-annotated cells,
    reports the largest load still judged stable and the smallest load
    judged breakdown (either may be ``None`` when the sweep never
    crossed the frontier).  Cells without a load axis or without data
    are ignored.
    """
    grouped: Dict[Tuple[str, str, str], List[StabilityVerdict]] = {}
    for verdict in verdicts:
        if verdict.load is None or verdict.status == STATUS_INSUFFICIENT:
            continue
        key = (verdict.controller, verdict.controller_params, verdict.engine)
        grouped.setdefault(key, []).append(verdict)
    rows: List[Dict[str, Any]] = []
    for key in sorted(grouped):
        controller, params, engine = key
        cells = grouped[key]
        stable = [v.load for v in cells if v.status == STATUS_STABLE]
        broken = [v.load for v in cells if v.status == STATUS_BREAKDOWN]
        rows.append(
            {
                "controller": controller,
                "controller_params": params,
                "engine": engine,
                "max_stable_load": max(stable) if stable else None,
                "min_breakdown_load": min(broken) if broken else None,
            }
        )
    return rows


# -- the stability-regimes experiment definition ---------------------------


@dataclass(frozen=True)
class RegimeMap:
    """Verdicts plus the per-controller breakdown frontier."""

    verdicts: Tuple[StabilityVerdict, ...]
    frontier: Tuple[Dict[str, Any], ...]


def _entry_queue_pairs(
    scenario: Any, record_roads: int
) -> Tuple[Tuple[str, str], ...]:
    """``(downstream node, road)`` pairs for a scenario's entry roads."""
    entries = scenario.network.entry_roads()
    if record_roads > 0:
        entries = entries[:record_roads]
    return tuple(
        (scenario.network.road_destination[road], road) for road in entries
    )


def _build_regime_specs(
    loads: Sequence[float],
    controllers: Sequence,
    pattern: str,
    seeds: Sequence[int],
    duration: float,
    engine: str,
    record_roads: int,
) -> List[Any]:
    from repro.orchestration.spec import RunSpec
    from repro.scenarios import build_named_scenario

    if not loads:
        raise ValueError("need at least one load level")
    # The network shape is load- and seed-independent, so one build
    # resolves the recorded entry roads for every cell.
    reference = build_named_scenario(pattern, seed=int(seeds[0]))
    pairs = _entry_queue_pairs(reference, record_roads)
    return [
        RunSpec(
            pattern=pattern,
            controller=name,
            controller_params=params or {},
            engine=engine,
            seed=int(seed),
            duration=float(duration),
            scenario_params={"load": float(load)},
            record_queues=pairs,
        )
        for name, params in (
            (entry, None) if isinstance(entry, str) else entry
            for entry in controllers
        )
        for load in loads
        for seed in seeds
    ]


def _collect_regimes(
    specs: Sequence[Any],
    results: Sequence[Any],
    params: Mapping[str, Any],
) -> RegimeMap:
    verdicts = analyze_records(zip(specs, results))
    return RegimeMap(
        verdicts=tuple(verdicts),
        frontier=tuple(breakdown_frontier(verdicts)),
    )


def _render_regimes(regime_map: RegimeMap) -> str:
    lines = [render_verdicts(list(regime_map.verdicts)), ""]
    for row in regime_map.frontier:
        stable = row["max_stable_load"]
        broken = row["min_breakdown_load"]
        lines.append(
            f"{row['controller']}({row['controller_params']})/"
            f"{row['engine']}: max stable load "
            f"{'-' if stable is None else f'{stable:.2f}'}, "
            f"first breakdown at "
            f"{'-' if broken is None else f'{broken:.2f}'}"
        )
    return "\n".join(lines)


STABILITY_REGIMES = register_experiment(
    ExperimentDefinition(
        name="stability-regimes",
        description=(
            "breakdown-load frontier per controller: CUSUM-detected "
            "regime shifts in summed entry-queue series across a "
            "(controller x load x seed) sweep"
        ),
        build_specs=_build_regime_specs,
        collect=_collect_regimes,
        render=lambda regime_map: _render_regimes(regime_map),
        defaults=dict(
            loads=(0.8, 1.2, 1.6),
            controllers=(
                ("util-bp", None),
                ("cap-bp", {"period": 18.0}),
            ),
            pattern="steady-3x3",
            seeds=(1, 2, 3),
            duration=900.0,
            engine="meso-counts",
            record_roads=0,
        ),
    )
)
