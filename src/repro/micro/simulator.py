"""The microscopic network simulator (SUMO substitute).

Brings together Krauss car-following lanes, signal heads driven by the
controllers' phase decisions, junction transfer with downstream
blocking, Poisson insertion at the network boundary, and the detectors
that produce the controllers' queue observations.

The engine implements the same protocol as
:class:`repro.meso.simulator.MesoSimulator` (``observations`` /
``step`` / ``finalize`` / ``collector`` / ``utilization``), and
registers itself with the experiment runner as ``"micro"``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.engine import register_engine
from repro.scenarios.core import Scenario
from repro.metrics.collector import MetricsCollector
from repro.metrics.utilization import UtilizationTracker
from repro.micro.lane import Lane
from repro.micro.params import KraussParams, MicroParams
from repro.micro.vehicle import MicroVehicle
from repro.model.arrivals import ArrivalSchedule, PoissonArrivals
from repro.model.network import BOUNDARY, Network
from repro.model.phases import TRANSITION_PHASE_INDEX
from repro.model.queues import QueueObservation
from repro.model.routing import RouteSampler, TurningProbabilities
from repro.util.rng import RngStreams
from repro.util.validation import check_positive

__all__ = ["MicroSimulator"]

#: Lane key used for the single lane of a network-exit road.
_EXIT = "__exit__"


class MicroSimulator:
    """Microscopic simulation of a signalized road network.

    Parameters
    ----------
    network / demand / turning / seed:
        As for :class:`repro.meso.simulator.MesoSimulator`.
    krauss:
        Car-following parameters (SUMO passenger defaults).
    params:
        Engine parameters (integration step, detector geometry).
    """

    def __init__(
        self,
        network: Network,
        demand: Mapping[str, ArrivalSchedule],
        turning: TurningProbabilities,
        seed: int = 0,
        krauss: Optional[KraussParams] = None,
        params: Optional[MicroParams] = None,
    ):
        self.network = network
        self.krauss = krauss or KraussParams()
        self.params = params or MicroParams()
        self.time = 0.0
        self.collector = MetricsCollector()

        streams = RngStreams(seed)
        self.router = RouteSampler(network, turning, streams.get("routing"))
        self._dawdle = streams.get("micro/dawdle")
        unknown = set(demand) - set(network.entry_roads())
        if unknown:
            raise ValueError(
                f"demand declared on non-entry roads: {sorted(unknown)}"
            )
        self._arrivals: Dict[str, PoissonArrivals] = {
            road: PoissonArrivals(schedule, streams.get(f"arrivals/{road}"))
            for road, schedule in demand.items()
        }
        # Vehicles generated while their entry lane was full, with the
        # generation time; depart delay counts as queuing time.
        self._backlog: Dict[str, Deque[Tuple[float, MicroVehicle]]] = {
            road: deque() for road in self._arrivals
        }

        # Build lanes: one per movement for roads feeding an
        # intersection, one plain lane for exit roads.
        self._lanes: Dict[str, Dict[str, Lane]] = {}
        for road_id, road in network.roads.items():
            downstream = network.downstream_intersection(road_id)
            lanes: Dict[str, Lane] = {}
            if downstream is None:
                lanes[_EXIT] = Lane(
                    f"{road_id}#exit",
                    road.length,
                    road.speed_limit,
                    self.krauss,
                )
            else:
                for movement in downstream.movements_from(road_id):
                    lanes[movement.out_road] = Lane(
                        f"{road_id}->{movement.out_road}",
                        road.length,
                        road.speed_limit,
                        self.krauss,
                    )
            self._lanes[road_id] = lanes

        self.utilization: Dict[str, UtilizationTracker] = {
            node_id: UtilizationTracker(node_id)
            for node_id in network.intersections
        }
        # node id of the intersection each road feeds (None at exits).
        self._feeds: Dict[str, Optional[str]] = {
            road_id: (
                None
                if network.road_destination[road_id] == BOUNDARY
                else network.road_destination[road_id]
            )
            for road_id in network.roads
        }
        self._next_vehicle_id = 0
        self._finalized = False

    # -- sensing ------------------------------------------------------------

    def observations(self) -> Dict[str, QueueObservation]:
        """Build ``Q(k)`` for every intersection from the detectors."""
        p = self.params
        result: Dict[str, QueueObservation] = {}
        for node_id, intersection in self.network.intersections.items():
            movement_queues = {}
            for (in_road, out_road) in intersection.movements:
                lane = self._lanes[in_road][out_road]
                movement_queues[(in_road, out_road)] = lane.detector_count(
                    p.detector_range, p.halting_speed
                )
            out_queues = {}
            out_capacities = {}
            for road_id in intersection.out_roads:
                out_capacities[road_id] = self.network.roads[road_id].capacity
                out_queues[road_id] = self._sensed_out_queue(road_id)
            result[node_id] = QueueObservation(
                time=self.time,
                movement_queues=movement_queues,
                out_queues=out_queues,
                out_capacities=out_capacities,
            )
        return result

    def _sensed_out_queue(self, road_id: str) -> int:
        """Spillback sensor: 0 until congestion reaches the junction."""
        if self.network.road_destination[road_id] == BOUNDARY:
            return 0
        p = self.params
        lanes = self._lanes[road_id]
        spilled = any(
            lane.spillback_halted(p.spill_window, p.halting_speed)
            for lane in lanes.values()
        )
        if not spilled:
            return 0
        return self.road_occupancy(road_id)

    def road_occupancy(self, road_id: str) -> int:
        """Vehicles currently on a road (all its lanes)."""
        return sum(len(lane) for lane in self._lanes[road_id].values())

    def incoming_queue_total(self, road_id: str) -> int:
        """Halting vehicles at the stop line of ``road_id`` (Eq. 1 view)."""
        return sum(
            lane.halting_count(self.params.halting_speed)
            for lane in self._lanes[road_id].values()
        )

    def movement_queue(self, in_road: str, out_road: str) -> int:
        """Halting vehicles on one dedicated turning lane."""
        return self._lanes[in_road][out_road].halting_count(
            self.params.halting_speed
        )

    def vehicles_in_network(self) -> int:
        """Total vehicles currently on any lane."""
        return sum(
            len(lane)
            for lanes in self._lanes.values()
            for lane in lanes.values()
        )

    def backlog_size(self) -> int:
        """Vehicles waiting outside a full entry road."""
        return sum(len(q) for q in self._backlog.values())

    # -- dynamics -------------------------------------------------------------

    def step(self, dt: float, phases: Mapping[str, int]) -> None:
        """Advance one control mini-slot of length ``dt``."""
        check_positive("dt", dt)
        if self._finalized:
            raise RuntimeError("simulator already finalized")
        sub_steps = max(1, int(round(dt / self.params.dt)))
        sub_dt = dt / sub_steps
        green: Dict[str, frozenset] = {}
        for node_id, intersection in self.network.intersections.items():
            index = phases.get(node_id, TRANSITION_PHASE_INDEX)
            if index == TRANSITION_PHASE_INDEX:
                green[node_id] = frozenset()
            else:
                phase = intersection.phase_by_index(index)
                green[node_id] = frozenset(m.key for m in phase.movements)

        served_by_node = {node_id: 0 for node_id in self.network.intersections}
        for _ in range(sub_steps):
            self._substep(sub_dt, green, served_by_node)

        for node_id, intersection in self.network.intersections.items():
            index = phases.get(node_id, TRANSITION_PHASE_INDEX)
            tracker = self.utilization[node_id]
            if index == TRANSITION_PHASE_INDEX:
                tracker.record_slot(0, dt, 0.0, 0, False)
            else:
                phase = intersection.phase_by_index(index)
                max_service = sum(m.service_rate for m in phase.movements) * dt
                servable = any(
                    len(self._lanes[key[0]][key[1]]) > 0
                    for key in green[node_id]
                )
                tracker.record_slot(
                    index, dt, max_service, served_by_node[node_id], servable
                )

    def _substep(
        self,
        dt: float,
        green: Mapping[str, frozenset],
        served_by_node: Dict[str, int],
    ) -> None:
        halting = self.params.halting_speed
        transfers: List[Tuple[MicroVehicle, str]] = []
        left: List[MicroVehicle] = []
        for road_id, lanes in self._lanes.items():
            node_id = self._feeds[road_id]
            for key, lane in lanes.items():
                if key == _EXIT:
                    open_end = True
                else:
                    open_end = False
                    if node_id is not None and (road_id, key) in green[node_id]:
                        front = lane.front
                        if front is None:
                            open_end = True
                        else:
                            target = self._target_lane(front)
                            open_end = target.has_entry_room()
                crossed = lane.step(dt, open_end, self._dawdle)
                for vehicle in crossed:
                    if key == _EXIT:
                        left.append(vehicle)
                    else:
                        transfers.append((vehicle, key))
                        if node_id is not None:
                            served_by_node[node_id] += 1
                # Waiting-time accrual (SUMO definition).
                for vehicle in lane.vehicles:
                    if vehicle.speed < halting:
                        vehicle.waiting += dt

        for vehicle, out_road in transfers:
            vehicle.leg += 1
            self._target_lane_on(vehicle, out_road).push_entry(
                vehicle, from_junction=True
            )
        for vehicle in left:
            self.collector.vehicle_left(vehicle.vehicle_id, self.time)
            self.collector.add_queuing_time(vehicle.vehicle_id, vehicle.waiting)

        self._inject(dt)
        self.time += dt
        self.collector.advance(self.time)

    def _target_lane(self, vehicle: MicroVehicle) -> Lane:
        """Lane the vehicle will occupy after crossing the junction."""
        next_road = vehicle.next_road
        assert next_road is not None, "front vehicle at signal must continue"
        return self._target_lane_on_road(next_road, vehicle.road_after(vehicle.leg + 1))

    def _target_lane_on(self, vehicle: MicroVehicle, out_road: str) -> Lane:
        """Lane for a vehicle that just advanced onto ``out_road``."""
        return self._target_lane_on_road(out_road, vehicle.next_road)

    def _target_lane_on_road(self, road_id: str, following: Optional[str]) -> Lane:
        lanes = self._lanes[road_id]
        if _EXIT in lanes:
            return lanes[_EXIT]
        if following is None:
            raise ValueError(
                f"vehicle route ends on internal road {road_id!r}"
            )
        return lanes[following]

    def _inject(self, dt: float) -> None:
        for entry, process in self._arrivals.items():
            backlog = self._backlog[entry]
            count = process.sample_count(self.time, dt)
            for _ in range(count):
                route = self.router.sample_route(entry)
                backlog.append(
                    (
                        self.time,
                        MicroVehicle(
                            vehicle_id=self._next_vehicle_id, route=route
                        ),
                    )
                )
                self._next_vehicle_id += 1
            while backlog:
                generated_at, vehicle = backlog[0]
                lane = self._target_lane_on_road(
                    entry, vehicle.route[1] if len(vehicle.route) > 1 else None
                )
                if not lane.has_spawn_room():
                    break
                backlog.popleft()
                last = lane.last
                vehicle.speed = (
                    lane.speed_limit if last is None else min(
                        lane.speed_limit, last.speed + self.krauss.accel
                    )
                )
                vehicle.waiting += max(0.0, self.time - generated_at)
                lane.push_entry(vehicle, from_junction=False)
                self.collector.vehicle_entered(vehicle.vehicle_id, self.time)

    def finalize(self) -> None:
        """Flush queuing time of vehicles still in the network."""
        if self._finalized:
            return
        self._finalized = True
        for lanes in self._lanes.values():
            for lane in lanes.values():
                for vehicle in lane.vehicles:
                    self.collector.add_queuing_time(
                        vehicle.vehicle_id, vehicle.waiting
                    )
        for backlog in self._backlog.values():
            for generated_at, vehicle in backlog:
                self.collector.vehicle_entered(vehicle.vehicle_id, generated_at)
                self.collector.add_queuing_time(
                    vehicle.vehicle_id, max(0.0, self.time - generated_at)
                )


def _build_micro(scenario: Scenario) -> MicroSimulator:
    return MicroSimulator(
        network=scenario.network,
        demand=scenario.demand,
        turning=scenario.turning,
        seed=scenario.seed,
    )


register_engine("micro", _build_micro)
