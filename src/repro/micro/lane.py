"""Dedicated turning lanes with Krauss car-following.

A lane belongs to one road and (for roads feeding an intersection)
serves exactly one movement — the paper's dedicated-turning-lane
assumption, which rules out head-of-line blocking (Sec. IV-Q4).

Geometry: positions grow from the road entry (0) to the stop line at
``length``.  A vehicle that has just crossed the upstream junction
carries a *negative* position (it is still inside the junction
interior, of length ``junction_length``) and clears it by driving
forward — so amber time really is spent clearing the junction, as in
the paper's model of the transition phase.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.micro.krauss import next_speed, safe_speed
from repro.micro.params import KraussParams
from repro.micro.vehicle import MicroVehicle

__all__ = ["Lane"]


class Lane:
    """One lane: an ordered column of vehicles (index 0 at the front)."""

    def __init__(
        self,
        lane_id: str,
        length: float,
        speed_limit: float,
        params: KraussParams,
        junction_length: float = 12.0,
    ):
        if length <= 0:
            raise ValueError(f"lane length must be > 0, got {length}")
        if speed_limit <= 0:
            raise ValueError(f"speed limit must be > 0, got {speed_limit}")
        if junction_length < 0:
            raise ValueError(
                f"junction_length must be >= 0, got {junction_length}"
            )
        self.lane_id = lane_id
        self.length = length
        self.speed_limit = speed_limit
        self.params = params
        self.junction_length = junction_length
        self.vehicles: List[MicroVehicle] = []

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.vehicles)

    @property
    def front(self) -> Optional[MicroVehicle]:
        """The vehicle closest to the stop line, if any."""
        return self.vehicles[0] if self.vehicles else None

    @property
    def last(self) -> Optional[MicroVehicle]:
        """The most recently entered vehicle, if any."""
        return self.vehicles[-1] if self.vehicles else None

    def has_entry_room(self) -> bool:
        """True if a vehicle can be placed at the lane entry.

        Entry happens at position ``-junction_length`` (from the
        junction) or 0 (network entry); either way the last vehicle
        must have advanced at least one jam spacing past the entry
        point used.
        """
        last = self.last
        if last is None:
            return True
        return last.position - self.params.jam_spacing >= -self.junction_length

    def has_spawn_room(self) -> bool:
        """True if a network-entry vehicle fits at position 0."""
        last = self.last
        if last is None:
            return True
        return last.position - self.params.jam_spacing >= 0.0

    def halting_count(self, halting_speed: float) -> int:
        """Vehicles at (almost) standstill anywhere on the lane."""
        return sum(1 for v in self.vehicles if v.speed < halting_speed)

    def detector_count(self, detector_range: float, halting_speed: float) -> int:
        """Sensed queue: halted anywhere, or inside the detector area.

        Mirrors a lane-area detector covering the last
        ``detector_range`` metres before the stop line.
        """
        threshold = self.length - detector_range
        count = 0
        for vehicle in self.vehicles:
            if vehicle.speed < halting_speed or vehicle.position >= threshold:
                count += 1
        return count

    def spillback_halted(self, spill_window: float, halting_speed: float) -> bool:
        """True if a halted vehicle sits within ``spill_window`` of entry."""
        for vehicle in self.vehicles:
            if vehicle.position <= spill_window and vehicle.speed < halting_speed:
                return True
        return False

    # -- dynamics -------------------------------------------------------------

    def step(
        self,
        dt: float,
        open_end: bool,
        rng: Optional[np.random.Generator],
    ) -> List[MicroVehicle]:
        """Advance every vehicle by ``dt``.

        Parameters
        ----------
        dt:
            Integration step, s.
        open_end:
            Whether the front vehicle may cross the stop line this step
            (green signal *and* downstream room — decided by the
            simulator).
        rng:
            Dawdling noise source (``None`` = deterministic).

        Returns
        -------
        list of vehicles whose front bumper crossed the stop line; they
        have already been removed from this lane, with ``position``
        reset to the overshoot past the line.
        """
        params = self.params
        vehicles = self.vehicles
        crossed: List[MicroVehicle] = []
        leader: Optional[MicroVehicle] = None
        for vehicle in vehicles:
            if leader is None:
                if open_end:
                    gap = None
                    leader_speed = 0.0
                else:
                    # Virtual standing obstacle at the stop line; the
                    # min_gap is intentionally not subtracted so the
                    # vehicle halts with its bumper at the line.
                    gap = self.length - vehicle.position
                    leader_speed = 0.0
            else:
                gap = (
                    leader.position
                    - params.length
                    - params.min_gap
                    - vehicle.position
                )
                leader_speed = leader.speed
            vehicle.speed = next_speed(
                vehicle.speed,
                self.speed_limit,
                gap,
                leader_speed,
                dt,
                params,
                rng,
            )
            vehicle.position += vehicle.speed * dt
            if leader is None and not open_end and vehicle.position > self.length:
                # Numerical overshoot against a red light: clamp.
                vehicle.position = self.length
                vehicle.speed = 0.0
            leader = vehicle
        # Only an open stop line lets vehicles cross; a vehicle clamped
        # *at* the line under red must stay put.
        while open_end and vehicles and vehicles[0].position >= self.length:
            front = vehicles.pop(0)
            front.position -= self.length
            crossed.append(front)
        return crossed

    # -- mutation ---------------------------------------------------------------

    def push_entry(self, vehicle: MicroVehicle, from_junction: bool) -> None:
        """Place a vehicle at the lane entry.

        ``from_junction`` entries start inside the junction interior
        (negative position, preserving any overshoot); network entries
        start at position 0.
        """
        if from_junction:
            vehicle.position = vehicle.position - self.junction_length
        else:
            vehicle.position = 0.0
        last = self.last
        if last is not None:
            ceiling = last.position - self.params.jam_spacing
            if vehicle.position > ceiling:
                vehicle.position = ceiling
                vehicle.speed = min(vehicle.speed, last.speed)
            # Gap acceptance: a vehicle may not enter faster than the
            # safe speed towards the lane's tail — otherwise bounded
            # deceleration would force an overlap (rear-end collision).
            usable = (
                last.position
                - self.params.length
                - self.params.min_gap
                - vehicle.position
            )
            vehicle.speed = min(
                vehicle.speed,
                safe_speed(usable, vehicle.speed, last.speed, self.params),
            )
        self.vehicles.append(vehicle)
