"""The Krauss car-following model (SUMO's default).

Krauss (1998): a vehicle chooses the highest speed that is *safe*,
i.e. lets it stop without collision if the leader brakes hard:

``v_safe = v_l + (g - v_l * tau) / ((v + v_l) / (2 b) + tau)``

where ``v_l`` is the leader speed, ``g`` the net gap, ``tau`` the
reaction time and ``b`` the comfortable deceleration.  The desired
speed is the minimum of acceleration-limited, road-limited and safe
speed, and a stochastic imperfection subtracts up to
``sigma * a * dt`` ("dawdling").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.micro.params import KraussParams

__all__ = ["safe_speed", "next_speed"]


def safe_speed(
    gap: float,
    speed: float,
    leader_speed: float,
    params: KraussParams,
) -> float:
    """Krauss safe speed for the given net gap and leader speed.

    ``gap`` is the distance from this vehicle's front bumper to the
    leader's rear bumper minus the minimum gap (i.e. the *usable*
    distance).  Negative gaps clamp to a full stop.
    """
    if gap <= 0:
        return 0.0
    tau = params.tau
    denominator = (speed + leader_speed) / (2.0 * params.decel) + tau
    v_safe = leader_speed + (gap - leader_speed * tau) / denominator
    return max(0.0, v_safe)


def next_speed(
    speed: float,
    speed_limit: float,
    gap: Optional[float],
    leader_speed: float,
    dt: float,
    params: KraussParams,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """One Krauss speed update.

    Parameters
    ----------
    speed:
        Current speed, m/s.
    speed_limit:
        Maximum permitted speed on the lane, m/s.
    gap:
        Usable distance to the leader (``None`` for a free road).
    leader_speed:
        Leader's speed, m/s (ignored when ``gap`` is ``None``).
    dt:
        Time step, s.
    params:
        Model parameters.
    rng:
        Source of the dawdling noise; ``None`` disables dawdling
        (deterministic mode, used by tests).
    """
    v_acc = speed + params.accel * dt
    v_des = min(v_acc, speed_limit)
    if gap is not None:
        v_des = min(v_des, safe_speed(gap, speed, leader_speed, params))
    if rng is not None and params.sigma > 0.0:
        v_des -= params.sigma * params.accel * dt * rng.random()
    # Physical limits: no reversing, bounded braking.
    v_min = max(0.0, speed - params.decel * dt)
    return max(v_min, max(0.0, min(v_des, v_acc)))
