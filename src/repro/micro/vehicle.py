"""Vehicle entities of the microscopic engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["MicroVehicle"]


@dataclass
class MicroVehicle:
    """A continuous-space vehicle.

    Attributes
    ----------
    vehicle_id:
        Unique integer id.
    route:
        Ordered road ids from entry to exit inclusive.
    leg:
        Index into ``route`` of the current road.
    position:
        Front-bumper position along the current road, m (0 at the
        road's entry, ``road.length`` at the stop line).
    speed:
        Current speed, m/s.
    waiting:
        Accumulated waiting time, s — time spent below the halting
        speed threshold (SUMO's accumulated waiting-time notion).
    """

    vehicle_id: int
    route: List[str]
    leg: int = 0
    position: float = 0.0
    speed: float = 0.0
    waiting: float = 0.0

    def __post_init__(self) -> None:
        if not self.route:
            raise ValueError("route must contain at least one road")
        if not 0 <= self.leg < len(self.route):
            raise ValueError(
                f"leg {self.leg} out of range for route of {len(self.route)}"
            )
        if self.speed < 0:
            raise ValueError(f"speed must be >= 0, got {self.speed}")

    @property
    def current_road(self) -> str:
        """Road id the vehicle currently occupies."""
        return self.route[self.leg]

    @property
    def next_road(self) -> Optional[str]:
        """Road the route continues on (``None`` on the final leg)."""
        if self.leg + 1 < len(self.route):
            return self.route[self.leg + 1]
        return None

    def road_after(self, road_index: int) -> Optional[str]:
        """Route road following index ``road_index`` (``None`` at end)."""
        if road_index + 1 < len(self.route):
            return self.route[road_index + 1]
        return None
