"""Microscopic traffic simulator — the SUMO substitute.

The paper evaluates in SUMO [7]; this package provides the equivalent
microscopic substrate built from scratch:

* :mod:`repro.micro.krauss` — the Krauss car-following model (SUMO's
  default), with safe-speed computation and stochastic driver
  imperfection;
* :mod:`repro.micro.vehicle` / :mod:`repro.micro.lane` — continuous-
  space vehicles on per-movement dedicated turning lanes;
* :mod:`repro.micro.detectors` — lane-area queue detectors and the
  spillback sensor feeding the controllers' ``Q(k)``;
* :mod:`repro.micro.simulator` — signal heads, amber (transition)
  phases, junction transfer with downstream-capacity blocking, Poisson
  insertion, and the engine protocol shared with :mod:`repro.meso`.

The engine registers itself with the experiment runner under the name
``"micro"``.
"""

from repro.micro.params import KraussParams, MicroParams
from repro.micro.simulator import MicroSimulator

__all__ = ["KraussParams", "MicroParams", "MicroSimulator"]
