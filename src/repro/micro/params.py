"""Parameter sets for the microscopic engine.

Defaults mirror SUMO's passenger-car defaults so the substitute
substrate behaves like the paper's: 5 m vehicles with 2.5 m minimum
gap (7.5 m jam spacing — 40 vehicles per 300 m lane, 120 per
three-lane road, matching the paper's ``W_i = 120``), 2.6 m/s²
acceleration, 4.5 m/s² comfortable deceleration, 1 s reaction time and
0.5 driver imperfection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in_range, check_non_negative, check_positive

__all__ = ["KraussParams", "MicroParams"]


@dataclass(frozen=True)
class KraussParams:
    """Krauss car-following parameters (SUMO defaults).

    Attributes
    ----------
    accel:
        Maximum acceleration, m/s².
    decel:
        Comfortable (braking) deceleration, m/s².
    tau:
        Driver reaction time, s.
    sigma:
        Driver imperfection in [0, 1]; the speed is randomly reduced
        by up to ``sigma * accel * dt`` each step.
    length:
        Vehicle length, m.
    min_gap:
        Standstill gap to the leader, m.
    """

    accel: float = 2.6
    decel: float = 4.5
    tau: float = 1.0
    sigma: float = 0.5
    length: float = 5.0
    min_gap: float = 2.5

    def __post_init__(self) -> None:
        check_positive("accel", self.accel)
        check_positive("decel", self.decel)
        check_positive("tau", self.tau)
        check_in_range("sigma", self.sigma, 0.0, 1.0)
        check_positive("length", self.length)
        check_non_negative("min_gap", self.min_gap)

    @property
    def jam_spacing(self) -> float:
        """Road length one standing vehicle occupies (length + gap)."""
        return self.length + self.min_gap


@dataclass(frozen=True)
class MicroParams:
    """Engine-level parameters of the microscopic simulator.

    Attributes
    ----------
    dt:
        Integration step, s (SUMO default is 1.0; we default to 0.5
        for smoother queue discharge).
    halting_speed:
        Speed threshold below which a vehicle counts as halting —
        SUMO's waiting-time definition uses 0.1 m/s.
    detector_range:
        Length of the lane-area queue detector upstream of the stop
        line, m.  Vehicles inside it count towards the sensed movement
        queue whether moving or halted; halted vehicles count anywhere
        on the lane.
    spill_window:
        Distance from the *entry* of an outgoing road within which a
        halted vehicle means congestion has spilled back to the
        junction mouth, m.
    junction_crossing_time:
        Seconds a vehicle needs to clear the junction interior after
        crossing the stop line (added as an entry delay on the next
        road).
    """

    dt: float = 0.5
    halting_speed: float = 0.1
    detector_range: float = 40.0
    spill_window: float = 20.0
    junction_crossing_time: float = 2.0

    def __post_init__(self) -> None:
        check_positive("dt", self.dt)
        check_positive("halting_speed", self.halting_speed)
        check_positive("detector_range", self.detector_range)
        check_positive("spill_window", self.spill_window)
        check_non_negative("junction_crossing_time", self.junction_crossing_time)
