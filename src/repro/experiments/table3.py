"""Table III — CAP-BP (best period) vs UTIL-BP over all patterns.

The paper reports, per traffic pattern, the average queuing time of
UTIL-BP and of CAP-BP at its *best* control period (found by sweeping,
Fig. 2 style).  This driver reruns that protocol end to end: for each
pattern it sweeps the CAP-BP period, takes the best, runs UTIL-BP once
and reports both with the paper's reference numbers alongside.

Declared as the :data:`TABLE3`
:class:`~repro.results.experiment.ExperimentDefinition`: the whole
(pattern x period) grid plus the UTIL-BP references goes to the pool
as one batch, and the best-period fold is the definition's collector.
Cells shared with Fig. 2 (mixed-pattern CAP-BP sweeps) are computed
once when both drivers run against the same store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import RunResult
from repro.scenarios.core import DEFAULT_DURATIONS
from repro.orchestration import ExperimentPool, RunSpec
from repro.results.experiment import (
    ExperimentDefinition,
    register_experiment,
    run_experiment,
)
from repro.util.tables import render_table

__all__ = [
    "Table3Row",
    "TABLE3",
    "PAPER_TABLE3",
    "run_table3",
    "render_table3",
    "main",
]

#: The paper's Table III: pattern -> (CAP-BP best period [s],
#: CAP-BP avg queuing time [s], UTIL-BP avg queuing time [s]).
PAPER_TABLE3: Dict[str, Tuple[float, float, float]] = {
    "I": (18.0, 102.87, 97.97),
    "II": (16.0, 90.55, 81.62),
    "III": (16.0, 113.86, 108.41),
    "IV": (22.0, 125.63, 94.05),
    "mixed": (20.0, 120.71, 95.56),
}

#: Default CAP-BP period grid (subset of the paper's 10-80 s sweep).
DEFAULT_PERIODS: Tuple[float, ...] = (10.0, 14.0, 18.0, 22.0, 26.0, 30.0)


@dataclass(frozen=True)
class Table3Row:
    """One reproduced row of Table III."""

    pattern: str
    cap_bp_best_period: float
    cap_bp_queuing_time: float
    util_bp_queuing_time: float

    @property
    def improvement_percent(self) -> float:
        """UTIL-BP improvement over best-period CAP-BP, percent."""
        if self.cap_bp_queuing_time == 0:
            return 0.0
        return (
            (self.cap_bp_queuing_time - self.util_bp_queuing_time)
            / self.cap_bp_queuing_time
            * 100.0
        )


def render_table3(rows: Sequence[Table3Row]) -> str:
    """ASCII rendering with the paper's reference values."""
    body = []
    for row in rows:
        paper = PAPER_TABLE3.get(row.pattern)
        paper_cap = f"{paper[1]:.2f}" if paper else "-"
        paper_util = f"{paper[2]:.2f}" if paper else "-"
        paper_impr = (
            f"{(paper[1] - paper[2]) / paper[1] * 100:.1f}%" if paper else "-"
        )
        body.append(
            (
                row.pattern,
                f"{row.cap_bp_best_period:.0f} s",
                f"{row.cap_bp_queuing_time:.2f}",
                f"{row.util_bp_queuing_time:.2f}",
                f"{row.improvement_percent:.1f}%",
                paper_cap,
                paper_util,
                paper_impr,
            )
        )
    return render_table(
        (
            "Pattern",
            "CAP-BP period",
            "CAP-BP [s]",
            "UTIL-BP [s]",
            "improv.",
            "paper CAP",
            "paper UTIL",
            "paper impr.",
        ),
        body,
        title="Table III — average queuing time, CAP-BP (best period) vs UTIL-BP",
    )


def _build_specs(
    patterns: Sequence[str],
    engine: str,
    seed: int,
    periods: Sequence[float],
    duration_scale: float,
    mixed_segment_duration: Optional[float],
) -> List[RunSpec]:
    if not periods:
        raise ValueError("need at least one period to sweep")
    if duration_scale <= 0:
        raise ValueError(f"duration_scale must be > 0, got {duration_scale}")
    segment = (
        mixed_segment_duration
        if mixed_segment_duration is not None
        else 3600.0 * duration_scale
    )
    specs: List[RunSpec] = []
    for pattern in patterns:
        duration = DEFAULT_DURATIONS[pattern] * duration_scale
        scenario_params = {"mixed_segment_duration": segment}
        for period in periods:
            specs.append(
                RunSpec(
                    pattern=pattern,
                    controller="cap-bp",
                    controller_params={"period": float(period)},
                    engine=engine,
                    seed=seed,
                    duration=duration,
                    scenario_params=scenario_params,
                )
            )
        specs.append(
            RunSpec(
                pattern=pattern,
                controller="util-bp",
                engine=engine,
                seed=seed,
                duration=duration,
                scenario_params=scenario_params,
            )
        )
    return specs


def _collect(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    params: Mapping[str, Any],
) -> List[Table3Row]:
    patterns, periods = params["patterns"], params["periods"]
    stream = iter(results)
    rows: List[Table3Row] = []
    for pattern in patterns:
        by_period = [(period, next(stream)) for period in periods]
        util = next(stream)
        best_period, best = min(
            by_period, key=lambda item: item[1].average_queuing_time
        )
        rows.append(
            Table3Row(
                pattern=pattern,
                cap_bp_best_period=float(best_period),
                cap_bp_queuing_time=best.average_queuing_time,
                util_bp_queuing_time=util.average_queuing_time,
            )
        )
    return rows


TABLE3 = register_experiment(
    ExperimentDefinition(
        name="table3",
        description=(
            "Table III — per-pattern CAP-BP best-period sweep vs the "
            "UTIL-BP reference"
        ),
        build_specs=_build_specs,
        collect=_collect,
        render=render_table3,
        defaults=dict(
            patterns=("I", "II", "III", "IV", "mixed"),
            engine="micro",
            seed=1,
            periods=DEFAULT_PERIODS,
            duration_scale=1.0,
            mixed_segment_duration=None,
        ),
    )
)


def run_table3(
    patterns: Sequence[str] = ("I", "II", "III", "IV", "mixed"),
    engine: str = "micro",
    seed: int = 1,
    periods: Sequence[float] = DEFAULT_PERIODS,
    duration_scale: float = 1.0,
    mixed_segment_duration: Optional[float] = None,
    pool: Optional[ExperimentPool] = None,
) -> List[Table3Row]:
    """Reproduce Table III.

    Parameters
    ----------
    patterns:
        Which Table II patterns to include.
    engine:
        ``"micro"`` (paper-faithful) or ``"meso"`` (fast).
    seed:
        Scenario seed; both controllers see identical demand.
    periods:
        CAP-BP period grid to sweep.
    duration_scale:
        Multiplier on the paper's horizons (1 h per pattern, 4 h
        mixed).  Benchmarks use < 1 to stay CI-friendly.
    mixed_segment_duration:
        Override for the mixed pattern's per-segment length; defaults
        to ``3600 * duration_scale``.
    pool:
        Orchestration pool; every (pattern x period) cell plus the
        UTIL-BP reference runs are submitted as one batch, so the whole
        table parallelizes.  Defaults to a serial in-process pool.
    """
    return run_experiment(
        TABLE3,
        pool=pool,
        patterns=tuple(patterns),
        engine=engine,
        seed=seed,
        periods=tuple(periods),
        duration_scale=duration_scale,
        mixed_segment_duration=mixed_segment_duration,
    )


def main() -> None:
    """Full reproduction at paper horizons on the micro engine."""
    rows = run_table3()
    print(render_table3(rows))
    mean = sum(r.improvement_percent for r in rows) / len(rows)
    print(f"mean improvement: {mean:.1f}% (paper: ~13%)")


if __name__ == "__main__":
    main()
