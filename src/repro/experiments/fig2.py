"""Figure 2 — average queuing time vs CAP-BP control period (mixed).

The paper plots, for the mixed traffic pattern, the network-wide
average queuing time of CAP-BP as a function of the (globally set)
control phase period from 10 s to 80 s, with the UTIL-BP result as the
flat reference the sweep never beats.  This driver regenerates that
series and renders it as an ASCII chart.

The driver is an :class:`~repro.results.experiment.ExperimentDefinition`
(:data:`FIG2`): the period grid expands to specs, the pool executes
them (parallel/store-backed when asked), and the collector folds the
results into :class:`Fig2Result`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import RunResult
from repro.orchestration import ExperimentPool, RunSpec
from repro.results.experiment import (
    ExperimentDefinition,
    register_experiment,
    run_experiment,
)
from repro.util.series import TimeSeries, render_series

__all__ = ["Fig2Result", "FIG2", "run_fig2", "render_fig2", "main"]

#: The paper's sweep grid (Fig. 2 x-axis).
PAPER_PERIODS: Tuple[float, ...] = (10, 20, 30, 40, 50, 60, 70, 80)


@dataclass(frozen=True)
class Fig2Result:
    """The period sweep and the UTIL-BP reference level."""

    periods: Tuple[float, ...]
    cap_bp_queuing_times: Tuple[float, ...]
    util_bp_queuing_time: float

    @property
    def best_period(self) -> float:
        """Period minimizing the CAP-BP queuing time."""
        index = min(
            range(len(self.periods)),
            key=lambda i: self.cap_bp_queuing_times[i],
        )
        return self.periods[index]

    @property
    def best_queuing_time(self) -> float:
        """The minimum CAP-BP queuing time over the sweep."""
        return min(self.cap_bp_queuing_times)

    @property
    def util_beats_best(self) -> bool:
        """The paper's headline check for this figure."""
        return self.util_bp_queuing_time < self.best_queuing_time


def render_fig2(result: Fig2Result) -> str:
    """ASCII chart in the shape of the paper's Fig. 2."""
    cap = TimeSeries("CAP-BP (capacity-aware)")
    for period, value in zip(result.periods, result.cap_bp_queuing_times):
        cap.append(period, value)
    util = TimeSeries("UTIL-BP (proposed)")
    for period in result.periods:
        util.append(period, result.util_bp_queuing_time)
    chart = render_series(
        [cap, util],
        title=(
            "Fig. 2 — avg queuing time [s] vs control period [s], "
            "mixed pattern"
        ),
    )
    lines = [
        chart,
        f"best CAP-BP: {result.best_queuing_time:.2f} s at "
        f"{result.best_period:.0f} s period",
        f"UTIL-BP:     {result.util_bp_queuing_time:.2f} s "
        f"({'beats' if result.util_beats_best else 'does not beat'} the sweep)",
    ]
    return "\n".join(lines)


def _build_specs(
    periods: Sequence[float],
    engine: str,
    seed: int,
    segment_duration: float,
) -> List[RunSpec]:
    if not periods:
        raise ValueError("need at least one period to sweep")
    duration = 4 * segment_duration
    scenario_params = {"mixed_segment_duration": segment_duration}
    specs = [
        RunSpec(
            pattern="mixed",
            controller="cap-bp",
            controller_params={"period": float(period)},
            engine=engine,
            seed=seed,
            duration=duration,
            scenario_params=scenario_params,
        )
        for period in periods
    ]
    specs.append(
        RunSpec(
            pattern="mixed",
            controller="util-bp",
            engine=engine,
            seed=seed,
            duration=duration,
            scenario_params=scenario_params,
        )
    )
    return specs


def _collect(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    params: Mapping[str, Any],
) -> Fig2Result:
    return Fig2Result(
        periods=tuple(float(p) for p in params["periods"]),
        cap_bp_queuing_times=tuple(
            result.average_queuing_time for result in results[:-1]
        ),
        util_bp_queuing_time=results[-1].average_queuing_time,
    )


FIG2 = register_experiment(
    ExperimentDefinition(
        name="fig2",
        description=(
            "Fig. 2 — avg queuing time vs CAP-BP control period, mixed "
            "pattern, with the UTIL-BP reference level"
        ),
        build_specs=_build_specs,
        collect=_collect,
        render=render_fig2,
        defaults=dict(
            periods=PAPER_PERIODS,
            engine="micro",
            seed=1,
            segment_duration=3600.0,
        ),
    )
)


def run_fig2(
    periods: Sequence[float] = PAPER_PERIODS,
    engine: str = "micro",
    seed: int = 1,
    segment_duration: float = 3600.0,
    pool: Optional[ExperimentPool] = None,
) -> Fig2Result:
    """Regenerate Fig. 2.

    Parameters
    ----------
    periods:
        CAP-BP control periods to sweep.
    engine / seed:
        As elsewhere.
    segment_duration:
        Mixed-pattern segment length (paper: 3600 s -> 4 h total).
        Benchmarks shrink it.
    pool:
        Orchestration pool to execute the sweep on; defaults to a
        serial in-process pool.
    """
    return run_experiment(
        FIG2,
        pool=pool,
        periods=tuple(periods),
        engine=engine,
        seed=seed,
        segment_duration=segment_duration,
    )


def main() -> None:
    """Full reproduction at paper horizons on the micro engine."""
    print(render_fig2(run_fig2()))


if __name__ == "__main__":
    main()
