"""Stability-region study (Sec. IV-Q1).

Back-pressure control's classical guarantee is *maximum stability*
(bounded queues for any demand inside the capacity region) under
idealized assumptions.  UTIL-BP knowingly gives that idealized
guarantee up for utilization; this study measures what actually
happens: sweep a scale factor on every arrival rate and record, per
controller, when the network stops being able to drain what comes in.

A configuration counts as *stable* here when, at the end of the run,
(i) almost no vehicles are stuck outside a full entry road (backlog)
and (ii) the in-network vehicle count stays well below the network's
storage capacity — i.e. queues did not grow towards the capacity
bound for the whole horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.control.factory import make_network_controller
from repro.experiments.runner import build_engine
from repro.experiments.scenario import build_scenario
from repro.util.tables import render_table

__all__ = ["StabilityPoint", "run_stability_sweep", "render_stability", "main"]


@dataclass(frozen=True)
class StabilityPoint:
    """Outcome of one (controller, demand scale) run."""

    controller: str
    demand_scale: float
    average_queuing_time: float
    vehicles_in_network: int
    backlog: int
    network_capacity: int

    @property
    def stable(self) -> bool:
        """Bounded-queue proxy: no entry backlog, network < 50 % full."""
        return (
            self.backlog <= 5
            and self.vehicles_in_network < 0.5 * self.network_capacity
        )


def _run_point(
    controller: str,
    params: Optional[Dict[str, Any]],
    scale: float,
    pattern: str,
    seed: int,
    duration: float,
) -> StabilityPoint:
    scenario = build_scenario(pattern, seed=seed, demand_scale=scale)
    sim = build_engine(scenario, "meso")
    net_controller = make_network_controller(
        controller, scenario.network, **(params or {})
    )
    steps = int(duration)
    for _ in range(steps):
        sim.step(1.0, net_controller.decide(sim.observations()))
    sim.finalize()
    summary = sim.collector.summary(duration)
    return StabilityPoint(
        controller=controller,
        demand_scale=scale,
        average_queuing_time=summary.average_queuing_time,
        vehicles_in_network=sim.vehicles_in_network(),
        backlog=sim.backlog_size(),
        network_capacity=scenario.network.total_capacity(),
    )


def run_stability_sweep(
    scales: Sequence[float] = (0.6, 0.8, 1.0, 1.2, 1.4),
    controllers: Sequence = (
        ("util-bp", None),
        ("cap-bp", {"period": 18.0}),
    ),
    pattern: str = "II",
    seed: int = 1,
    duration: float = 1800.0,
) -> List[StabilityPoint]:
    """Sweep demand scales for each controller (uniform Pattern II)."""
    if not scales:
        raise ValueError("need at least one demand scale")
    points: List[StabilityPoint] = []
    for name, params in controllers:
        for scale in scales:
            points.append(
                _run_point(name, params, scale, pattern, seed, duration)
            )
    return points


def max_stable_scale(points: Sequence[StabilityPoint], controller: str) -> float:
    """Largest swept demand scale the controller kept stable (0 if none)."""
    stable = [
        p.demand_scale
        for p in points
        if p.controller == controller and p.stable
    ]
    return max(stable) if stable else 0.0


def render_stability(points: Sequence[StabilityPoint]) -> str:
    """ASCII table of the sweep."""
    rows = [
        (
            p.controller,
            f"{p.demand_scale:.1f}",
            f"{p.average_queuing_time:.1f}",
            p.vehicles_in_network,
            p.backlog,
            "stable" if p.stable else "UNSTABLE",
        )
        for p in points
    ]
    return render_table(
        (
            "controller",
            "demand scale",
            "avg queuing [s]",
            "in network",
            "backlog",
            "verdict",
        ),
        rows,
        title="Stability sweep (Sec. IV-Q1): demand scale vs queue boundedness",
    )


def main() -> None:
    points = run_stability_sweep()
    print(render_stability(points))
    for name in ("util-bp", "cap-bp"):
        print(f"max stable demand scale, {name}: {max_stable_scale(points, name):.1f}")


if __name__ == "__main__":
    main()
