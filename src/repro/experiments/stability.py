"""Stability-region study (Sec. IV-Q1).

Back-pressure control's classical guarantee is *maximum stability*
(bounded queues for any demand inside the capacity region) under
idealized assumptions.  UTIL-BP knowingly gives that idealized
guarantee up for utilization; this study measures what actually
happens: sweep a scale factor on every arrival rate and record, per
controller, when the network stops being able to drain what comes in.

A configuration counts as *stable* here when, at the end of the run,
(i) almost no vehicles are stuck outside a full entry road (backlog)
and (ii) the in-network vehicle count stays well below the network's
storage capacity — i.e. queues did not grow towards the capacity
bound for the whole horizon.

Declared as the :data:`STABILITY`
:class:`~repro.results.experiment.ExperimentDefinition` over the
(controller x demand scale) grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence

from repro.experiments.runner import RunResult
from repro.scenarios.core import build_scenario
from repro.orchestration import ExperimentPool, RunSpec
from repro.results.experiment import (
    ExperimentDefinition,
    register_experiment,
    run_experiment,
)
from repro.util.tables import render_table

__all__ = [
    "StabilityPoint",
    "STABILITY",
    "run_stability_sweep",
    "render_stability",
    "main",
]


@dataclass(frozen=True)
class StabilityPoint:
    """Outcome of one (controller, demand scale) run."""

    controller: str
    demand_scale: float
    average_queuing_time: float
    vehicles_in_network: int
    backlog: int
    network_capacity: int

    @property
    def stable(self) -> bool:
        """Bounded-queue proxy: no entry backlog, network < 50 % full."""
        return (
            self.backlog <= 5
            and self.vehicles_in_network < 0.5 * self.network_capacity
        )


def _cells(controllers: Sequence, scales: Sequence[float]) -> List:
    return [
        (name, params, scale)
        for name, params in controllers
        for scale in scales
    ]


def _build_specs(
    scales: Sequence[float],
    controllers: Sequence,
    pattern: str,
    seed: int,
    duration: float,
    engine: str,
) -> List[RunSpec]:
    if not scales:
        raise ValueError("need at least one demand scale")
    return [
        RunSpec(
            pattern=pattern,
            controller=name,
            controller_params=params or {},
            engine=engine,
            seed=seed,
            duration=duration,
            scenario_params={"demand_scale": float(scale)},
        )
        for name, params, scale in _cells(controllers, scales)
    ]


def _collect(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    params: Mapping[str, Any],
) -> List[StabilityPoint]:
    # Demand scaling leaves the road network itself untouched, so the
    # storage capacity is the same for every cell.
    capacity = build_scenario(
        params["pattern"], seed=params["seed"]
    ).network.total_capacity()
    return [
        StabilityPoint(
            controller=name,
            demand_scale=scale,
            average_queuing_time=result.average_queuing_time,
            vehicles_in_network=result.vehicles_in_network,
            backlog=result.backlog,
            network_capacity=capacity,
        )
        for (name, _, scale), result in zip(
            _cells(params["controllers"], params["scales"]), results
        )
    ]


STABILITY = register_experiment(
    ExperimentDefinition(
        name="stability",
        description=(
            "demand-scale stability sweep (Sec. IV-Q1): queue "
            "boundedness per controller as arrival rates scale up"
        ),
        build_specs=_build_specs,
        collect=_collect,
        render=lambda points: render_stability(points),
        defaults=dict(
            scales=(0.6, 0.8, 1.0, 1.2, 1.4),
            controllers=(
                ("util-bp", None),
                ("cap-bp", {"period": 18.0}),
            ),
            pattern="II",
            seed=1,
            duration=1800.0,
            engine="meso",
        ),
    )
)


def run_stability_sweep(
    scales: Sequence[float] = (0.6, 0.8, 1.0, 1.2, 1.4),
    controllers: Sequence = (
        ("util-bp", None),
        ("cap-bp", {"period": 18.0}),
    ),
    pattern: str = "II",
    seed: int = 1,
    duration: float = 1800.0,
    pool: Optional[ExperimentPool] = None,
) -> List[StabilityPoint]:
    """Sweep demand scales for each controller (uniform Pattern II).

    The whole (controller x scale) grid is submitted to the pool as one
    batch; terminal occupancy comes from the runner's
    ``vehicles_in_network`` / ``backlog`` result fields.
    """
    return run_experiment(
        STABILITY,
        pool=pool,
        scales=tuple(scales),
        controllers=tuple(controllers),
        pattern=pattern,
        seed=seed,
        duration=duration,
    )


def max_stable_scale(points: Sequence[StabilityPoint], controller: str) -> float:
    """Largest swept demand scale the controller kept stable (0 if none)."""
    stable = [
        p.demand_scale
        for p in points
        if p.controller == controller and p.stable
    ]
    return max(stable) if stable else 0.0


def render_stability(points: Sequence[StabilityPoint]) -> str:
    """ASCII table of the sweep."""
    rows = [
        (
            p.controller,
            f"{p.demand_scale:.1f}",
            f"{p.average_queuing_time:.1f}",
            p.vehicles_in_network,
            p.backlog,
            "stable" if p.stable else "UNSTABLE",
        )
        for p in points
    ]
    return render_table(
        (
            "controller",
            "demand scale",
            "avg queuing [s]",
            "in network",
            "backlog",
            "verdict",
        ),
        rows,
        title="Stability sweep (Sec. IV-Q1): demand scale vs queue boundedness",
    )


def main() -> None:
    """Run the demand-scale sweep and print its table (CLI shim)."""
    points = run_stability_sweep()
    print(render_stability(points))
    for name in ("util-bp", "cap-bp"):
        print(f"max stable demand scale, {name}: {max_stable_scale(points, name):.1f}")


if __name__ == "__main__":
    main()
