"""Figures 3 and 4 — applied control phases at the top-right intersection.

The paper plots, for Pattern I over 2000 s, the phase applied at the
north-eastern (top-right) intersection under CAP-BP at its optimal
period (Fig. 3: rigid fixed-length slots) and under UTIL-BP (Fig. 4:
varying-length phases, with longer periods for phases 1 and 2 because
the heavy north/south traffic goes mostly straight or turns).

This driver records both traces and derives the statistics that make
the comparison quantitative: mean control-phase length, switch count
and per-phase green share.  It is declared as the :data:`FIG34`
:class:`~repro.results.experiment.ExperimentDefinition`; its two cells
are shared (via a common pool/store) with any other driver requesting
the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.runner import RunResult
from repro.metrics.traces import PhaseTrace
from repro.orchestration import ExperimentPool, RunSpec
from repro.results.experiment import (
    ExperimentDefinition,
    register_experiment,
    run_experiment,
)
from repro.util.series import render_series
from repro.util.tables import render_table

__all__ = [
    "Fig34Result",
    "FIG34",
    "TOP_RIGHT_NODE",
    "run_fig34",
    "render_fig34",
    "main",
]

#: The north-eastern (top-right) intersection of the 3x3 grid.
TOP_RIGHT_NODE = "J02"

#: Horizon the paper plots (s).
PAPER_HORIZON = 2000.0


@dataclass(frozen=True)
class Fig34Result:
    """Phase traces of both controllers at the top-right intersection."""

    cap_bp_trace: PhaseTrace
    util_bp_trace: PhaseTrace
    duration: float
    cap_bp_period: float

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Mean phase length, switches and per-phase shares per controller."""
        out: Dict[str, Dict[str, float]] = {}
        for name, trace in (
            ("cap-bp", self.cap_bp_trace),
            ("util-bp", self.util_bp_trace),
        ):
            durations = trace.phase_durations(self.duration)
            total = sum(durations.values()) or 1.0
            row: Dict[str, float] = {
                "mean_phase_length": trace.mean_control_phase_length(
                    self.duration
                ),
                "switches": float(trace.switch_count()),
            }
            for phase in range(0, 5):
                row[f"share_c{phase}"] = durations.get(phase, 0.0) / total
            out[name] = row
        return out


def render_fig34(result: Fig34Result) -> str:
    """ASCII staircase charts plus the comparison statistics."""
    fig3 = render_series(
        [result.cap_bp_trace.as_series(result.duration)],
        height=8,
        title=(
            f"Fig. 3 — applied phases, top-right intersection, CAP-BP "
            f"(period {result.cap_bp_period:.0f} s), Pattern I"
        ),
    )
    fig4 = render_series(
        [result.util_bp_trace.as_series(result.duration)],
        height=8,
        title="Fig. 4 — applied phases, top-right intersection, UTIL-BP, Pattern I",
    )
    stats = result.stats()
    rows = []
    for name, row in stats.items():
        rows.append(
            (
                name,
                f"{row['mean_phase_length']:.1f}",
                int(row["switches"]),
                f"{row['share_c0']:.2f}",
                f"{row['share_c1']:.2f}",
                f"{row['share_c2']:.2f}",
                f"{row['share_c3']:.2f}",
                f"{row['share_c4']:.2f}",
            )
        )
    table = render_table(
        (
            "controller",
            "mean phase [s]",
            "switches",
            "amber",
            "c1",
            "c2",
            "c3",
            "c4",
        ),
        rows,
        title="Phase statistics (shares of total time)",
    )
    return "\n\n".join([fig3, fig4, table])


def _build_specs(
    engine: str,
    seed: int,
    duration: float,
    cap_bp_period: float,
    node_id: str,
) -> List[RunSpec]:
    return [
        RunSpec(
            pattern="I",
            controller="cap-bp",
            controller_params={"period": cap_bp_period},
            engine=engine,
            seed=seed,
            duration=duration,
            record_phases=(node_id,),
        ),
        RunSpec(
            pattern="I",
            controller="util-bp",
            engine=engine,
            seed=seed,
            duration=duration,
            record_phases=(node_id,),
        ),
    ]


def _collect(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    params: Mapping[str, Any],
) -> Fig34Result:
    cap, util = results
    node_id = params["node_id"]
    return Fig34Result(
        cap_bp_trace=cap.phase_traces[node_id],
        util_bp_trace=util.phase_traces[node_id],
        duration=params["duration"],
        cap_bp_period=params["cap_bp_period"],
    )


FIG34 = register_experiment(
    ExperimentDefinition(
        name="fig34",
        description=(
            "Figs. 3-4 — applied-phase traces at the top-right "
            "intersection, CAP-BP vs UTIL-BP, Pattern I"
        ),
        build_specs=_build_specs,
        collect=_collect,
        render=render_fig34,
        defaults=dict(
            engine="micro",
            seed=1,
            duration=PAPER_HORIZON,
            cap_bp_period=18.0,
            node_id=TOP_RIGHT_NODE,
        ),
    )
)


def run_fig34(
    engine: str = "micro",
    seed: int = 1,
    duration: float = PAPER_HORIZON,
    cap_bp_period: float = 18.0,
    node_id: str = TOP_RIGHT_NODE,
    pool: Optional[ExperimentPool] = None,
) -> Fig34Result:
    """Regenerate the data behind Figs. 3 and 4.

    ``cap_bp_period`` defaults to the paper's optimal period for
    Pattern I (18 s, Table III).  Both controller runs are submitted to
    the pool as one batch.
    """
    return run_experiment(
        FIG34,
        pool=pool,
        engine=engine,
        seed=seed,
        duration=duration,
        cap_bp_period=cap_bp_period,
        node_id=node_id,
    )


def main() -> None:
    """Full reproduction at the paper's 2000 s horizon."""
    print(render_fig34(run_fig34()))


if __name__ == "__main__":
    main()
