"""Backwards-compatibility shim: the scenario layer moved.

The :class:`Scenario` object and :func:`build_scenario` now live in
:mod:`repro.scenarios` (alongside the catalog of tidal/surge/incident
workloads).  Import from there in new code; this module keeps the
historical ``repro.experiments.scenario`` names working.
"""

from __future__ import annotations

from repro.scenarios.core import (  # noqa: F401  (re-exports)
    DEFAULT_DURATIONS,
    Scenario,
    build_scenario,
    entry_side as _entry_side,
)

__all__ = ["Scenario", "build_scenario", "DEFAULT_DURATIONS"]
