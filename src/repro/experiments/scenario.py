"""Deprecated shim: the scenario layer moved to :mod:`repro.scenarios`.

The :class:`Scenario` object and :func:`build_scenario` now live in
:mod:`repro.scenarios.core` (alongside the catalog of tidal/surge/
incident workloads), and every internal import has been re-pointed
there.  Importing this module keeps the historical
``repro.experiments.scenario`` names working but emits a
:class:`DeprecationWarning`; migrate with::

    from repro.experiments.scenario import Scenario, build_scenario   # old
    from repro.scenarios.core import Scenario, build_scenario         # new

(or ``from repro.scenarios import ...`` for the catalog helpers).
"""

from __future__ import annotations

import warnings

from repro.scenarios.core import (  # noqa: F401  (re-exports)
    DEFAULT_DURATIONS,
    Scenario,
    build_scenario,
    entry_side as _entry_side,
)

warnings.warn(
    "repro.experiments.scenario is deprecated and will be removed in "
    "repro 1.2 (no earlier than 2026-12-01); import from "
    "repro.scenarios.core instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["Scenario", "build_scenario", "DEFAULT_DURATIONS"]
