"""Backwards-compatibility shim: the pattern tables moved.

Tables I and II (turning probabilities and per-side arrival rates)
now live in :mod:`repro.scenarios.patterns`, next to the rest of the
scenario library.  Import from there in new code.
"""

from __future__ import annotations

from repro.scenarios.patterns import (  # noqa: F401  (re-exports)
    MIXED_SEGMENT_DURATION,
    PATTERN_NAMES,
    PATTERNS,
    TURNING,
    arrival_schedule,
    interarrival_times,
    pattern_description,
)

__all__ = [
    "TURNING",
    "PATTERNS",
    "PATTERN_NAMES",
    "MIXED_SEGMENT_DURATION",
    "interarrival_times",
    "arrival_schedule",
    "pattern_description",
]
