"""The closed control loop: scenario + controller + engine -> results.

This is the only place where the cyber part (controllers) and the
physical part (simulators) touch: every mini-slot the runner reads the
queue observations, asks each intersection's controller for a phase,
and applies the decisions to the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.control.factory import make_network_controller
from repro.experiments.scenario import Scenario
from repro.meso.simulator import MesoSimulator
from repro.metrics.collector import Summary
from repro.metrics.traces import PhaseTrace, QueueTrace
from repro.metrics.utilization import UtilizationTracker
from repro.util.validation import check_positive

__all__ = ["RunResult", "run_scenario", "build_engine"]

#: Engines selectable by name.  The microscopic engine registers itself
#: on import (see :mod:`repro.micro.simulator`) to avoid a hard import
#: cost for meso-only users.
_ENGINE_BUILDERS: Dict[str, Any] = {}


def register_engine(name: str, builder: Any) -> None:
    """Register an engine constructor (``builder(scenario) -> engine``)."""
    _ENGINE_BUILDERS[name] = builder


def _build_meso(scenario: Scenario) -> MesoSimulator:
    return MesoSimulator(
        network=scenario.network,
        demand=scenario.demand,
        turning=scenario.turning,
        seed=scenario.seed,
    )


register_engine("meso", _build_meso)


def build_engine(scenario: Scenario, engine: str = "meso"):
    """Instantiate a simulation engine for a scenario by name."""
    if engine == "micro" and "micro" not in _ENGINE_BUILDERS:
        # Importing registers the builder.
        import repro.micro.simulator  # noqa: F401
    try:
        builder = _ENGINE_BUILDERS[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; known: {sorted(_ENGINE_BUILDERS)}"
        )
    return builder(scenario)


@dataclass
class RunResult:
    """Everything measured during one closed-loop run."""

    scenario_name: str
    controller_name: str
    duration: float
    summary: Summary
    phase_traces: Dict[str, PhaseTrace] = field(default_factory=dict)
    queue_traces: Dict[Tuple[str, ...], QueueTrace] = field(default_factory=dict)
    utilization: Dict[str, UtilizationTracker] = field(default_factory=dict)

    @property
    def average_queuing_time(self) -> float:
        """The paper's headline metric for this run."""
        return self.summary.average_queuing_time

    def network_utilization(self) -> UtilizationTracker:
        """All intersections' utilization trackers merged."""
        trackers = list(self.utilization.values())
        if not trackers:
            return UtilizationTracker(node_id="none")
        merged = trackers[0]
        for tracker in trackers[1:]:
            merged = merged.merged(tracker)
        return merged


def run_scenario(
    scenario: Scenario,
    controller: str = "util-bp",
    controller_params: Optional[Dict[str, Any]] = None,
    duration: Optional[float] = None,
    engine: str = "meso",
    mini_slot: float = 1.0,
    record_phases: Sequence[str] = (),
    record_queues: Sequence[Tuple[str, str]] = (),
    queue_sample_interval: float = 5.0,
) -> RunResult:
    """Run a scenario under a controller and collect the results.

    Parameters
    ----------
    scenario:
        The scenario to simulate.
    controller:
        Controller name (see :data:`repro.control.factory.CONTROLLER_NAMES`).
    controller_params:
        Keyword parameters for the controller (e.g. ``period=16`` for
        the fixed-slot baselines).
    duration:
        Simulation horizon in seconds; defaults to the scenario's.
    engine:
        ``"meso"`` or ``"micro"``.
    mini_slot:
        The control mini-slot ``Delta_t`` (s); controllers are invoked
        once per mini-slot.
    record_phases:
        Node ids whose applied-phase traces should be recorded
        (Figs. 3-4).
    record_queues:
        ``(node_id, in_road)`` pairs whose total stop-line queue should
        be sampled every ``queue_sample_interval`` seconds (Fig. 5).
    """
    check_positive("mini_slot", mini_slot)
    check_positive("queue_sample_interval", queue_sample_interval)
    horizon = scenario.default_duration if duration is None else float(duration)
    check_positive("duration", horizon)

    sim = build_engine(scenario, engine)
    network_controller = make_network_controller(
        controller, scenario.network, **(controller_params or {})
    )

    phase_traces = {node_id: PhaseTrace(node_id) for node_id in record_phases}
    queue_traces = {
        (node_id, road): QueueTrace(road_id=road)
        for node_id, road in record_queues
    }
    next_queue_sample = 0.0

    steps = int(round(horizon / mini_slot))
    for _ in range(steps):
        now = sim.time
        observations = sim.observations()
        decisions = network_controller.decide(observations)
        for node_id, trace in phase_traces.items():
            trace.record(now, decisions[node_id])
        if now >= next_queue_sample:
            for (node_id, road), trace in queue_traces.items():
                trace.sample(now, sim.incoming_queue_total(road))
            next_queue_sample = now + queue_sample_interval
        sim.step(mini_slot, decisions)

    sim.finalize()
    return RunResult(
        scenario_name=scenario.name,
        controller_name=controller,
        duration=horizon,
        summary=sim.collector.summary(horizon),
        phase_traces=phase_traces,
        queue_traces=queue_traces,
        utilization=dict(sim.utilization),
    )
