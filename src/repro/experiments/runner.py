"""The closed control loop: scenario + controller + engine -> results.

This is the only place where the cyber part (controllers) and the
physical part (simulators) touch: every mini-slot the runner reads the
queue observations, asks each intersection's controller for a phase,
and applies the decisions to the engine.

The engine contract itself (``observations / step / finalize / time /
collector / utilization``) and the name-based engine registry live in
:mod:`repro.core.engine`; :func:`build_engine` and
:func:`register_engine` are re-exported here for backwards
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Sequence, Tuple

# Re-exported for backwards compatibility: the registry moved to the
# core layer so engines can register without importing experiments.
from repro.core.engine import (
    BatchEngine,
    SimulationEngine,
    build_batch_controller,
    build_batch_engine,
    build_engine,
    has_batch_controller,
    register_engine,
)
from repro.control.factory import make_network_controller
from repro.scenarios.core import Scenario
from repro.metrics.collector import Summary
from repro.metrics.traces import PhaseTrace, QueueTrace, next_grid_sample
from repro.metrics.utilization import UtilizationTracker
from repro.model.phases import TRANSITION_PHASE_INDEX
from repro.util.logging import get_logger
from repro.util.validation import check_positive

__all__ = [
    "RunConfig",
    "RunResult",
    "run_scenario",
    "run_scenario_batch",
    "build_engine",
    "register_engine",
]


@dataclass(frozen=True)
class RunConfig:
    """The run knobs shared by :func:`run_scenario` and
    :func:`run_scenario_batch`.

    Both runners accept exactly these fields, keyword-only (the two
    signatures had drifted apart; this is now the single source of
    truth).  Unknown knobs and invalid values are rejected here,
    *before* any engine is built — mirroring the eager scenario-param
    validation — so a typo fails in milliseconds instead of after an
    expensive batch-engine construction.

    The only asymmetry between the runners is the default ``engine``:
    ``"meso"`` for single runs, ``"meso-vec"`` for batches.
    """

    controller: str = "util-bp"
    controller_params: Optional[Dict[str, Any]] = None
    duration: Optional[float] = None
    engine: str = "meso"
    mini_slot: float = 1.0
    record_phases: Sequence[str] = ()
    record_queues: Sequence[Tuple[str, str]] = ()
    queue_sample_interval: float = 5.0

    def __post_init__(self) -> None:
        check_positive("mini_slot", self.mini_slot)
        check_positive("queue_sample_interval", self.queue_sample_interval)
        if self.duration is not None:
            check_positive("duration", float(self.duration))

    @classmethod
    def resolve(cls, default_engine: str, knobs: Dict[str, Any]) -> "RunConfig":
        """Build a config from a runner's ``**knobs``, eagerly validated.

        ``config=<RunConfig>`` passes a ready-made config through (the
        orchestration layer's path — :meth:`RunSpec.run_config`); it
        cannot be combined with loose knobs, so a call site is always
        unambiguously on one surface or the other.
        """
        config = knobs.pop("config", None)
        if config is not None:
            if not isinstance(config, cls):
                raise TypeError(
                    f"config must be a {cls.__name__}, got {type(config).__name__}"
                )
            if knobs:
                raise TypeError(
                    f"config= cannot be combined with loose run knob(s) "
                    f"{sorted(knobs)}"
                )
            return config
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(knobs) - valid)
        if unknown:
            raise TypeError(
                f"unknown run knob(s) {unknown}; valid knobs: {sorted(valid)}"
            )
        knobs.setdefault("engine", default_engine)
        return cls(**knobs)

    def horizon(self, scenario: Scenario) -> float:
        """The simulation horizon: explicit ``duration`` or the scenario's."""
        if self.duration is None:
            return scenario.default_duration
        return float(self.duration)


@dataclass
class RunResult:
    """Everything measured during one closed-loop run."""

    scenario_name: str
    controller_name: str
    duration: float
    summary: Summary
    phase_traces: Dict[str, PhaseTrace] = field(default_factory=dict)
    queue_traces: Dict[Tuple[str, ...], QueueTrace] = field(default_factory=dict)
    utilization: Dict[str, UtilizationTracker] = field(default_factory=dict)
    vehicles_in_network: int = 0
    backlog: int = 0

    @property
    def average_queuing_time(self) -> float:
        """The paper's headline metric for this run."""
        return self.summary.average_queuing_time

    def network_utilization(self) -> UtilizationTracker:
        """All intersections' utilization trackers merged."""
        trackers = list(self.utilization.values())
        if not trackers:
            return UtilizationTracker(node_id="none")
        merged = trackers[0]
        for tracker in trackers[1:]:
            merged = merged.merged(tracker)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view (crosses process/disk boundaries)."""
        return {
            "scenario_name": self.scenario_name,
            "controller_name": self.controller_name,
            "duration": self.duration,
            "summary": self.summary.to_dict(),
            "phase_traces": {
                node_id: trace.to_dict()
                for node_id, trace in self.phase_traces.items()
            },
            # JSON keys must be strings; the (node, road) key is kept
            # inside each entry instead.
            "queue_traces": [
                {"node_id": node_id, "road_id": road_id, "trace": trace.to_dict()}
                for (node_id, road_id), trace in self.queue_traces.items()
            ],
            "utilization": {
                node_id: tracker.to_dict()
                for node_id, tracker in self.utilization.items()
            },
            "vehicles_in_network": self.vehicles_in_network,
            "backlog": self.backlog,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        return cls(
            scenario_name=payload["scenario_name"],
            controller_name=payload["controller_name"],
            duration=float(payload["duration"]),
            summary=Summary.from_dict(payload["summary"]),
            phase_traces={
                node_id: PhaseTrace.from_dict(data)
                for node_id, data in payload.get("phase_traces", {}).items()
            },
            queue_traces={
                (entry["node_id"], entry["road_id"]): QueueTrace.from_dict(
                    entry["trace"]
                )
                for entry in payload.get("queue_traces", [])
            },
            utilization={
                node_id: UtilizationTracker.from_dict(data)
                for node_id, data in payload.get("utilization", {}).items()
            },
            vehicles_in_network=int(payload.get("vehicles_in_network", 0)),
            backlog=int(payload.get("backlog", 0)),
        )


def run_scenario(scenario: Scenario, **knobs: Any) -> RunResult:
    """Run a scenario under a controller and collect the results.

    All knobs are keyword-only and shared with
    :func:`run_scenario_batch` — see :class:`RunConfig` for the full
    set, defaults and validation.  The ones used most:

    Parameters
    ----------
    scenario:
        The scenario to simulate (the only positional argument).
    controller:
        Controller name (see :data:`repro.control.factory.CONTROLLER_NAMES`).
    controller_params:
        Keyword parameters for the controller (e.g. ``period=16`` for
        the fixed-slot baselines).
    duration:
        Simulation horizon in seconds; defaults to the scenario's.
    engine:
        An engine name from :func:`repro.core.engine.engine_names`
        (default ``"meso"``).
    mini_slot:
        The control mini-slot ``Delta_t`` (s); controllers are invoked
        once per mini-slot.
    record_phases:
        Node ids whose applied-phase traces should be recorded
        (Figs. 3-4).
    record_queues:
        ``(node_id, in_road)`` pairs whose total stop-line queue should
        be sampled every ``queue_sample_interval`` seconds (Fig. 5).
    """
    config = RunConfig.resolve("meso", knobs)
    horizon = config.horizon(scenario)
    check_positive("duration", horizon)

    # Controller first: its factory validates the name and parameters,
    # so a bad controller spec fails before the engine is built.
    network_controller = make_network_controller(
        config.controller, scenario.network, **(config.controller_params or {})
    )
    sim: SimulationEngine = build_engine(scenario, config.engine)

    mini_slot = config.mini_slot
    queue_sample_interval = config.queue_sample_interval
    phase_traces = {
        node_id: PhaseTrace(node_id) for node_id in config.record_phases
    }
    queue_traces = {
        (node_id, road): QueueTrace(road_id=road)
        for node_id, road in config.record_queues
    }
    next_queue_sample = 0.0

    steps = int(round(horizon / mini_slot))
    for _ in range(steps):
        now = sim.time
        observations = sim.observations()
        decisions = network_controller.decide(observations)
        for node_id, trace in phase_traces.items():
            # The simulator treats intersections missing from the
            # decision map as showing amber; record the same.
            trace.record(
                now, decisions.get(node_id, TRANSITION_PHASE_INDEX)
            )
        if queue_traces and now >= next_queue_sample:
            for (node_id, road), trace in queue_traces.items():
                trace.sample(now, sim.incoming_queue_total(road))
            next_queue_sample = next_grid_sample(now, queue_sample_interval)
        sim.step(mini_slot, decisions)

    sim.finalize()
    return RunResult(
        scenario_name=scenario.name,
        controller_name=config.controller,
        duration=horizon,
        summary=sim.collector.summary(horizon),
        phase_traces=phase_traces,
        queue_traces=queue_traces,
        utilization=dict(sim.utilization),
        vehicles_in_network=sim.vehicles_in_network(),
        backlog=sim.backlog_size(),
    )


def run_scenario_batch(scenarios: Sequence[Scenario], **knobs: Any) -> list:
    """Run many replications of one scenario shape in a single batch engine.

    All knobs are keyword-only and identical to :func:`run_scenario`'s
    (see :class:`RunConfig`); only the default ``engine`` differs
    (``"meso-vec"``).  Unknown knobs and bad controller specs are
    rejected before the batch engine is built.

    ``scenarios`` share the workload shape (same network, demand and
    turning model — typically one :class:`Scenario` per seed); each
    replication is decided exactly as :func:`run_scenario` would decide
    it alone.  Returns one :class:`RunResult` per scenario, in order,
    and — by the batch engines' parity contract — each result equals
    the single-run result for that scenario and engine.

    When both the controller and the engine support it, the closed loop
    runs *batched*: one
    :class:`~repro.control.batch.BatchNetworkController` computes every
    replication's decisions on the engine's internal arrays (the
    ``controller_arrays`` façade), skipping the per-replication
    ``QueueObservation`` construction and Python controller loop.  The
    batched kernel is decision-for-decision identical to the serial
    controllers, so results do not depend on which path ran.  Anything
    else — an unknown controller, an engine without the array façade —
    falls back to per-replication controllers with a one-line notice on
    stderr, so a silently de-vectorized sweep is visible in its logs.
    """
    config = RunConfig.resolve("meso-vec", knobs)
    if not scenarios:
        return []
    first = scenarios[0]
    horizon = config.horizon(first)
    check_positive("duration", horizon)
    controller = config.controller
    controller_params = config.controller_params
    mini_slot = config.mini_slot
    record_phases = config.record_phases
    record_queues = config.record_queues
    queue_sample_interval = config.queue_sample_interval

    # Validate the controller spec (name + parameters) before paying
    # for the batch engine: the probe controller is discarded, but its
    # construction runs the same factory checks the real ones will.
    make_network_controller(controller, first.network, **(controller_params or {}))

    sim: BatchEngine = build_batch_engine(scenarios, config.engine)
    batch_controller = None
    if has_batch_controller(controller) and hasattr(sim, "controller_arrays"):
        candidate = build_batch_controller(
            controller,
            first.network,
            len(scenarios),
            **(controller_params or {}),
        )
        layout = getattr(sim, "movement_layout", None)
        if layout == (candidate.node_ids, candidate.movement_keys):
            batch_controller = candidate
    controllers = []
    if batch_controller is None:
        if controller != "fixed-time":
            # fixed-time is open-loop; its per-replication instances
            # produce one shared phase pattern the engine compresses,
            # so only closed-loop fallbacks are worth flagging.
            get_logger("runner").warning(
                "batch_controller_fallback",
                message=(
                    f"closed-loop batch of {len(scenarios)} replications "
                    f"falling back to per-replication {controller!r} "
                    f"controllers (no batched implementation)"
                ),
                controller=controller,
                engine=config.engine,
                replications=len(scenarios),
            )
        controllers = [
            make_network_controller(
                controller, first.network, **(controller_params or {})
            )
            for _ in scenarios
        ]
    node_column = (
        {node_id: i for i, node_id in enumerate(batch_controller.node_ids)}
        if batch_controller is not None and record_phases
        else {}
    )
    phase_traces = [
        {node_id: PhaseTrace(node_id) for node_id in record_phases}
        for _ in scenarios
    ]
    queue_traces = [
        {
            (node_id, road): QueueTrace(road_id=road)
            for node_id, road in record_queues
        }
        for _ in scenarios
    ]
    next_queue_sample = 0.0

    steps = int(round(horizon / mini_slot))
    for _ in range(steps):
        now = sim.time
        if batch_controller is not None:
            decision_array = batch_controller.decide_batch(
                sim.controller_arrays()
            )
            if record_phases:
                for b, traces in enumerate(phase_traces):
                    for node_id, trace in traces.items():
                        column = node_column.get(node_id)
                        trace.record(
                            now,
                            TRANSITION_PHASE_INDEX
                            if column is None
                            else int(decision_array[b, column]),
                        )
            decisions = decision_array
        else:
            observations = sim.observations()
            decisions = [
                network_controller.decide(obs)
                for network_controller, obs in zip(controllers, observations)
            ]
            for rep_decisions, traces in zip(decisions, phase_traces):
                for node_id, trace in traces.items():
                    trace.record(
                        now,
                        rep_decisions.get(node_id, TRANSITION_PHASE_INDEX),
                    )
        if record_queues and now >= next_queue_sample:
            road_totals = {
                road: sim.incoming_queue_total(road)
                for road in {road for _, road in record_queues}
            }
            for b, traces in enumerate(queue_traces):
                for (node_id, road), trace in traces.items():
                    trace.sample(now, int(road_totals[road][b]))
            next_queue_sample = next_grid_sample(now, queue_sample_interval)
        sim.step(mini_slot, decisions)

    sim.finalize()
    summaries = sim.summaries(horizon)
    in_network = sim.vehicles_in_network()
    backlog = sim.backlog_size()
    return [
        RunResult(
            scenario_name=scenario.name,
            controller_name=controller,
            duration=horizon,
            summary=summaries[b],
            phase_traces=phase_traces[b],
            queue_traces=queue_traces[b],
            utilization=sim.utilization_of(b),
            vehicles_in_network=int(in_network[b]),
            backlog=int(backlog[b]),
        )
        for b, scenario in enumerate(scenarios)
    ]
