"""Ablations of the design choices the paper calls out.

Sec. III/IV motivate several ingredients of UTIL-BP; each ablation here
removes or perturbs one of them so benchmarks can quantify its
contribution:

* ``transition-duration`` — amber length sweep: longer transitions
  penalize frequent switching, the reason the keep-phase mechanism
  exists.
* ``alpha-beta-order`` — the paper mandates ``beta < alpha < 0`` but
  notes the reverse is admissible; compare both orders.
* ``keep-margin`` — relax the Eq. 12 threshold (serve negative pressure
  differences before considering a switch).
* ``mini-slot`` — coarser monitoring intervals degrade the
  varying-length-phase mechanism towards fixed slots.
* ``controller-family`` — UTIL-BP vs CAP-BP vs original BP vs
  fixed-time under identical demand (the per-movement pressure and
  special cases are what separate UTIL-BP from original BP).

All studies run through the single :data:`ABLATION_EXPERIMENT`
:class:`~repro.results.experiment.ExperimentDefinition`, parameterized
by study name (``mini-slot`` varies the runner's cadence rather than a
controller parameter, which the definition's spec builder handles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.runner import RunResult
from repro.orchestration import ExperimentPool, RunSpec
from repro.results.experiment import (
    ExperimentDefinition,
    register_experiment,
    run_experiment,
)
from repro.util.tables import render_table

__all__ = [
    "AblationPoint",
    "ABLATION_EXPERIMENT",
    "run_ablation",
    "ABLATIONS",
    "render_ablation",
    "main",
]


@dataclass(frozen=True)
class AblationPoint:
    """One configuration of an ablation study and its outcome."""

    study: str
    label: str
    controller: str
    params: Dict[str, Any]
    average_queuing_time: float
    amber_share: float


#: study name -> list of (label, controller, params).
ABLATIONS: Dict[str, List] = {
    "transition-duration": [
        (f"amber {d:.0f}s", "util-bp", {"transition_duration": float(d)})
        for d in (2, 4, 6, 8)
    ],
    "alpha-beta-order": [
        ("beta < alpha (paper)", "util-bp", {"alpha": -1.0, "beta": -2.0}),
        ("alpha < beta (reversed)", "util-bp", {"alpha": -2.0, "beta": -1.0}),
    ],
    "keep-margin": [
        (f"margin {m:.0f}", "util-bp", {"keep_margin": float(m)})
        for m in (0, 2, 5, 10)
    ],
    # "mini-slot" varies the runner's cadence, not a controller
    # parameter; the spec builder special-cases it.  Listed for
    # discovery.
    "mini-slot": [],
    "controller-family": [
        ("UTIL-BP (proposed)", "util-bp", {}),
        ("CAP-BP @ 18s", "cap-bp", {"period": 18.0}),
        ("original BP @ 18s", "original-bp", {"period": 18.0}),
        ("fixed-time @ 18s", "fixed-time", {"period": 18.0}),
    ],
}


def _configurations(study: str) -> List:
    try:
        return ABLATIONS[study]
    except KeyError:
        raise ValueError(
            f"unknown ablation {study!r}; known: {sorted(ABLATIONS)}"
        )


def _build_specs(
    study: str,
    pattern: str,
    seed: int,
    duration: float,
    engine: str,
    mini_slots: Sequence[float],
) -> List[RunSpec]:
    if study == "mini-slot":
        return [
            RunSpec(
                pattern=pattern,
                controller="util-bp",
                engine=engine,
                seed=seed,
                duration=duration,
                mini_slot=float(m),
            )
            for m in mini_slots
        ]
    return [
        RunSpec(
            pattern=pattern,
            controller=controller,
            controller_params=dict(params),
            engine=engine,
            seed=seed,
            duration=duration,
        )
        for _, controller, params in _configurations(study)
    ]


def _point(
    study: str,
    label: str,
    controller: str,
    params: Dict[str, Any],
    result: RunResult,
) -> AblationPoint:
    return AblationPoint(
        study=study,
        label=label,
        controller=controller,
        params=params,
        average_queuing_time=result.average_queuing_time,
        amber_share=result.network_utilization().amber_share,
    )


def _collect(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    params: Mapping[str, Any],
) -> List[AblationPoint]:
    study = params["study"]
    if study == "mini-slot":
        return [
            _point(
                study,
                f"mini-slot {m:.0f}s",
                "util-bp",
                {"mini_slot": float(m)},
                result,
            )
            for m, result in zip(params["mini_slots"], results)
        ]
    return [
        _point(study, label, controller, dict(config_params), result)
        for (label, controller, config_params), result in zip(
            _configurations(study), results
        )
    ]


ABLATION_EXPERIMENT = register_experiment(
    ExperimentDefinition(
        name="ablations",
        description=(
            "design-choice ablation studies (transition duration, "
            "alpha/beta order, keep margin, mini-slot cadence, "
            "controller family)"
        ),
        build_specs=_build_specs,
        collect=_collect,
        render=lambda points: render_ablation(points),
        defaults=dict(
            study="controller-family",
            pattern="I",
            seed=1,
            duration=1800.0,
            engine="meso",
            mini_slots=(1.0, 2.0, 5.0),
        ),
    )
)


def run_ablation(
    study: str,
    pattern: str = "I",
    seed: int = 1,
    duration: float = 1800.0,
    engine: str = "meso",
    pool: Optional[ExperimentPool] = None,
) -> List[AblationPoint]:
    """Run one named ablation study; see :data:`ABLATIONS` for names.

    All configurations of the study are submitted to the pool as one
    batch, so studies parallelize across workers.
    """
    return run_experiment(
        ABLATION_EXPERIMENT,
        pool=pool,
        study=study,
        pattern=pattern,
        seed=seed,
        duration=duration,
        engine=engine,
    )


def run_mini_slot_ablation(
    pattern: str = "I",
    seed: int = 1,
    duration: float = 1800.0,
    engine: str = "meso",
    mini_slots: Sequence[float] = (1.0, 2.0, 5.0),
    pool: Optional[ExperimentPool] = None,
) -> List[AblationPoint]:
    """The mini-slot study with an explicit cadence grid."""
    return run_experiment(
        ABLATION_EXPERIMENT,
        pool=pool,
        study="mini-slot",
        pattern=pattern,
        seed=seed,
        duration=duration,
        engine=engine,
        mini_slots=tuple(float(m) for m in mini_slots),
    )


def render_ablation(points: Sequence[AblationPoint]) -> str:
    """ASCII table of one study's outcomes."""
    if not points:
        return "(no ablation points)"
    rows = [
        (
            point.label,
            point.controller,
            f"{point.average_queuing_time:.2f}",
            f"{point.amber_share:.3f}",
        )
        for point in points
    ]
    return render_table(
        ("configuration", "controller", "avg queuing [s]", "amber share"),
        rows,
        title=f"Ablation: {points[0].study}",
    )


def main() -> None:
    """Run every ablation study on the meso engine and print tables."""
    pool = ExperimentPool()
    for study in ABLATIONS:
        print(render_ablation(run_ablation(study, pool=pool)))
        print()


if __name__ == "__main__":
    main()
