"""Figure 5 — queue length at the east incoming road, top-right node.

The paper plots the queue length of the incoming road from the east at
the top-right intersection over 2000 s of Pattern I, for both
controllers; UTIL-BP's queue stays shorter than CAP-BP's.  This driver
records the same trace (sampled stop-line queue, Eq. 1 totals) and is
declared as the :data:`FIG5`
:class:`~repro.results.experiment.ExperimentDefinition`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence

from repro.experiments.fig34 import PAPER_HORIZON, TOP_RIGHT_NODE
from repro.experiments.runner import RunResult
from repro.metrics.traces import QueueTrace
from repro.model.grid import entry_road_id
from repro.model.geometry import Direction
from repro.orchestration import ExperimentPool, RunSpec
from repro.results.experiment import (
    ExperimentDefinition,
    register_experiment,
    run_experiment,
)
from repro.util.series import render_series

__all__ = ["Fig5Result", "FIG5", "EAST_IN_ROAD", "run_fig5", "render_fig5", "main"]

#: The incoming road from the east at the top-right intersection.
EAST_IN_ROAD = entry_road_id(Direction.E, TOP_RIGHT_NODE)


@dataclass(frozen=True)
class Fig5Result:
    """Queue traces of both controllers at the east incoming road."""

    cap_bp_trace: QueueTrace
    util_bp_trace: QueueTrace
    duration: float

    @property
    def util_mean_shorter(self) -> bool:
        """The paper's qualitative claim for this figure."""
        return self.util_bp_trace.mean() < self.cap_bp_trace.mean()


def render_fig5(result: Fig5Result) -> str:
    """ASCII chart plus the mean/max comparison."""
    chart = render_series(
        [result.cap_bp_trace.series, result.util_bp_trace.series],
        title=(
            "Fig. 5 — queue length at the east incoming road, top-right "
            "intersection, Pattern I"
        ),
    )
    summary = (
        f"mean queue: CAP-BP {result.cap_bp_trace.mean():.2f}, "
        f"UTIL-BP {result.util_bp_trace.mean():.2f}  |  "
        f"max queue: CAP-BP {result.cap_bp_trace.max():.0f}, "
        f"UTIL-BP {result.util_bp_trace.max():.0f}"
    )
    verdict = (
        "UTIL-BP maintains the shorter queue (matches the paper)"
        if result.util_mean_shorter
        else "UTIL-BP queue NOT shorter (mismatch with the paper)"
    )
    return "\n".join([chart, summary, verdict])


def _build_specs(
    engine: str,
    seed: int,
    duration: float,
    cap_bp_period: float,
    sample_interval: float,
) -> List[RunSpec]:
    watch = ((TOP_RIGHT_NODE, EAST_IN_ROAD),)
    return [
        RunSpec(
            pattern="I",
            controller="cap-bp",
            controller_params={"period": cap_bp_period},
            engine=engine,
            seed=seed,
            duration=duration,
            record_queues=watch,
            queue_sample_interval=sample_interval,
        ),
        RunSpec(
            pattern="I",
            controller="util-bp",
            engine=engine,
            seed=seed,
            duration=duration,
            record_queues=watch,
            queue_sample_interval=sample_interval,
        ),
    ]


def _collect(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    params: Mapping[str, Any],
) -> Fig5Result:
    cap, util = results
    key = (TOP_RIGHT_NODE, EAST_IN_ROAD)
    cap_trace = cap.queue_traces[key]
    util_trace = util.queue_traces[key]
    cap_trace.series.name = "CAP-BP"
    util_trace.series.name = "UTIL-BP"
    return Fig5Result(
        cap_bp_trace=cap_trace,
        util_bp_trace=util_trace,
        duration=params["duration"],
    )


FIG5 = register_experiment(
    ExperimentDefinition(
        name="fig5",
        description=(
            "Fig. 5 — sampled stop-line queue at the east incoming road "
            "of the top-right intersection, CAP-BP vs UTIL-BP, Pattern I"
        ),
        build_specs=_build_specs,
        collect=_collect,
        render=render_fig5,
        defaults=dict(
            engine="micro",
            seed=1,
            duration=PAPER_HORIZON,
            cap_bp_period=18.0,
            sample_interval=5.0,
        ),
    )
)


def run_fig5(
    engine: str = "micro",
    seed: int = 1,
    duration: float = PAPER_HORIZON,
    cap_bp_period: float = 18.0,
    sample_interval: float = 5.0,
    pool: Optional[ExperimentPool] = None,
) -> Fig5Result:
    """Regenerate the data behind Fig. 5."""
    return run_experiment(
        FIG5,
        pool=pool,
        engine=engine,
        seed=seed,
        duration=duration,
        cap_bp_period=cap_bp_period,
        sample_interval=sample_interval,
    )


def main() -> None:
    """Full reproduction at the paper's 2000 s horizon."""
    print(render_fig5(run_fig5()))


if __name__ == "__main__":
    main()
