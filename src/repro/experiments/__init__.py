"""Evaluation scenarios and the drivers that regenerate the paper's
tables and figures.

* :mod:`repro.experiments.patterns` — Tables I and II.
* :mod:`repro.scenarios` — the scenario builder and workload catalog.
* :mod:`repro.experiments.runner` — the closed control loop.
* :mod:`repro.experiments.table3` — Table III (CAP-BP best period vs
  UTIL-BP over all patterns).
* :mod:`repro.experiments.fig2` — Fig. 2 (queuing time vs control
  period, mixed pattern).
* :mod:`repro.experiments.fig34` — Figs. 3-4 (phase traces at the
  top-right intersection, Pattern I).
* :mod:`repro.experiments.fig5` — Fig. 5 (queue trace at the east
  incoming road of the top-right intersection).
* :mod:`repro.experiments.ablations` — design-choice ablations.
* :mod:`repro.experiments.stability` — demand-scale stability sweep
  (Sec. IV-Q1).

Each table/figure driver is declared as an
:class:`~repro.results.experiment.ExperimentDefinition` (a spec
builder, an aggregation recipe, a renderer) registered under its name;
``run_<driver>`` wrappers call
:func:`repro.results.experiment.run_experiment`, so every driver
executes through the shared pool + result store and gains resume and
cross-driver cell sharing.
"""

from repro.experiments.patterns import (
    MIXED_SEGMENT_DURATION,
    PATTERN_NAMES,
    PATTERNS,
    TURNING,
    arrival_schedule,
    interarrival_times,
    pattern_description,
)
from repro.experiments.runner import (
    RunConfig,
    RunResult,
    build_engine,
    register_engine,
    run_scenario,
    run_scenario_batch,
)
from repro.scenarios.core import DEFAULT_DURATIONS, Scenario, build_scenario

__all__ = [
    "TURNING",
    "PATTERNS",
    "PATTERN_NAMES",
    "MIXED_SEGMENT_DURATION",
    "arrival_schedule",
    "interarrival_times",
    "pattern_description",
    "Scenario",
    "build_scenario",
    "DEFAULT_DURATIONS",
    "RunConfig",
    "RunResult",
    "run_scenario",
    "run_scenario_batch",
    "build_engine",
    "register_engine",
]
