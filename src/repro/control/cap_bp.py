"""Capacity-aware back-pressure control (Gregoire et al. [4]) — CAP-BP.

This is the paper's main comparator: fixed-length control slots with
capacity-aware pressures.  Following [4]:

* pressures are computed on *normalized* queue lengths, so a movement
  into an almost-full road exerts little or no forward pressure and a
  *full* downstream road contributes nothing (capacity awareness);
* the per-movement incoming queue is used (dedicated turning lanes, as
  in our network model);
* the phase with the highest total positive weight is activated for a
  fixed period; changing phases inserts an amber;
* work conservation at *slot granularity*: among phases with the top
  weight, prefer one that can actually serve a vehicle during the slot
  (some activated movement with a non-empty queue and a non-full
  outgoing road).  The original back-pressure policy lacks this and
  can deadlock — [4] proves their fix guarantees that "the junction
  works if there is at least one vehicle served during the slot", the
  "quite relaxed" work-conservation notion our paper's Sec. IV cites.

The link weight reproduced here is::

    w(L_i^{i'}) = mu_i^{i'} * ( q_i^{i'}/W_i  -  q_{i'}/W_{i'} )

and a phase's score is the sum of the positive parts of its link
weights, with full downstream roads contributing zero.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.control.base import FixedSlotController, TRANSITION
from repro.model.movements import Movement
from repro.model.phases import Phase
from repro.model.queues import QueueObservation

__all__ = ["CapBpController", "cap_link_weight"]


def cap_link_weight(
    movement: Movement,
    obs: QueueObservation,
    in_capacity: int,
) -> float:
    """Capacity-normalized back-pressure weight of one movement.

    Zero when the downstream road is full — the capacity-awareness at
    the heart of [4].
    """
    if in_capacity <= 0:
        raise ValueError(f"in_capacity must be > 0, got {in_capacity}")
    out_queue = obs.out_queue(movement.out_road)
    out_capacity = obs.capacity(movement.out_road)
    if out_queue >= out_capacity:
        return 0.0
    rho_in = obs.movement_queue(movement.in_road, movement.out_road) / in_capacity
    rho_out = out_queue / out_capacity
    return movement.service_rate * (rho_in - rho_out)


class CapBpController(FixedSlotController):
    """Fixed-slot capacity-aware back-pressure (CAP-BP)."""

    def _in_capacity(self, movement: Movement) -> int:
        return self.intersection.in_roads[movement.in_road].capacity

    def _phase_score(self, phase: Phase, obs: QueueObservation) -> float:
        return sum(
            max(0.0, cap_link_weight(m, obs, self._in_capacity(m)))
            for m in phase.movements
        )

    def _can_serve(self, phase: Phase, obs: QueueObservation) -> bool:
        """True if the phase would serve >= 1 vehicle in the next slot."""
        for movement in phase.movements:
            queued = obs.movement_queue(movement.in_road, movement.out_road)
            if queued > 0 and not obs.is_full(movement.out_road):
                return True
        return False

    def select_phase(self, obs: QueueObservation) -> int:
        """Rank phases by capacity-aware back-pressure weight."""
        scored: List[Tuple[float, int, bool]] = []
        for phase in self.intersection.phases:
            scored.append(
                (
                    self._phase_score(phase, obs),
                    phase.index,
                    self._can_serve(phase, obs),
                )
            )
        servable = [entry for entry in scored if entry[2]]
        candidates = servable if servable else scored
        # Highest score wins; ties break towards the lowest phase index
        # (deterministic), then towards the running phase via score of 0.
        best_score = max(entry[0] for entry in candidates)
        best = [entry for entry in candidates if entry[0] == best_score]
        if best_score == 0.0 and self._current != TRANSITION and any(
            entry[1] == self._current for entry in best
        ):
            return self._current
        return min(entry[1] for entry in best)
