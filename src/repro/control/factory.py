"""Name-based controller construction for experiment configurations.

Experiments refer to controllers by short names (``"util-bp"``,
``"cap-bp"``, ``"original-bp"``, ``"fixed-time"``); this module maps
those names onto controller classes with keyword parameters, and builds
:class:`~repro.control.base.NetworkController` instances covering every
intersection of a network.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.control.base import IntersectionController, NetworkController
from repro.control.cap_bp import CapBpController
from repro.control.fixed_time import FixedTimeController
from repro.control.original_bp import OriginalBpController
from repro.model.intersection import Intersection
from repro.model.network import Network

__all__ = ["CONTROLLER_NAMES", "make_controller", "make_network_controller"]


def _make_util_bp(intersection: Intersection, **kwargs: Any) -> IntersectionController:
    # Imported lazily to avoid a hard import cycle at module load time
    # (core.util_bp depends on control.base).
    from repro.core.config import UtilBpConfig
    from repro.core.util_bp import UtilBpController

    config_kwargs = {
        key: kwargs.pop(key)
        for key in (
            "transition_duration",
            "alpha",
            "beta",
            "mini_slot",
            "keep_margin",
        )
        if key in kwargs
    }
    if kwargs:
        raise TypeError(f"unknown util-bp parameters: {sorted(kwargs)}")
    return UtilBpController(intersection, UtilBpConfig(**config_kwargs))


def _make_fixed_slot(
    cls: Callable[..., IntersectionController],
) -> Callable[..., IntersectionController]:
    def build(intersection: Intersection, **kwargs: Any) -> IntersectionController:
        """Instantiate the controller from its registered config keys."""
        if "period" not in kwargs:
            raise TypeError(f"{cls.__name__} requires a 'period' parameter")
        return cls(intersection, **kwargs)

    return build


_BUILDERS: Dict[str, Callable[..., IntersectionController]] = {
    "util-bp": _make_util_bp,
    "cap-bp": _make_fixed_slot(CapBpController),
    "original-bp": _make_fixed_slot(OriginalBpController),
    "fixed-time": _make_fixed_slot(FixedTimeController),
}

#: The controller names accepted by :func:`make_controller`.
CONTROLLER_NAMES = tuple(sorted(_BUILDERS))


def make_controller(
    name: str, intersection: Intersection, **kwargs: Any
) -> IntersectionController:
    """Build one controller by name.

    >>> from repro.model.grid import build_grid_network
    >>> net = build_grid_network(1, 1)
    >>> ctrl = make_controller("cap-bp", net.intersections["J00"], period=16)
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown controller {name!r}; expected one of {CONTROLLER_NAMES}"
        )
    return builder(intersection, **kwargs)


def make_network_controller(
    name: str, network: Network, **kwargs: Any
) -> NetworkController:
    """Build one controller per intersection (same parameters for all).

    The paper sets e.g. the CAP-BP control period globally for the
    whole network; this mirrors that.
    """
    controllers = {
        node_id: make_controller(name, intersection, **kwargs)
        for node_id, intersection in network.intersections.items()
    }
    return NetworkController(controllers)
