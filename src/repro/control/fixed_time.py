"""Fixed-time (round-robin) signal control.

The simplest possible baseline: cycle through the control phases in
index order, giving each the same green duration, with an amber
between consecutive phases.  It ignores the queue state entirely —
useful as a sanity floor in experiments and ablations (any
traffic-responsive policy should beat it under asymmetric demand).
"""

from __future__ import annotations

from repro.control.base import FixedSlotController
from repro.model.intersection import Intersection
from repro.model.queues import QueueObservation

__all__ = ["FixedTimeController"]


class FixedTimeController(FixedSlotController):
    """Round-robin over the intersection's phases.

    Parameters
    ----------
    intersection:
        The controlled intersection.
    period:
        Green time per phase, seconds.
    transition_duration:
        Amber length inserted between phases, seconds.
    """

    def __init__(
        self,
        intersection: Intersection,
        period: float,
        transition_duration: float = 4.0,
    ):
        super().__init__(intersection, period, transition_duration)
        self._order = [phase.index for phase in intersection.phases]
        self._cursor = -1

    def reset(self) -> None:
        """Restart the cycle from the first phase."""
        super().reset()
        self._cursor = -1

    def select_phase(self, obs: QueueObservation) -> int:
        """Return the next phase of the fixed cycle (queues ignored)."""
        del obs  # fixed-time control is open loop
        self._cursor = (self._cursor + 1) % len(self._order)
        return self._order[self._cursor]
