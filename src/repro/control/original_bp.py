"""Original back-pressure signal control (Varaiya [3]).

At every slot boundary the phase with the highest total original gain
(Eq. 5) is selected:

``g_o(L_i^{i'}, k) = max(0, (b_i(k) - b_{i'}(k)) mu_i^{i'})``

where ``b_i`` is the pressure of the *total* queue on the incoming
road.  When every phase's gain is zero the paper notes "no phase is
activated"; activating none would show red everywhere, so — like
practical deployments — we keep the currently running phase (an
all-zero gain state means there is nothing useful to serve anyway).
This policy is oblivious to road capacities and to which movement the
queued vehicles actually want, the two utilization problems the paper
sets out to fix.
"""

from __future__ import annotations

from repro.control.base import FixedSlotController, TRANSITION
from repro.core.pressure import link_gain_original
from repro.model.queues import QueueObservation

__all__ = ["OriginalBpController"]


class OriginalBpController(FixedSlotController):
    """Fixed-slot back-pressure with the original Eq. 5 gains."""

    def select_phase(self, obs: QueueObservation) -> int:
        """Rank phases by original back-pressure weight."""
        best_index = None
        best_gain = -1.0
        for phase in self.intersection.phases:
            gain = sum(link_gain_original(m, obs) for m in phase.movements)
            if gain > best_gain:
                best_gain = gain
                best_index = phase.index
        assert best_index is not None
        if best_gain == 0.0:
            # All gains zero: keep the running phase if there is one.
            if self._current != TRANSITION:
                return self._current
            return self.intersection.phases[0].index
        return best_index
