"""Batched network controllers: all B replications decided at once.

Closed-loop batching is what makes ``meso-vec`` pay off in the paper's
main regime: the engine steps B replications as arrays, but a serial
sweep still ran B Python controller instances against B per-replication
``QueueObservation`` maps every mini-slot.  The controllers here replace
that loop with array kernels — one :meth:`decide_batch` call computes
the ``(B, n_nodes)`` phase decisions for the whole batch directly on the
engine's ``(B, n_movements)`` queue arrays (the
:class:`~repro.core.engine.BatchControlArrays` façade), using the
``*_array`` pressure kernels of :mod:`repro.core.pressure`.

Parity is the contract, not an aspiration: for every replication the
batched decisions are *identical* — same comparisons, same float
evaluation order, same tie-breaks — to those of the serial controller of
the same name and parameters.  ``tests/test_control_batch.py`` asserts
decision-for-decision lockstep against the serial controllers, and the
engine parity suite pins the whole closed loop.

Three controllers batch (registered in :mod:`repro.core.engine` by their
factory names):

* ``util-bp`` — :class:`BatchUtilBpController`, Algorithm 1's three
  cases on ``(B, N)`` state arrays;
* ``cap-bp`` — :class:`BatchCapBpController`, the fixed-slot driver plus
  capacity-normalized weights;
* ``original-bp`` — :class:`BatchOriginalBpController`, fixed slots with
  Eq. 5 gains on total incoming queues.

``fixed-time`` is open-loop (its decisions ignore the observation), so a
batched run of it already amortizes through the engine's shared-phase
compression; it keeps the per-replication path.
"""

from __future__ import annotations

import math
from typing import Any, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.core.config import UtilBpConfig
from repro.core.engine import BatchControlArrays, register_batch_controller
from repro.core.pressure import (
    keep_threshold_array,
    link_gain_array,
    link_gain_original_array,
    max_link_gain_array,
    phase_gain_array,
)
from repro.model.network import Network
from repro.util.validation import check_positive

__all__ = [
    "BatchNetworkController",
    "BatchUtilBpController",
    "BatchCapBpController",
    "BatchOriginalBpController",
]

#: Sentinel above any real phase index, for masked index minima.
_NO_PHASE = np.iinfo(np.int64).max


@runtime_checkable
class BatchNetworkController(Protocol):
    """A controller deciding for every replication of a batch at once.

    The counterpart of :class:`~repro.control.base.NetworkController`
    for batch engines: instead of one observation map per replication it
    consumes the engine's :class:`BatchControlArrays` and returns the
    ``(batch_size, n_nodes)`` integer array of phase decisions (0 =
    transition/amber), node columns in ``node_ids`` order.
    """

    batch_size: int
    node_ids: Tuple[str, ...]
    movement_keys: Tuple[Tuple[str, str], ...]

    def decide_batch(self, arrays: BatchControlArrays) -> np.ndarray:
        """Phase decisions for the next mini-slot, all replications."""
        ...

    def reset(self) -> None:
        """Forget all internal state (e.g. between experiment runs)."""
        ...


class _NetworkLayout:
    """Static array tables of one network, in the canonical batch layout.

    The movement axis is node-major over ``network.intersections``
    order with each intersection's movements in declaration order —
    the same layout ``BatchCountsSimulator`` builds, so engine arrays
    and controller tables align column-for-column (checked once via
    ``movement_keys`` when the runner wires the two together).

    Phase structure is densified for the segment reductions: phase slot
    ``p`` of node ``n`` is ``intersections[n].phases[p]``, movement slot
    ``j`` of a phase is its j-th declared movement, and boolean masks
    cover the ragged padding.
    """

    def __init__(self, network: Network):
        node_ids = list(network.intersections)
        intersections = [network.intersections[n] for n in node_ids]
        self.node_ids: Tuple[str, ...] = tuple(node_ids)
        N = len(node_ids)

        movement_keys = []
        node_of = []
        out_cap = []
        in_cap = []
        rate = []
        gid_of = {}
        in_code = []
        code_of = {}
        for n, inter in enumerate(intersections):
            for key, movement in inter.movements.items():
                gid_of[(n, key)] = len(movement_keys)
                movement_keys.append(key)
                node_of.append(n)
                out_cap.append(inter.out_roads[movement.out_road].capacity)
                in_cap.append(inter.in_roads[movement.in_road].capacity)
                rate.append(movement.service_rate)
                road = (n, movement.in_road)
                in_code.append(code_of.setdefault(road, len(code_of)))
        self.movement_keys: Tuple[Tuple[str, str], ...] = tuple(movement_keys)
        self.n_movements = len(movement_keys)
        self.m_out_cap = np.array(out_cap, dtype=np.int64)
        self.m_in_cap = np.array(in_cap, dtype=np.int64)
        self.m_rate = np.array(rate, dtype=np.float64)
        self._in_code = np.array(in_code, dtype=np.int64)
        self._n_in_roads = len(code_of)

        # W* (Eq. 7) is per intersection: the largest outgoing capacity.
        w_star = np.array(
            [
                max(road.capacity for road in inter.out_roads.values())
                for inter in intersections
            ],
            dtype=np.int64,
        )
        self.node_w_star = w_star
        self.m_w_star = w_star.astype(np.float64)[np.array(node_of)]

        # Dense phase tables (N, P) / (N, P, L) with validity masks.
        P = max(len(inter.phases) for inter in intersections)
        L = max(
            (len(phase.movements) for inter in intersections
             for phase in inter.phases),
            default=1,
        )
        max_index = max(
            phase.index for inter in intersections for phase in inter.phases
        )
        self.max_index = max_index
        self.members = np.zeros((N, P, L), dtype=np.int64)
        self.member_valid = np.zeros((N, P, L), dtype=bool)
        self.member_rate = np.zeros((N, P, L), dtype=np.float64)
        self.phase_index = np.zeros((N, P), dtype=np.int64)
        self.phase_valid = np.zeros((N, P), dtype=bool)
        self.slot_of = np.full((N, max_index + 1), -1, dtype=np.int64)
        self.first_phase = np.array(
            [inter.phases[0].index for inter in intersections], dtype=np.int64
        )
        for n, inter in enumerate(intersections):
            for p, phase in enumerate(inter.phases):
                self.phase_index[n, p] = phase.index
                self.phase_valid[n, p] = True
                self.slot_of[n, phase.index] = p
                for j, movement in enumerate(phase.movements):
                    self.members[n, p, j] = gid_of[(n, movement.key)]
                    self.member_valid[n, p, j] = True
                    self.member_rate[n, p, j] = movement.service_rate
        self._node_cols = np.arange(N)[None, :]

    def current_slot(self, current: np.ndarray) -> np.ndarray:
        """Dense phase slot of each ``(b, n)`` running phase (-1: amber).

        ``current`` holds paper phase indices; 0 (amber) and indices a
        node does not define map to -1 — callers mask those cells.
        """
        safe = np.clip(current, 0, self.max_index)
        slot = self.slot_of[self._node_cols, safe]
        return np.where(current == 0, -1, slot)

    def incoming_totals(self, queues: np.ndarray) -> np.ndarray:
        """Eq. 1 per movement: its incoming road's total queue, batched."""
        flat = queues.reshape(-1, queues.shape[-1])
        sums = np.zeros((flat.shape[0], self._n_in_roads), dtype=np.int64)
        np.add.at(sums, (slice(None), self._in_code), flat)
        return sums[:, self._in_code].reshape(queues.shape)

    def take_per_slot(
        self, table: np.ndarray, slot: np.ndarray
    ) -> np.ndarray:
        """Gather ``table[..., slot]`` along the phase axis, per cell.

        ``table`` is ``(B, N, P)``, ``slot`` is ``(B, N)`` (negative
        slots read slot 0 — callers mask those cells afterwards).
        """
        safe = np.maximum(slot, 0)
        return np.take_along_axis(table, safe[..., None], axis=2)[..., 0]


class _BatchControllerBase:
    """Shared construction and state plumbing of the batched controllers."""

    def __init__(self, network: Network, batch_size: int):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not network.intersections:
            raise ValueError("network has no intersections to control")
        self.batch_size = int(batch_size)
        self._layout = _NetworkLayout(network)
        self.node_ids = self._layout.node_ids
        self.movement_keys = self._layout.movement_keys
        self._shape = (self.batch_size, len(self.node_ids))
        self.reset()

    def reset(self) -> None:
        #: c(k-1) per (replication, node); 0 is the transition phase.
        """Reset every replication to the transition phase."""
        self._current = np.zeros(self._shape, dtype=np.int64)

    def _check(self, arrays: BatchControlArrays) -> None:
        expected = (self.batch_size, self._layout.n_movements)
        if arrays.queues.shape != expected:
            raise ValueError(
                f"batch observation shape {arrays.queues.shape} does not "
                f"match the controller layout {expected}"
            )


class BatchUtilBpController(_BatchControllerBase):
    """UTIL-BP (Algorithm 1) on whole replication batches.

    The three cases are evaluated as masks over ``(B, N)`` cells, each
    the exact vectorization of :class:`~repro.core.util_bp.UtilBpController`:

    1. a transition phase is running and its timer has not expired —
       keep it;
    2. a control phase is running and its best link gain exceeds the
       Eq.-12 threshold — keep it;
    3. select anew: restrict to utilization-guaranteeing phases ranked
       by total gain when any exists (``g_max > alpha``), else rank all
       phases by best link gain; equal scores prefer the running phase,
       then the lowest phase index.  A selection differing from the
       running control phase arms the transition timer and shows amber.
    """

    def __init__(
        self,
        network: Network,
        batch_size: int,
        config: UtilBpConfig | None = None,
    ):
        self.config = config or UtilBpConfig()
        super().__init__(network, batch_size)

    def reset(self) -> None:
        """Reset phases and per-cell transition timers."""
        super().reset()
        #: t_{Delta k} per (replication, node).
        self._transition_until = np.full(self._shape, -math.inf)

    def decide_batch(self, arrays: BatchControlArrays) -> np.ndarray:
        """Run Algorithm 1 on the whole ``(B, N)`` batch at once."""
        self._check(arrays)
        lay = self._layout
        cfg = self.config
        t_k = arrays.time
        previous = self._current

        gains = link_gain_array(
            arrays.queues,
            arrays.out_queues,
            lay.m_out_cap,
            lay.m_w_star,
            lay.m_rate,
            cfg.alpha,
            cfg.beta,
        )
        # Per-phase reductions (B, N, P): Eq. 11 max + arg, Eq. 10 sum.
        g_max, arg = max_link_gain_array(gains, lay.members, lay.member_valid)
        mu_of_arg = lay.member_rate[
            np.arange(len(lay.node_ids))[:, None],
            np.arange(lay.member_rate.shape[1])[None, :],
            arg,
        ]
        g_max = np.where(lay.phase_valid, g_max, -np.inf)

        # Case 1: transition running, timer not expired.
        case1 = (previous == 0) & (t_k < self._transition_until)

        # Case 2: current control phase still above the keep threshold.
        slot = lay.current_slot(previous)
        g_cur = lay.take_per_slot(g_max, slot)
        mu_cur = lay.take_per_slot(mu_of_arg, slot)
        threshold = keep_threshold_array(lay.node_w_star, mu_cur)
        threshold = threshold - cfg.keep_margin * mu_cur
        case2 = (previous != 0) & (g_cur > threshold)

        # Case 3: utilization-aware selection over all phases.
        g_sum = phase_gain_array(gains, lay.members, lay.member_valid)
        best_overall = g_max.max(axis=2)
        scores = np.where(
            (best_overall > cfg.alpha)[..., None],
            np.where(g_max > cfg.alpha, g_sum, -np.inf),
            g_max,
        )
        best_score = scores.max(axis=2)
        is_best = (scores == best_score[..., None]) & lay.phase_valid
        current_is_best = (
            lay.take_per_slot(is_best, slot) & (slot >= 0)
        )
        lowest_best = np.where(is_best, lay.phase_index, _NO_PHASE).min(axis=2)
        selected = np.where(current_is_best, previous, lowest_best)

        direct = (selected == previous) | (previous == 0)
        arm = ~case1 & ~case2 & ~direct
        decision = np.where(
            case1,
            0,
            np.where(case2, previous, np.where(direct, selected, 0)),
        )
        self._transition_until = np.where(
            arm, t_k + cfg.transition_duration, self._transition_until
        )
        self._current = decision
        return decision


class _BatchFixedSlotController(_BatchControllerBase):
    """The fixed-length-slot driver of the conventional baselines, batched.

    Vectorizes :class:`~repro.control.base.FixedSlotController`: per
    ``(b, n)`` cell the phase is re-selected only at slot boundaries, a
    changed selection first shows amber for ``transition_duration``
    (the selection is parked in ``_pending``), an unchanged selection
    extends the slot seamlessly, and the very first decision starts its
    slot without an amber.  Subclasses provide ``_select``.
    """

    def __init__(
        self,
        network: Network,
        batch_size: int,
        period: float,
        transition_duration: float = 4.0,
    ):
        check_positive("period", period)
        check_positive("transition_duration", transition_duration)
        self.period = float(period)
        self.transition_duration = float(transition_duration)
        super().__init__(network, batch_size)

    def reset(self) -> None:
        """Reset phases, slot timers and pending selections."""
        super().reset()
        self._slot_end = np.full(self._shape, -math.inf)
        self._transition_until = np.full(self._shape, -math.inf)
        #: Parked selection awaiting its amber to finish (-1: none).
        self._pending = np.full(self._shape, -1, dtype=np.int64)

    def _select(
        self, arrays: BatchControlArrays, previous: np.ndarray
    ) -> np.ndarray:
        """Per-cell slot selection (paper phase indices, never 0)."""
        raise NotImplementedError

    def decide_batch(self, arrays: BatchControlArrays) -> np.ndarray:
        """Advance the fixed-slot machinery for every cell at once."""
        self._check(arrays)
        now = arrays.time
        previous = self._current
        selection = self._select(arrays, previous)

        has_pending = self._pending >= 0
        amber_wait = has_pending & (now < self._transition_until)
        promote = has_pending & ~amber_wait
        expired = ~has_pending & (now >= self._slot_end)
        hold = ~has_pending & ~expired
        unchanged = selection == previous
        first = (previous == 0) & np.isneginf(self._slot_end)
        start = expired & (unchanged | first)
        arm = expired & ~(unchanged | first)

        decision = np.where(
            amber_wait,
            0,
            np.where(
                promote,
                self._pending,
                np.where(hold, previous, np.where(start, selection, 0)),
            ),
        )
        self._slot_end = np.where(
            promote | start, now + self.period, self._slot_end
        )
        self._transition_until = np.where(
            arm, now + self.transition_duration, self._transition_until
        )
        self._pending = np.where(
            promote, -1, np.where(arm, selection, self._pending)
        )
        self._current = decision
        return decision


class BatchCapBpController(_BatchFixedSlotController):
    """CAP-BP on whole replication batches.

    The exact vectorization of
    :class:`~repro.control.cap_bp.CapBpController`: capacity-normalized
    link weights (full downstream roads contribute nothing), phase score
    as the sum of positive weights, work conservation at slot
    granularity (prefer phases that can serve a vehicle), ties towards
    the lowest index, and an all-zero-score slot keeps the running phase.
    """

    def _select(
        self, arrays: BatchControlArrays, previous: np.ndarray
    ) -> np.ndarray:
        lay = self._layout
        queues = arrays.queues
        out_queues = arrays.out_queues
        full = out_queues >= lay.m_out_cap
        weight = lay.m_rate * (
            queues / lay.m_in_cap - out_queues / lay.m_out_cap
        )
        contribution = np.maximum(0.0, np.where(full, 0.0, weight))
        scores = phase_gain_array(contribution, lay.members, lay.member_valid)
        servable_m = (queues > 0) & ~full
        servable = np.any(
            servable_m[..., lay.members] & lay.member_valid, axis=-1
        )
        candidates = np.where(
            servable.any(axis=2)[..., None], servable, lay.phase_valid
        )
        masked = np.where(candidates, scores, -np.inf)
        best_score = masked.max(axis=2)
        is_best = candidates & (masked == best_score[..., None])
        lowest_best = np.where(is_best, lay.phase_index, _NO_PHASE).min(axis=2)
        slot = lay.current_slot(previous)
        current_is_best = lay.take_per_slot(is_best, slot) & (slot >= 0)
        return np.where(
            (best_score == 0.0) & current_is_best, previous, lowest_best
        )


class BatchOriginalBpController(_BatchFixedSlotController):
    """Original back-pressure (Varaiya) on whole replication batches.

    The exact vectorization of
    :class:`~repro.control.original_bp.OriginalBpController`: Eq.-5
    gains on *total* incoming queues, the first phase with the highest
    total gain wins, and an all-zero gain state keeps the running phase
    (or starts the first phase when none is running).
    """

    def _select(
        self, arrays: BatchControlArrays, previous: np.ndarray
    ) -> np.ndarray:
        lay = self._layout
        gains = link_gain_original_array(
            lay.incoming_totals(arrays.queues),
            arrays.out_queues,
            lay.m_rate,
        )
        scores = phase_gain_array(gains, lay.members, lay.member_valid)
        scores = np.where(lay.phase_valid, scores, -np.inf)
        arg = scores.argmax(axis=2)
        best = np.take_along_axis(scores, arg[..., None], axis=2)[..., 0]
        selected = lay.phase_index[lay._node_cols, arg]
        keep = np.where(previous != 0, previous, lay.first_phase)
        return np.where(best == 0.0, keep, selected)


# -- factory registration -----------------------------------------------------


def _build_util_bp(
    network: Network, batch_size: int, **kwargs: Any
) -> BatchUtilBpController:
    config_kwargs = {
        key: kwargs.pop(key)
        for key in (
            "transition_duration",
            "alpha",
            "beta",
            "mini_slot",
            "keep_margin",
        )
        if key in kwargs
    }
    if kwargs:
        raise TypeError(f"unknown util-bp parameters: {sorted(kwargs)}")
    return BatchUtilBpController(
        network, batch_size, UtilBpConfig(**config_kwargs)
    )


def _build_fixed_slot(cls):
    def build(network: Network, batch_size: int, **kwargs: Any):
        """Construct the controller, requiring an explicit period."""
        if "period" not in kwargs:
            raise TypeError(f"{cls.__name__} requires a 'period' parameter")
        return cls(network, batch_size, **kwargs)

    return build


register_batch_controller("util-bp", _build_util_bp)
register_batch_controller("cap-bp", _build_fixed_slot(BatchCapBpController))
register_batch_controller(
    "original-bp", _build_fixed_slot(BatchOriginalBpController)
)
