"""Signal controllers: the common interface and the baseline algorithms.

* :mod:`repro.control.base` — the per-intersection controller protocol
  (state feedback ``c(k) = phi(Q(k))``, Eq. 3) and the fixed-length
  slot driver shared by the conventional back-pressure baselines.
* :mod:`repro.control.fixed_time` — round-robin fixed-time control.
* :mod:`repro.control.original_bp` — the original back-pressure policy
  of Varaiya [3] (Eq. 5 gains, fixed slots).
* :mod:`repro.control.cap_bp` — the capacity-aware back-pressure
  policy of Gregoire et al. [4], the paper's main comparator
  (CAP-BP).
* :mod:`repro.control.factory` — name-based construction of any
  controller, including UTIL-BP, for experiment configs.
* :mod:`repro.control.batch` — batched twins of the closed-loop
  controllers: whole ``(B, n_nodes)`` decision arrays computed on the
  batch engines' ``(B, n_movements)`` queue arrays, decision-for-
  decision identical to the serial controllers (built by name via
  :func:`repro.core.engine.build_batch_controller`).

The paper's own controller lives in :mod:`repro.core.util_bp`.
"""

from repro.control.base import (
    TRANSITION,
    FixedSlotController,
    IntersectionController,
    NetworkController,
)
from repro.control.batch import (
    BatchCapBpController,
    BatchNetworkController,
    BatchOriginalBpController,
    BatchUtilBpController,
)
from repro.control.fixed_time import FixedTimeController
from repro.control.original_bp import OriginalBpController
from repro.control.cap_bp import CapBpController
from repro.control.factory import make_controller, make_network_controller

__all__ = [
    "TRANSITION",
    "IntersectionController",
    "FixedSlotController",
    "NetworkController",
    "FixedTimeController",
    "OriginalBpController",
    "CapBpController",
    "BatchNetworkController",
    "BatchUtilBpController",
    "BatchCapBpController",
    "BatchOriginalBpController",
    "make_controller",
    "make_network_controller",
]
