"""Controller interfaces.

Every controller is *decentralized*: it controls exactly one
intersection and sees only that intersection's queue observation —
never its neighbours' state or any global demand information.  This
mirrors the paper's emphasis that back-pressure control needs no prior
traffic information and is locally implementable.

Two layers are defined:

* :class:`IntersectionController` — the protocol: ``decide(obs)``
  returns the phase index to show for the next mini-slot (0 is the
  transition/amber phase).
* :class:`FixedSlotController` — the driver used by all *conventional*
  (fixed-length slot) baselines: it re-selects a phase only at slot
  boundaries and inserts a transition phase whenever the selection
  changes.  Subclasses provide only the per-slot selection rule.

:class:`NetworkController` simply fans a network-wide observation out
to the per-intersection controllers.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

from repro.model.intersection import Intersection
from repro.model.phases import TRANSITION_PHASE_INDEX
from repro.model.queues import QueueObservation
from repro.util.validation import check_positive

__all__ = [
    "TRANSITION",
    "IntersectionController",
    "FixedSlotController",
    "NetworkController",
]

#: Alias for the transition-phase index (amber), ``c_0``.
TRANSITION = TRANSITION_PHASE_INDEX


class IntersectionController(ABC):
    """State-feedback signal controller for a single intersection."""

    def __init__(self, intersection: Intersection):
        if not intersection.phases:
            raise ValueError(
                f"intersection {intersection.node_id} has no control phases"
            )
        self.intersection = intersection
        self._current: int = TRANSITION

    @property
    def current_phase(self) -> int:
        """The phase index most recently returned by :meth:`decide`."""
        return self._current

    @abstractmethod
    def decide(self, obs: QueueObservation) -> int:
        """Return the phase index to apply for the next mini-slot.

        Called once per mini-slot with the current observation
        ``Q(k)``; must return ``TRANSITION`` (0) or the index of one of
        the intersection's control phases.
        """

    def reset(self) -> None:
        """Forget all internal state (e.g. between experiment runs)."""
        self._current = TRANSITION

    def _record(self, phase_index: int) -> int:
        """Validate and remember a decision; returns it for chaining."""
        if phase_index != TRANSITION:
            self.intersection.phase_by_index(phase_index)  # raises if unknown
        self._current = phase_index
        return phase_index


class FixedSlotController(IntersectionController):
    """Driver for conventional fixed-length-slot controllers.

    The phase is re-selected every ``period`` seconds.  If the
    selection differs from the running phase, a transition (amber)
    phase of ``transition_duration`` seconds is inserted first and the
    new phase's slot starts after it.  If the selection equals the
    running phase, the slot is extended seamlessly (a signal that does
    not change needs no amber).

    Subclasses implement :meth:`select_phase`.
    """

    def __init__(
        self,
        intersection: Intersection,
        period: float,
        transition_duration: float = 4.0,
    ):
        super().__init__(intersection)
        check_positive("period", period)
        check_positive("transition_duration", transition_duration)
        self.period = float(period)
        self.transition_duration = float(transition_duration)
        self._slot_end = -math.inf
        self._transition_until = -math.inf
        self._pending: Optional[int] = None

    @abstractmethod
    def select_phase(self, obs: QueueObservation) -> int:
        """Pick the control phase for the slot starting at ``obs.time``."""

    def reset(self) -> None:
        """Restart the slot and transition timers for a fresh run."""
        super().reset()
        self._slot_end = -math.inf
        self._transition_until = -math.inf
        self._pending = None

    def decide(self, obs: QueueObservation) -> int:
        """Advance the fixed-slot machinery and return the applied phase."""
        now = obs.time
        if self._pending is not None:
            if now < self._transition_until:
                return self._record(TRANSITION)
            # Amber over: the pending phase's slot starts now.
            pending = self._pending
            self._pending = None
            self._slot_end = now + self.period
            return self._record(pending)
        if now < self._slot_end:
            return self._record(self._current)
        selection = self.select_phase(obs)
        if selection == TRANSITION:
            raise ValueError(
                f"{type(self).__name__}.select_phase returned the transition "
                f"phase; it must pick a control phase"
            )
        if selection == self._current:
            self._slot_end = now + self.period
            return self._record(selection)
        if self._current == TRANSITION and self._slot_end == -math.inf:
            # Very first decision: no signal is running yet, start directly.
            self._slot_end = now + self.period
            return self._record(selection)
        self._pending = selection
        self._transition_until = now + self.transition_duration
        return self._record(TRANSITION)


class NetworkController:
    """Fans network observations out to per-intersection controllers."""

    def __init__(self, controllers: Mapping[str, IntersectionController]):
        if not controllers:
            raise ValueError("need at least one intersection controller")
        self.controllers: Dict[str, IntersectionController] = dict(controllers)

    def decide(self, observations: Mapping[str, QueueObservation]) -> Dict[str, int]:
        """Return ``{node_id: phase_index}`` for every observed intersection."""
        decisions: Dict[str, int] = {}
        for node_id, obs in observations.items():
            controller = self.controllers.get(node_id)
            if controller is None:
                raise KeyError(f"no controller registered for {node_id!r}")
            decisions[node_id] = controller.decide(obs)
        return decisions

    def reset(self) -> None:
        """Reset every per-intersection controller."""
        for controller in self.controllers.values():
            controller.reset()
