"""Time-series container and terminal rendering.

Figures 2–5 of the paper are line plots; we regenerate them as sampled
series plus an ASCII chart so results are inspectable in a terminal and
assertable in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["TimeSeries", "render_series"]


@dataclass
class TimeSeries:
    """A named sequence of ``(time, value)`` samples.

    Samples must be appended in non-decreasing time order; this is
    enforced so downstream consumers (resampling, plotting) can assume
    monotonicity.
    """

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Append one sample; ``time`` must not precede the last sample."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"non-monotonic time {time} after {self.times[-1]} in series "
                f"{self.name!r}"
            )
        self.times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def to_dict(self) -> dict:
        """A JSON-serializable view of the series."""
        return {
            "name": self.name,
            "times": list(self.times),
            "values": list(self.values),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TimeSeries":
        """Rebuild a series serialized with :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            times=[float(t) for t in payload["times"]],
            values=[float(v) for v in payload["values"]],
        )

    def mean(self) -> float:
        """Arithmetic mean of the sample values (0.0 when empty)."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def max(self) -> float:
        """Maximum sample value (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def window(self, start: float, end: float) -> "TimeSeries":
        """Return the sub-series with ``start <= t < end``."""
        sub = TimeSeries(self.name)
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                sub.append(t, v)
        return sub

    def resample(self, step: float) -> "TimeSeries":
        """Bucket-average the series onto a uniform grid of ``step``.

        Empty buckets repeat the previous bucket's value (or 0.0 at the
        start), mirroring how a plotted staircase would read.
        """
        if step <= 0:
            raise ValueError(f"step must be > 0, got {step}")
        out = TimeSeries(self.name)
        if not self.times:
            return out
        t0, t_end = self.times[0], self.times[-1]
        bucket_start = t0
        acc: List[float] = []
        idx = 0
        last = 0.0
        while bucket_start <= t_end:
            bucket_end = bucket_start + step
            acc.clear()
            while idx < len(self.times) and self.times[idx] < bucket_end:
                acc.append(self.values[idx])
                idx += 1
            if acc:
                last = sum(acc) / len(acc)
            out.append(bucket_start, last)
            bucket_start = bucket_end
        return out

    def pairs(self) -> List[Tuple[float, float]]:
        """Return the samples as a list of ``(time, value)`` tuples."""
        return list(zip(self.times, self.values))


def render_series(
    series: Sequence[TimeSeries],
    width: int = 72,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Render one or more series as an ASCII line chart.

    Each series gets its own glyph (``*``, ``o``, ``+``, ``x`` in
    order).  Axes are labelled with min/max of time and value.
    """
    glyphs = "*o+x#@"
    populated = [s for s in series if len(s) > 0]
    if not populated:
        return (title or "") + "\n(empty)"
    t_min = min(s.times[0] for s in populated)
    t_max = max(s.times[-1] for s in populated)
    v_min = min(min(s.values) for s in populated)
    v_max = max(max(s.values) for s in populated)
    if v_max == v_min:
        v_max = v_min + 1.0
    if t_max == t_min:
        t_max = t_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, s in enumerate(populated):
        glyph = glyphs[s_idx % len(glyphs)]
        for t, v in zip(s.times, s.values):
            col = int((t - t_min) / (t_max - t_min) * (width - 1))
            row = int((v - v_min) / (v_max - v_min) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{v_max:>10.2f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{v_min:>10.2f} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{t_min:<12.1f}" + " " * max(0, width - 24) + f"{t_max:>12.1f}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]} {s.name}" for i, s in enumerate(populated)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
