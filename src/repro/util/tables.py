"""ASCII table rendering for experiment reports.

The benchmark harness regenerates the paper's tables as plain text so
the reproduction can be eyeballed against the PDF without a plotting
stack.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table"]


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a list of rows as a boxed ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are formatted with two decimals.
    title:
        Optional caption printed above the table.

    Returns
    -------
    str
        The rendered table, ending without a trailing newline.
    """
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(char: str = "-", joint: str = "+") -> str:
        """A horizontal rule matching the column widths."""
        return joint + joint.join(char * (w + 2) for w in widths) + joint

    def format_row(cells: Sequence[str]) -> str:
        """One padded table row."""
        padded = (f" {cell:<{widths[idx]}} " for idx, cell in enumerate(cells))
        return "|" + "|".join(padded) + "|"

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line())
    parts.append(format_row(list(headers)))
    parts.append(line("="))
    for row in str_rows:
        parts.append(format_row(row))
    parts.append(line())
    return "\n".join(parts)
