"""Small argument-validation helpers used across the library.

Each helper raises ``ValueError`` with a message naming the offending
parameter, so call sites stay one-liners and error messages stay
uniform.
"""

from __future__ import annotations

import math

__all__ = [
    "check_finite",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]


def check_finite(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is finite and > 0."""
    check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is finite and >= 0."""
    check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    check_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    check_finite(name, value)
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
