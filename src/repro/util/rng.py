"""Deterministic random-number management.

Every stochastic component in the library (arrival processes, route
sampling, driver imperfection in the car-following model) draws from a
*named* stream derived from a single scenario seed.  This guarantees:

* bit-for-bit reproducibility of every experiment given a seed, and
* *independence between components*: adding draws to one stream (say,
  the arrival process on one road) never perturbs the values another
  stream produces.  This is essential for paired controller comparisons
  — CAP-BP and UTIL-BP runs of the same scenario see the *same* demand.

Streams are implemented with :class:`numpy.random.Generator` seeded via
:class:`numpy.random.SeedSequence` spawned from a stable hash of the
stream name.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["derive_seed", "RngStreams"]


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from ``base_seed`` and a stream ``name``.

    The derivation uses SHA-256 so it is stable across Python processes
    and platforms (unlike the builtin ``hash``, which is salted).

    Parameters
    ----------
    base_seed:
        The scenario-level seed (any non-negative integer).
    name:
        A stable identifier for the stream, e.g. ``"arrivals/N0_in"``.

    Returns
    -------
    int
        A 64-bit seed derived deterministically from both inputs.
    """
    if base_seed < 0:
        raise ValueError(f"base_seed must be non-negative, got {base_seed}")
    payload = f"{base_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A registry of named, independently seeded random generators.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> gen_a = streams.get("arrivals/north")
    >>> gen_b = streams.get("routing")
    >>> gen_a is streams.get("arrivals/north")
    True
    """

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The scenario-level base seed."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if not name:
            raise ValueError("stream name must be a non-empty string")
        generator = self._streams.get(name)
        if generator is None:
            child_seed = derive_seed(self._seed, name)
            generator = np.random.default_rng(child_seed)
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngStreams":
        """Return a new registry namespaced under ``name``.

        Useful when a subsystem wants to manage its own sub-streams
        without risking collisions with the parent's stream names.
        """
        return RngStreams(derive_seed(self._seed, name) % (2**31))

    def names(self):
        """Return the names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed}, streams={len(self._streams)})"
