"""Structured JSON-lines logging: the observability layer.

Every long-running surface of the package (the HTTP service, the
worker pool, the batch-runner fallback path) emits its diagnostics
through this module instead of ad-hoc ``print(..., file=sys.stderr)``:
one JSON object per line, machine-parseable, with a stable field
layout::

    {"ts": 1754600000.123, "level": "info", "component": "service",
     "event": "request_completed", "request_id": "req-a1b2c3d4",
     "method": "GET", "path": "/healthz", "status": 200}

Fields
------
``ts``
    Unix timestamp (float seconds).
``level``
    One of ``debug``/``info``/``warning``/``error``.
``component``
    The subsystem that emitted the line (``service``, ``jobs``,
    ``runner``, ...).
``event``
    A stable machine-readable event name (snake_case); free-form prose
    goes in an optional ``message`` field so grepping for either works.
``request_id`` / anything else
    Bound ambient context (see :func:`log_context`) plus the keyword
    fields of the individual call.

Context propagation uses :mod:`contextvars`, so a request id bound in
an asyncio handler flows through every ``await`` without threading it
through call signatures; worker threads bind their own context
explicitly.

The default sink is *the current* ``sys.stderr`` (resolved per write,
so test harnesses that swap stderr capture the lines); `configure`
redirects globally, and each logger line is written and flushed under a
lock so concurrent emitters never interleave partial lines.
"""

from __future__ import annotations

import contextvars
import json
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, TextIO

__all__ = [
    "LEVELS",
    "StructuredLogger",
    "configure",
    "context_fields",
    "get_logger",
    "log_context",
]

#: Level name -> numeric severity (mirrors the stdlib's spacing).
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: Ambient fields merged into every record emitted in this context.
_CONTEXT: contextvars.ContextVar[Optional[Dict[str, Any]]] = contextvars.ContextVar(
    "repro_log_context", default=None
)

_LOCK = threading.Lock()
_STREAM: Optional[TextIO] = None  # None = the current sys.stderr
_THRESHOLD = LEVELS["info"]
_LOGGERS: Dict[str, "StructuredLogger"] = {}


def configure(
    stream: Optional[TextIO] = None, level: str = "info"
) -> None:
    """Set the global sink and minimum level for all structured loggers.

    ``stream=None`` (the default) writes to whatever ``sys.stderr`` is
    at emit time.  ``level`` names the minimum severity that is
    written; anything below it is dropped.
    """
    global _STREAM, _THRESHOLD
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; known: {sorted(LEVELS)}")
    with _LOCK:
        _STREAM = stream
        _THRESHOLD = LEVELS[level]


def context_fields() -> Dict[str, Any]:
    """The ambient context fields bound in the current context (a copy)."""
    current = _CONTEXT.get()
    return dict(current) if current else {}


@contextmanager
def log_context(**fields: Any) -> Iterator[None]:
    """Bind fields (e.g. ``request_id``) into every record in scope.

    Nested contexts merge; inner bindings shadow outer ones for the
    duration of the ``with`` block only.
    """
    merged = context_fields()
    merged.update(fields)
    token = _CONTEXT.set(merged)
    try:
        yield
    finally:
        _CONTEXT.reset(token)


class StructuredLogger:
    """A named emitter of JSON-line records (see module docstring)."""

    def __init__(self, component: str):
        self.component = component

    def log(
        self,
        level: str,
        event: str,
        message: Optional[str] = None,
        **fields: Any,
    ) -> None:
        """Emit one record; non-JSON field values degrade to ``str``."""
        if LEVELS.get(level, LEVELS["info"]) < _THRESHOLD:
            return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "component": self.component,
            "event": event,
        }
        record.update(context_fields())
        record.update(fields)
        if message is not None:
            record["message"] = message
        line = json.dumps(record, default=str)
        with _LOCK:
            stream = _STREAM if _STREAM is not None else sys.stderr
            stream.write(line + "\n")
            try:
                stream.flush()
            except (OSError, ValueError):
                pass  # a closed/capture stream must not kill the emitter

    def debug(self, event: str, message: Optional[str] = None, **fields: Any) -> None:
        """Emit a DEBUG record."""
        self.log("debug", event, message, **fields)

    def info(self, event: str, message: Optional[str] = None, **fields: Any) -> None:
        """Emit an INFO record."""
        self.log("info", event, message, **fields)

    def warning(self, event: str, message: Optional[str] = None, **fields: Any) -> None:
        """Emit a WARNING record."""
        self.log("warning", event, message, **fields)

    def error(self, event: str, message: Optional[str] = None, **fields: Any) -> None:
        """Emit an ERROR record."""
        self.log("error", event, message, **fields)


def get_logger(component: str) -> StructuredLogger:
    """The (cached) structured logger for a component name."""
    logger = _LOGGERS.get(component)
    if logger is None:
        logger = _LOGGERS.setdefault(component, StructuredLogger(component))
    return logger
