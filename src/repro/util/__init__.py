"""Shared utilities: seeded RNG streams, ASCII rendering, validation.

These helpers are deliberately free of any traffic-domain knowledge so
that every other subpackage can depend on them without creating import
cycles.
"""

from repro.util.rng import RngStreams, derive_seed
from repro.util.tables import render_table
from repro.util.series import TimeSeries, render_series
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RngStreams",
    "derive_seed",
    "render_table",
    "TimeSeries",
    "render_series",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]
