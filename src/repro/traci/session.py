"""A TraCI-like session facade.

Method names follow TraCI's domains (``simulationStep``,
``trafficlight.setPhase``-style accessors, lane-area detectors, edge
halting numbers) so that code written against this facade maps
one-to-one onto a real SUMO/TraCI deployment.

Example
-------
>>> from repro.experiments import build_scenario
>>> from repro.traci import TraciSession
>>> session = TraciSession(build_scenario("I", seed=7), engine="meso")
>>> session.setPhase("J00", 1)
>>> session.simulationStep()
>>> session.getTime()
1.0
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.experiments.runner import build_engine
from repro.scenarios.core import Scenario
from repro.metrics.collector import Summary
from repro.model.phases import TRANSITION_PHASE_INDEX
from repro.model.queues import QueueObservation
from repro.util.validation import check_positive

__all__ = ["TraciSession"]


class TraciSession:
    """Drive a simulation through a TraCI-shaped API.

    Parameters
    ----------
    scenario:
        The scenario to simulate.
    engine:
        ``"meso"`` or ``"micro"``.
    step_length:
        Seconds advanced by each :meth:`simulationStep` call (TraCI's
        step length); also the observation cadence.
    """

    def __init__(
        self,
        scenario: Scenario,
        engine: str = "micro",
        step_length: float = 1.0,
    ):
        check_positive("step_length", step_length)
        self.scenario = scenario
        self.step_length = float(step_length)
        self._sim = build_engine(scenario, engine)
        self._phases: Dict[str, int] = {
            node_id: TRANSITION_PHASE_INDEX
            for node_id in scenario.network.intersections
        }
        self._subscriptions: Dict[str, List[Tuple[str, str]]] = {}
        self._closed = False

    # -- simulation domain ---------------------------------------------------

    def simulationStep(self) -> None:
        """Advance the simulation by one step under the set phases."""
        if self._closed:
            raise RuntimeError("session is closed")
        self._sim.step(self.step_length, self._phases)

    def getTime(self) -> float:
        """Current simulation time, s."""
        return self._sim.time

    def getMinExpectedNumber(self) -> int:
        """Vehicles in the network plus those still waiting to enter.

        Mirrors ``traci.simulation.getMinExpectedNumber``, commonly
        used as the loop condition of TraCI scripts.
        """
        return self._sim.vehicles_in_network() + self._sim.backlog_size()

    def close(self) -> Summary:
        """End the session; returns the run summary."""
        if not self._closed:
            self._sim.finalize()
            self._closed = True
        return self._sim.collector.summary(self._sim.time)

    # -- trafficlight domain ---------------------------------------------------

    def setPhase(self, node_id: str, phase_index: int) -> None:
        """Set the phase shown at an intersection from the next step on."""
        intersection = self.scenario.network.intersections.get(node_id)
        if intersection is None:
            raise KeyError(f"unknown traffic light {node_id!r}")
        if phase_index != TRANSITION_PHASE_INDEX:
            intersection.phase_by_index(phase_index)  # raises if unknown
        self._phases[node_id] = phase_index

    def getPhase(self, node_id: str) -> int:
        """The phase currently commanded at an intersection."""
        try:
            return self._phases[node_id]
        except KeyError:
            raise KeyError(f"unknown traffic light {node_id!r}")

    def getPhaseCount(self, node_id: str) -> int:
        """Number of control phases (excluding the transition phase)."""
        return len(self.scenario.network.intersections[node_id].phases)

    # -- detector domains --------------------------------------------------------

    def getLaneAreaJamVehicles(self, in_road: str, out_road: str) -> int:
        """Sensed queue of one dedicated turning lane (lane-area detector)."""
        obs = self._observation_for_road(in_road)
        return obs.movement_queue(in_road, out_road)

    def getLastStepHaltingNumber(self, road_id: str) -> int:
        """Halting vehicles on a road (edge domain)."""
        return self._sim.incoming_queue_total(road_id)

    def getQueueObservation(self, node_id: str) -> QueueObservation:
        """The full ``Q(k)`` of one intersection (convenience)."""
        observations = self._sim.observations()
        try:
            return observations[node_id]
        except KeyError:
            raise KeyError(f"unknown intersection {node_id!r}")

    def _observation_for_road(self, in_road: str) -> QueueObservation:
        node_id = self.scenario.network.road_destination[in_road]
        return self.getQueueObservation(node_id)

    # -- subscriptions ----------------------------------------------------------

    def subscribeJunction(self, node_id: str) -> None:
        """Subscribe to a junction's queue observation."""
        if node_id not in self.scenario.network.intersections:
            raise KeyError(f"unknown intersection {node_id!r}")
        self._subscriptions.setdefault(node_id, [])

    def getSubscriptionResults(self) -> Mapping[str, QueueObservation]:
        """Observations for every subscribed junction."""
        if not self._subscriptions:
            return {}
        observations = self._sim.observations()
        return {node_id: observations[node_id] for node_id in self._subscriptions}
