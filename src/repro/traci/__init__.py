"""TraCI-style control interface over the simulation engines.

The paper's controllers talk to SUMO through TraCI; this package
provides the equivalent facade over our engines so that control code
reads like a TraCI client: step the simulation, read lane-area
detector and edge statistics, and set traffic-light phases.  It is the
cyber-physical boundary made explicit — a controller using this API
touches nothing but sensors and actuators.
"""

from repro.traci.session import TraciSession

__all__ = ["TraciSession"]
