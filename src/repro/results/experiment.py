"""Declarative experiment definitions and their registry.

Every driver reproducing a table or figure used to hand-roll the same
three steps: build a spec list, push it through an
:class:`~repro.orchestration.pool.ExperimentPool`, and fold the
results into a domain object that a render function turns into text.
:class:`ExperimentDefinition` names that triple — *specs builder*,
*collector* (the aggregation recipe) and *renderer* — so a driver is
nothing but a definition plus a small render function, and every
definition automatically gains what the pool provides: parallel
execution, the shared :class:`~repro.results.store.ResultStore`, true
resume, and cross-driver cell sharing (two definitions that request
the same cell through one pool/store compute it once).

Definitions register by name; :func:`run_experiment` accepts either a
definition or its name.  The six built-in drivers
(``table3``, ``fig2``, ``fig34``, ``fig5``, ``ablations``,
``stability``) register when their modules import;
:func:`load_builtin_experiments` forces that for name-based lookup.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.orchestration import ExperimentPool
from repro.orchestration.spec import RunSpec

__all__ = [
    "ExperimentDefinition",
    "register_experiment",
    "experiment_names",
    "get_experiment",
    "run_experiment",
    "load_builtin_experiments",
]

#: ``(**params) -> specs`` — expands an experiment's parameters into
#: the exact sweep cells it needs.
SpecsBuilder = Callable[..., Sequence[RunSpec]]

#: ``(specs, results, params) -> domain result`` — the aggregation
#: recipe turning raw cell results into the driver's result object.
Collector = Callable[[Sequence[RunSpec], Sequence[Any], Mapping[str, Any]], Any]


@dataclass(frozen=True)
class ExperimentDefinition:
    """One declarative experiment: grid, aggregation recipe, rendering."""

    name: str
    description: str
    build_specs: SpecsBuilder
    collect: Collector
    render: Callable[[Any], str]
    #: Complete default parameter set; overrides outside this set are
    #: rejected so a typo'd parameter fails before any cell runs.
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def params(self, **overrides: Any) -> Dict[str, Any]:
        """Defaults merged with overrides (unknown overrides rejected)."""
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise ValueError(
                f"experiment {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; known: {sorted(self.defaults)}"
            )
        merged = dict(self.defaults)
        merged.update(overrides)
        return merged

    def specs(self, **overrides: Any) -> Tuple[RunSpec, ...]:
        """The sweep cells this experiment would submit."""
        return tuple(self.build_specs(**self.params(**overrides)))


_REGISTRY: Dict[str, ExperimentDefinition] = {}

#: Modules whose import registers the built-in definitions.
_BUILTIN_MODULES = (
    "repro.experiments.table3",
    "repro.experiments.fig2",
    "repro.experiments.fig34",
    "repro.experiments.fig5",
    "repro.experiments.ablations",
    "repro.experiments.stability",
    "repro.analysis.stability",
)


def register_experiment(definition: ExperimentDefinition) -> ExperimentDefinition:
    """Register a definition under its name (idempotent per name)."""
    _REGISTRY[definition.name] = definition
    return definition


def experiment_names() -> Tuple[str, ...]:
    """All registered experiment names, sorted."""
    return tuple(sorted(_REGISTRY))


def load_builtin_experiments() -> Tuple[str, ...]:
    """Import the six built-in drivers so their definitions register."""
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    return experiment_names()


def get_experiment(name: str) -> ExperimentDefinition:
    """Look up a definition by name (loading the built-ins first)."""
    load_builtin_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; known: {list(experiment_names())}"
        )


def run_experiment(
    experiment: Any,
    pool: Optional[ExperimentPool] = None,
    **overrides: Any,
) -> Any:
    """Run an experiment end to end and return its domain result.

    ``experiment`` is a definition or a registered name.  All cells go
    through ``pool`` (default: a serial in-process pool), so passing a
    store-backed pool gives every definition resume and cross-driver
    sharing for free.
    """
    definition = (
        get_experiment(experiment)
        if isinstance(experiment, str)
        else experiment
    )
    params = definition.params(**overrides)
    specs = tuple(definition.build_specs(**params))
    pool = pool or ExperimentPool()
    results = pool.run(specs)
    return definition.collect(specs, results, params)
