"""The SQLite-backed result store: one file, every completed cell.

Sweep results used to live as a flat directory of per-spec JSON blobs
with no index, no resume story and no cross-driver sharing.
:class:`ResultStore` replaces that: a single SQLite file whose rows are
keyed by the spec content hash, with indexed columns for the spec axes
(pattern, controller, engine, seed, duration) so ``query`` can answer
"every seed of this cell" without deserializing the whole store, and
JSON payload columns carrying the exact ``RunSpec.to_dict`` /
``RunResult.to_dict`` round-trip forms the orchestration layer already
uses to cross process boundaries.

Properties the sweep machinery relies on:

* **crash-safe incremental writes** — every :meth:`put` is its own
  committed transaction (WAL journal), so a sweep killed mid-flight
  leaves a readable store holding exactly the cells that finished;
* **true resume** — :class:`~repro.orchestration.pool.ExperimentPool`
  consults the store before executing, so re-running any sweep skips
  completed cells and continues where the kill happened;
* **schema-versioned entries** — rows written under an older
  ``SPEC_SCHEMA_VERSION`` are never served (and ``get`` re-checks the
  stored spec JSON against the querying spec, so even a hash collision
  cannot alias two cells);
* **one-time JSON import** — opening a store with ``import_json_dir``
  ingests a legacy per-spec JSON cache directory once, records the fact
  in the store's meta table, and never consults the directory again.

Only the parent (pool) process touches the store; worker processes
return payloads over the executor, so there is no cross-process SQLite
write contention inside a single sweep.  Concurrent *separate* sweeps
sharing a store file are serialized by SQLite itself (WAL + busy
timeout).

One writer, many readers
------------------------
The HTTP service (:mod:`repro.service`) put the store in front of
concurrent clients, which sharpened the concurrency contract:

* exactly **one** connection (the job worker's pool) writes;
* every query request opens its own **read-only** connection
  (``ResultStore(path, read_only=True)`` or :meth:`ResultStore.reader`)
  backed by SQLite's ``mode=ro`` + ``query_only`` — a reader physically
  cannot write, and under WAL it never blocks (or is blocked by) the
  writer;
* because each :meth:`put` is a single committed transaction, readers
  see whole rows or nothing — never a torn payload
  (``tests/test_results_store.py`` exercises many readers against a
  live writer).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.experiments.runner import RunResult
from repro.orchestration.spec import SPEC_SCHEMA_VERSION, RunSpec
from repro.util.logging import get_logger

__all__ = [
    "MergeError",
    "MergeStats",
    "ResultStore",
    "StoredRecord",
    "STORE_FILENAME",
]

#: Default store file name inside a cache directory.
STORE_FILENAME = "results.sqlite"

#: Layout version of the SQLite schema itself (tables/columns), kept in
#: the meta table; independent of ``SPEC_SCHEMA_VERSION``, which
#: versions the spec/result payloads stored in the rows.
STORE_LAYOUT_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    spec_hash TEXT PRIMARY KEY,
    spec_version INTEGER NOT NULL,
    pattern TEXT NOT NULL,
    controller TEXT NOT NULL,
    engine TEXT NOT NULL,
    seed INTEGER NOT NULL,
    duration REAL,
    scenario_name TEXT,
    delay_mode TEXT,
    average_queuing_time REAL,
    spec_json TEXT NOT NULL,
    result_json TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_pattern ON results (pattern);
CREATE INDEX IF NOT EXISTS idx_results_controller ON results (controller);
CREATE INDEX IF NOT EXISTS idx_results_engine ON results (engine);
CREATE INDEX IF NOT EXISTS idx_results_seed ON results (seed);
CREATE INDEX IF NOT EXISTS idx_results_duration ON results (duration);
CREATE TABLE IF NOT EXISTS store_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Sentinel distinguishing "filter on NULL duration" from "no filter".
_UNSET = object()


class MergeError(ValueError):
    """A store merge that cannot proceed: schema drift or a divergent
    payload under the default (strict) conflict policy."""


@dataclass
class MergeStats:
    """Outcome of one :meth:`ResultStore.merge_from` call.

    ``inserted`` rows were new to the destination; ``identical`` rows
    already existed byte-for-byte (the idempotent re-merge case);
    ``conflicts`` counts hashes whose payloads diverged and were
    resolved by an explicit ``prefer`` policy (strict merges raise
    before any such row is counted).
    """

    inserted: int = 0
    identical: int = 0
    conflicts: int = 0

    @property
    def total(self) -> int:
        """Source rows considered (inserted + identical + conflicts)."""
        return self.inserted + self.identical + self.conflicts

    def merge(self, other: "MergeStats") -> None:
        """Accumulate another merge's counters into this one."""
        self.inserted += other.inserted
        self.identical += other.identical
        self.conflicts += other.conflicts


@dataclass(frozen=True)
class StoredRecord:
    """One fully decoded store row: the cell and its result."""

    spec_hash: str
    spec: RunSpec
    result: RunResult
    created_at: float

    @property
    def summary(self):
        """Shortcut to the run's :class:`~repro.metrics.collector.Summary`."""
        return self.result.summary


class ResultStore:
    """A single-file SQLite store of completed sweep cells.

    Parameters
    ----------
    path:
        The SQLite file (created on first open); ``":memory:"`` builds
        an in-process store for tests and benchmarks.
    import_json_dir:
        Optional legacy per-spec JSON cache directory.  Its entries are
        imported into the store the first time this store opens with
        the directory, and never read again afterwards (the import is
        recorded in the meta table).
    read_only:
        Open the SQLite file with ``mode=ro`` + ``PRAGMA query_only``:
        the connection physically cannot write, :meth:`put` raises, and
        under WAL the reader neither blocks nor is blocked by the (one)
        writer.  The file must already exist.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        import_json_dir: Optional[Union[str, os.PathLike]] = None,
        read_only: bool = False,
    ):
        self.path = path if str(path) == ":memory:" else Path(path)
        self.read_only = bool(read_only)
        if self.read_only:
            if not isinstance(self.path, Path):
                raise ValueError("an in-memory store cannot be read-only")
            if import_json_dir is not None:
                raise ValueError(
                    "a read-only store cannot import a JSON cache dir"
                )
            self._conn = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True
            )
            # Belt and braces on top of mode=ro: even meta writes fail.
            self._conn.execute("PRAGMA query_only=ON")
            self._conn.execute("PRAGMA busy_timeout=30000")
        else:
            if isinstance(self.path, Path):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            self._conn = sqlite3.connect(str(self.path))
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            with self._conn:
                self._conn.executescript(_SCHEMA)
        layout = self._get_meta("layout_version")
        if layout is None:
            if self.read_only:
                raise ValueError(
                    f"store {self.path} has no layout version; it was "
                    f"never opened writable"
                )
            self._set_meta("layout_version", str(STORE_LAYOUT_VERSION))
        elif int(layout) > STORE_LAYOUT_VERSION:
            raise ValueError(
                f"store {self.path} uses layout version {layout}, newer "
                f"than this code understands ({STORE_LAYOUT_VERSION})"
            )
        #: Entries ingested from ``import_json_dir`` on this open.
        self.imported = 0
        if import_json_dir is not None:
            self.imported = self._maybe_import_json_dir(Path(import_json_dir))

    @classmethod
    def at_directory(cls, directory: Union[str, os.PathLike]) -> "ResultStore":
        """Open ``<directory>/results.sqlite``, importing any legacy
        per-spec JSON cache entries found in the directory (once)."""
        directory = Path(directory)
        return cls(directory / STORE_FILENAME, import_json_dir=directory)

    @classmethod
    def reader(cls, path: Union[str, os.PathLike]) -> "ResultStore":
        """Open an existing store file read-only (one per reader/request)."""
        return cls(path, read_only=True)

    @property
    def journal_mode(self) -> str:
        """The live SQLite journal mode (``"wal"`` for file stores)."""
        return str(
            self._conn.execute("PRAGMA journal_mode").fetchone()[0]
        ).lower()

    @property
    def layout_version(self) -> int:
        """The SQLite-schema layout version recorded in the meta table."""
        return int(self._get_meta("layout_version") or 0)

    # -- core API -----------------------------------------------------------

    def put(
        self, spec: RunSpec, result: Union[RunResult, Mapping[str, Any]]
    ) -> None:
        """Store one completed cell (overwrites any previous entry).

        Each call is its own committed transaction: a sweep killed
        right after ``put`` returns keeps the cell.
        """
        if self.read_only:
            raise ValueError(f"store {self.path} is open read-only")
        payload = result.to_dict() if isinstance(result, RunResult) else dict(result)
        summary = payload.get("summary") or {}
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO results VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec.spec_hash(),
                    SPEC_SCHEMA_VERSION,
                    spec.pattern,
                    spec.controller,
                    spec.engine,
                    spec.seed,
                    spec.duration,
                    payload.get("scenario_name"),
                    summary.get("delay_mode", "per-vehicle"),
                    summary.get("average_queuing_time"),
                    json.dumps(spec.to_dict(), sort_keys=True),
                    json.dumps(payload),
                    time.time(),
                ),
            )

    def _valid_row(self, spec: RunSpec, row) -> bool:
        """A row may satisfy a spec only if version and spec JSON match."""
        spec_version, spec_json = row[0], row[1]
        return (
            spec_version == SPEC_SCHEMA_VERSION
            and json.loads(spec_json) == spec.to_dict()
        )

    def get(self, spec: RunSpec) -> Optional[RunResult]:
        """The stored result for a spec, or ``None``.

        Entries written under a stale schema version (or, vanishingly
        unlikely, a colliding hash) are treated as misses.
        """
        row = self._conn.execute(
            "SELECT spec_version, spec_json, result_json FROM results "
            "WHERE spec_hash = ?",
            (spec.spec_hash(),),
        ).fetchone()
        if row is None or not self._valid_row(spec, row):
            return None
        return RunResult.from_dict(json.loads(row[2]))

    def contains(self, spec: RunSpec) -> bool:
        """True if the store holds a servable result for the spec."""
        row = self._conn.execute(
            "SELECT spec_version, spec_json FROM results WHERE spec_hash = ?",
            (spec.spec_hash(),),
        ).fetchone()
        return row is not None and self._valid_row(spec, row)

    def query(
        self,
        pattern: Optional[str] = None,
        controller: Optional[str] = None,
        engine: Optional[str] = None,
        seed: Optional[int] = None,
        duration: Any = _UNSET,
        delay_mode: Optional[str] = None,
    ) -> List[StoredRecord]:
        """All servable records matching the given spec-axis filters.

        ``duration=None`` filters on cells that ran at their scenario's
        default horizon; omit the argument to not filter on duration.
        Results come back in insertion order (then by hash) so repeated
        queries are deterministic.
        """
        clauses = ["spec_version = ?"]
        args: List[Any] = [SPEC_SCHEMA_VERSION]
        for column, value in (
            ("pattern", pattern),
            ("controller", controller),
            ("engine", engine),
            ("seed", seed),
            ("delay_mode", delay_mode),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                args.append(value)
        if duration is not _UNSET:
            if duration is None:
                clauses.append("duration IS NULL")
            else:
                clauses.append("duration = ?")
                args.append(float(duration))
        rows = self._conn.execute(
            "SELECT spec_hash, spec_json, result_json, created_at "
            f"FROM results WHERE {' AND '.join(clauses)} "
            "ORDER BY created_at, spec_hash",
            args,
        ).fetchall()
        return self._decode_all(rows)

    def records(self) -> List[StoredRecord]:
        """Every servable record in the store."""
        return self.query()

    def find(self, hash_prefix: str) -> List[StoredRecord]:
        """Records whose spec hash starts with ``hash_prefix``."""
        rows = self._conn.execute(
            "SELECT spec_hash, spec_json, result_json, created_at "
            "FROM results WHERE spec_hash LIKE ? AND spec_version = ? "
            "ORDER BY spec_hash",
            (hash_prefix + "%", SPEC_SCHEMA_VERSION),
        ).fetchall()
        return self._decode_all(rows)

    def _decode_all(self, rows) -> List[StoredRecord]:
        """Decode rows, skipping any a newer/older codebase cannot.

        A row can stop being constructible without a schema bump — a
        scenario parameter a builder dropped, a plugin engine not
        registered in this process.  One such row must not make the
        whole store unreadable, so decode failures degrade to
        omission (``get`` already treats the same rows as misses).
        """
        out = []
        for row in rows:
            try:
                out.append(
                    StoredRecord(
                        spec_hash=row[0],
                        spec=RunSpec.from_dict(json.loads(row[1])),
                        result=RunResult.from_dict(json.loads(row[2])),
                        created_at=float(row[3]),
                    )
                )
            except (KeyError, TypeError, ValueError):
                continue
        return out

    def __len__(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM results WHERE spec_version = ?",
            (SPEC_SCHEMA_VERSION,),
        ).fetchone()[0]

    # -- merging (sharded sweeps) -------------------------------------------

    #: The full results-row column list, in table order; merge copies
    #: rows verbatim so merged stores are byte-identical to stores the
    #: same cells were written into directly.
    _ROW_COLUMNS = (
        "spec_hash, spec_version, pattern, controller, engine, seed, "
        "duration, scenario_name, delay_mode, average_queuing_time, "
        "spec_json, result_json, created_at"
    )

    def merge_from(
        self,
        other: Union["ResultStore", str, os.PathLike],
        prefer: Optional[str] = None,
    ) -> MergeStats:
        """Merge every row of ``other`` into this store, keyed by spec hash.

        This is the fleet-execution join: shard sweeps write disjoint
        cells into per-shard store files, and merging them into the
        canonical store is pure bookkeeping because every row is an
        immutable, per-put-committed (spec hash -> payload) fact.

        Policy, per source row:

        * hash absent here — **inserted** verbatim (spec/result JSON
          and ``created_at`` are copied byte-for-byte, so a merged
          store is indistinguishable from one the cells were written
          into directly, and re-merging is idempotent);
        * hash present with the identical spec and result JSON —
          **skipped** (counted as ``identical``);
        * hash present with a *divergent* payload — :class:`MergeError`
          by default (two stores disagreeing about one deterministic
          cell means a code or environment drift worth stopping for);
          ``prefer="ours"`` keeps the destination row,
          ``prefer="theirs"`` takes the source row;
        * any source row written under a different
          ``SPEC_SCHEMA_VERSION`` — :class:`MergeError` naming the row
          and both versions (legacy or newer rows must be regenerated,
          not silently dropped into a store that will never serve
          them).

        ``other`` may be a live :class:`ResultStore` or a path to one
        (opened read-only for the duration).  Returns the
        :class:`MergeStats` and logs a ``store_merged`` event.
        """
        if self.read_only:
            raise ValueError(f"store {self.path} is open read-only")
        if prefer not in (None, "ours", "theirs"):
            raise ValueError(
                f"prefer must be None, 'ours' or 'theirs', got {prefer!r}"
            )
        source = other
        close_source = False
        if not isinstance(source, ResultStore):
            path = Path(source)
            if not path.exists():
                raise MergeError(f"no result store at {path}")
            # Opening read-only also validates the layout version.
            source = ResultStore.reader(path)
            close_source = True
        try:
            try:
                rows = source._conn.execute(
                    f"SELECT {self._ROW_COLUMNS} FROM results "
                    f"ORDER BY spec_hash"
                ).fetchall()
            except sqlite3.DatabaseError as error:
                raise MergeError(
                    f"{source.path} is not a readable result store: {error}"
                ) from None
            stats = MergeStats()
            to_insert = []
            for row in rows:
                spec_hash, spec_version = row[0], row[1]
                if spec_version != SPEC_SCHEMA_VERSION:
                    raise MergeError(
                        f"row {spec_hash[:16]}... in {source.path} was "
                        f"written under spec schema version {spec_version}; "
                        f"this code stores version {SPEC_SCHEMA_VERSION} — "
                        f"regenerate the source store instead of merging "
                        f"stale rows"
                    )
                mine = self._conn.execute(
                    "SELECT spec_json, result_json FROM results "
                    "WHERE spec_hash = ?",
                    (spec_hash,),
                ).fetchone()
                if mine is None:
                    to_insert.append(row)
                    stats.inserted += 1
                elif mine[0] == row[10] and mine[1] == row[11]:
                    stats.identical += 1
                else:
                    if prefer is None:
                        raise MergeError(
                            f"divergent payload for spec {spec_hash[:16]}... "
                            f"between {self.path} and {source.path}; the "
                            f"cells of a deterministic sweep cannot "
                            f"disagree unless code or environment drifted "
                            f"— pass prefer='ours'/'theirs' to resolve "
                            f"explicitly"
                        )
                    stats.conflicts += 1
                    if prefer == "theirs":
                        to_insert.append(row)
            if to_insert:
                # One transaction: merge is idempotent, so a crash
                # mid-merge is safely re-run; per-row commits would
                # only slow the fleet join down.
                with self._conn:
                    self._conn.executemany(
                        "INSERT OR REPLACE INTO results VALUES "
                        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        to_insert,
                    )
            get_logger("store").info(
                "store_merged",
                source=str(source.path),
                dest=str(self.path),
                inserted=stats.inserted,
                identical=stats.identical,
                conflicts=stats.conflicts,
                prefer=prefer,
            )
            return stats
        finally:
            if close_source:
                source.close()

    def __iter__(self) -> Iterator[StoredRecord]:
        return iter(self.records())

    # -- reporting views ----------------------------------------------------

    def overview(self) -> List[Dict[str, Any]]:
        """Per (pattern, controller, engine) roll-up for ``results list``."""
        rows = self._conn.execute(
            "SELECT pattern, controller, engine, COUNT(*), "
            "COUNT(DISTINCT seed), GROUP_CONCAT(DISTINCT delay_mode), "
            "AVG(average_queuing_time) "
            "FROM results WHERE spec_version = ? "
            "GROUP BY pattern, controller, engine "
            "ORDER BY pattern, controller, engine",
            (SPEC_SCHEMA_VERSION,),
        ).fetchall()
        return [
            {
                "pattern": pattern,
                "controller": controller,
                "engine": engine,
                "cells": cells,
                "seeds": seeds,
                "delay_mode": modes,
                "mean_avg_queuing_time": mean_queuing,
            }
            for pattern, controller, engine, cells, seeds, modes, mean_queuing
            in rows
        ]

    def export_rows(self) -> List[Dict[str, Any]]:
        """Tidy per-cell rows (spec axes + summary metrics) for export.

        Reads the indexed columns and the summary sub-dict directly —
        no :class:`RunSpec`/:class:`RunResult` reconstruction — so
        export stays cheap for trace-heavy cells and keeps working for
        rows whose spec no longer constructs under this codebase.
        ``duration`` is the *spec axis* (empty = scenario default);
        the run's actual horizon is exported as ``horizon``.

        Rows are ordered by spec hash — a pure function of the cells,
        not of completion timing — so the export of a given cell set is
        byte-identical however it was computed: serial, process
        -parallel, or sharded across a fleet and merged.
        """
        rows = self._conn.execute(
            "SELECT spec_hash, pattern, controller, engine, seed, "
            "duration, scenario_name, spec_json, result_json "
            "FROM results WHERE spec_version = ? "
            "ORDER BY spec_hash",
            (SPEC_SCHEMA_VERSION,),
        ).fetchall()
        out = []
        for (
            spec_hash,
            pattern,
            controller,
            engine,
            seed,
            duration,
            scenario_name,
            spec_json,
            result_json,
        ) in rows:
            spec_payload = json.loads(spec_json)
            summary = dict(json.loads(result_json).get("summary") or {})
            row: Dict[str, Any] = {
                "spec_hash": spec_hash,
                "pattern": pattern,
                "controller": controller,
                "controller_params": ",".join(
                    f"{k}={v}"
                    for k, v in spec_payload.get("controller_params", [])
                ),
                "engine": engine,
                "seed": seed,
                "duration": duration,
                "scenario_name": scenario_name,
            }
            # Summary carries its own "duration" (the actual horizon);
            # exported under a distinct name so it cannot shadow the
            # duration *axis* above.
            if "duration" in summary:
                summary["horizon"] = summary.pop("duration")
            row.update(summary)
            out.append(row)
        return out

    # -- meta / migration ---------------------------------------------------

    def _get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO store_meta VALUES (?, ?)",
                (key, value),
            )

    def _maybe_import_json_dir(self, directory: Path) -> int:
        """Ingest a legacy per-spec JSON cache directory, exactly once.

        Returns the number of entries imported on this call (0 when
        the directory was already imported, does not exist, or holds
        nothing usable).  The directory is never read again after the
        first import — resuming sweeps consult only the store.
        """
        key = f"imported-json:{directory.resolve()}"
        if self._get_meta(key) is not None:
            return 0
        count = 0
        candidates = (
            sorted(directory.glob("*.json")) if directory.is_dir() else []
        )
        for path in candidates:
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # unreadable legacy entries are skipped
            if (
                not isinstance(entry, dict)
                or entry.get("version") != SPEC_SCHEMA_VERSION
                or "spec" not in entry
                or "result" not in entry
            ):
                continue
            try:
                spec = RunSpec.from_dict(entry["spec"])
            except (KeyError, TypeError, ValueError):
                continue
            if not self.contains(spec):
                self.put(spec, entry["result"])
                count += 1
        if candidates:
            # Mark done only once legacy files were actually seen: a
            # store opened over a still-empty directory must import a
            # cache that gets copied in later, while a dir scanned
            # with entries is one-shot — never consulted again.
            self._set_meta(key, str(count))
        return count

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r}, entries={len(self)})"
