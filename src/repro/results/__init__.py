"""The results subsystem: store, aggregate, declare.

Map of the package
------------------
* :mod:`repro.results.store` — **where results live.**
  :class:`ResultStore`: a single SQLite file keyed by spec content
  hash, with indexed spec-axis columns (pattern / controller / engine /
  seed / duration) and JSON payload columns using the existing
  ``to_dict`` round-trips.  ``put`` / ``get`` / ``contains`` /
  ``query``, crash-safe per-entry commits, and a one-time import of
  legacy per-spec JSON cache directories.  The
  :class:`~repro.orchestration.pool.ExperimentPool` consults a store
  before executing, which is what makes every sweep resumable: kill it
  mid-flight, re-run it, and only the missing cells compute.

* :mod:`repro.results.aggregate` — **how results reduce.**
  :func:`aggregate`: group-by over any spec axes with mean / sample
  std / 95 % CI across the remaining ones (typically seeds), explicit
  ``delay_mode`` handling so per-vehicle and Little's-law travel-time
  estimates are never silently averaged together
  (:class:`MixedDelayModeError` / ``on_mixed_delay_mode="split"``), and
  tidy row output feeding :func:`repro.util.tables.render_table` or CSV
  export.

* :mod:`repro.results.experiment` — **how experiments are declared.**
  :class:`ExperimentDefinition` (name, specs builder, aggregation
  recipe, renderer) and its registry.  All six paper drivers (table3,
  fig2, fig34, fig5, ablations, stability) are definitions;
  :func:`run_experiment` executes any of them against a shared pool and
  store, so cells common to several drivers are computed exactly once.

Command-line surface: ``repro sweep --store/--cache-dir`` fills a
store, ``repro results {list,show,export}`` inspects one, and
``scripts/collect_results.py --store`` runs every driver against the
same file.
"""

from repro.results.aggregate import (
    AXES,
    DEFAULT_METRICS,
    DELAY_MODE_SENSITIVE,
    MetricStats,
    MixedDelayModeError,
    aggregate,
    tidy_table,
)
from repro.results.experiment import (
    ExperimentDefinition,
    experiment_names,
    get_experiment,
    load_builtin_experiments,
    register_experiment,
    run_experiment,
)
from repro.results.store import (
    STORE_FILENAME,
    MergeError,
    MergeStats,
    ResultStore,
    StoredRecord,
)

__all__ = [
    "ResultStore",
    "StoredRecord",
    "MergeError",
    "MergeStats",
    "STORE_FILENAME",
    "aggregate",
    "tidy_table",
    "MetricStats",
    "MixedDelayModeError",
    "AXES",
    "DEFAULT_METRICS",
    "DELAY_MODE_SENSITIVE",
    "ExperimentDefinition",
    "register_experiment",
    "experiment_names",
    "get_experiment",
    "run_experiment",
    "load_builtin_experiments",
]
