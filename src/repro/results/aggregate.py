"""Shared aggregation over sweep cells: group-by, mean/std/CI, tidy rows.

Every figure and table in the paper is an aggregation of the same
(scenario x controller x engine x seed) cells; this module is the one
place that aggregation lives.  :func:`aggregate` groups ``(spec,
result)`` pairs (or :class:`~repro.results.store.StoredRecord` s) by
any spec axes and reduces each requested summary metric across the
group — typically across seeds — to mean, sample standard deviation
and a normal-approximation 95 % confidence interval.

Delay-mode safety
-----------------
The two engines report travel time with different semantics:
``per-vehicle`` summaries average true per-vehicle travel times, while
``aggregate`` (counts-engine) summaries carry a Little's-law estimate
and no per-vehicle maximum.  Blending the two silently would produce a
number with neither meaning, so when a group mixes delay modes and a
delay-mode-sensitive metric is requested, :func:`aggregate` either
**raises** :class:`MixedDelayModeError` (the default) or **splits** the
group on the ``delay_mode`` axis (``on_mixed_delay_mode="split"``) —
never blends.

Output is tidy: one plain dict per group with the axis values, the
group size and ``<metric>_mean/_std/_ci95`` columns, ready for
:func:`repro.util.tables.render_table` (via :func:`tidy_table`), CSV
export or any dataframe library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "AXES",
    "DEFAULT_METRICS",
    "DELAY_MODE_SENSITIVE",
    "MetricStats",
    "MixedDelayModeError",
    "aggregate",
    "tidy_table",
]


def _controller_params_label(spec, result) -> str:
    return ",".join(f"{k}={v}" for k, v in spec.controller_params) or "-"


#: Axis name -> value extractor over one ``(spec, result)`` cell.
AXES = {
    "pattern": lambda spec, result: spec.pattern,
    "controller": lambda spec, result: spec.controller,
    "controller_params": _controller_params_label,
    "engine": lambda spec, result: spec.engine,
    "seed": lambda spec, result: spec.seed,
    "duration": lambda spec, result: spec.duration,
    "mini_slot": lambda spec, result: spec.mini_slot,
    "scenario": lambda spec, result: result.scenario_name,
    "delay_mode": lambda spec, result: result.summary.delay_mode,
}

#: Summary fields aggregated when the caller does not choose.
DEFAULT_METRICS: Tuple[str, ...] = (
    "average_queuing_time",
    "average_travel_time",
    "throughput_per_hour",
)

#: Summary fields whose meaning differs between delay modes: travel
#: time is exact per-vehicle in one and a Little's-law estimate in the
#: other; max queuing time is unavailable to the counts engine.
DELAY_MODE_SENSITIVE = frozenset({"average_travel_time", "max_queuing_time"})


class MixedDelayModeError(ValueError):
    """A group mixes per-vehicle and aggregate travel-time semantics."""


@dataclass(frozen=True)
class MetricStats:
    """Mean / sample std / normal-approximation 95 % CI of one metric."""

    mean: float
    std: float
    ci95: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricStats":
        """Compute the stats of one metric across a group's cells."""
        n = len(values)
        if n == 0:
            raise ValueError("cannot aggregate an empty value list")
        mean = sum(values) / n
        if n > 1:
            std = math.sqrt(
                sum((v - mean) ** 2 for v in values) / (n - 1)
            )
        else:
            std = 0.0
        ci95 = 1.96 * std / math.sqrt(n)
        return cls(mean=mean, std=std, ci95=ci95, n=n)


def _as_pair(record):
    """Accept ``StoredRecord`` s and plain ``(spec, result)`` pairs."""
    if hasattr(record, "spec") and hasattr(record, "result"):
        return record.spec, record.result
    spec, result = record
    return spec, result


def aggregate(
    records: Iterable[Any],
    by: Sequence[str] = ("pattern", "controller", "engine"),
    metrics: Sequence[str] = DEFAULT_METRICS,
    on_mixed_delay_mode: str = "raise",
) -> List[Dict[str, Any]]:
    """Group cells by spec axes and reduce metrics across each group.

    Parameters
    ----------
    records:
        ``(spec, result)`` pairs or :class:`StoredRecord` s — e.g.
        ``zip(grid.specs(), pool.run(grid.specs()))`` or
        ``store.query(...)``.
    by:
        Axis names from :data:`AXES` forming the group key; whatever
        is *not* in the key (typically ``seed``) is aggregated across.
    metrics:
        :class:`~repro.metrics.collector.Summary` field names to
        reduce.
    on_mixed_delay_mode:
        ``"raise"`` (default) fails with :class:`MixedDelayModeError`
        when a group mixes delay modes and a delay-mode-sensitive
        metric is requested; ``"split"`` adds ``delay_mode`` to the
        group key instead.  Blending is never an option.

    Returns
    -------
    One tidy dict per group, sorted by group key: axis columns, ``n``
    (cells in the group), ``delay_mode``, and
    ``<metric>_mean/_std/_ci95`` for every requested metric.
    """
    if on_mixed_delay_mode not in ("raise", "split"):
        raise ValueError(
            f"on_mixed_delay_mode must be 'raise' or 'split', "
            f"got {on_mixed_delay_mode!r}"
        )
    by = tuple(by)
    unknown_axes = [axis for axis in by if axis not in AXES]
    if unknown_axes:
        raise ValueError(
            f"unknown aggregation axes {unknown_axes}; known: {sorted(AXES)}"
        )
    sensitive_requested = any(m in DELAY_MODE_SENSITIVE for m in metrics)
    if (
        on_mixed_delay_mode == "split"
        and sensitive_requested
        and "delay_mode" not in by
    ):
        by = by + ("delay_mode",)

    groups: Dict[Tuple[Any, ...], List[Tuple[Any, Any]]] = {}
    for record in records:
        spec, result = _as_pair(record)
        key = tuple(AXES[axis](spec, result) for axis in by)
        groups.setdefault(key, []).append((spec, result))

    rows: List[Dict[str, Any]] = []
    for key in sorted(groups, key=lambda k: tuple(str(v) for v in k)):
        members = groups[key]
        modes = sorted({result.summary.delay_mode for _, result in members})
        if len(modes) > 1 and sensitive_requested:
            # on_mixed_delay_mode == "split" cannot reach here: the
            # delay_mode axis is already part of the group key then.
            label = ", ".join(
                f"{axis}={value}" for axis, value in zip(by, key)
            )
            raise MixedDelayModeError(
                f"group ({label}) mixes delay modes {modes}: per-vehicle "
                f"and Little's-law travel-time estimates must not be "
                f"averaged together — aggregate with "
                f"on_mixed_delay_mode='split', add 'delay_mode' to the "
                f"group axes, or drop the delay-mode-sensitive metrics "
                f"({sorted(DELAY_MODE_SENSITIVE)})"
            )
        row: Dict[str, Any] = dict(zip(by, key))
        row["n"] = len(members)
        if "delay_mode" not in by:
            row["delay_mode"] = modes[0] if len(modes) == 1 else "mixed"
        for metric in metrics:
            values = [
                getattr(result.summary, metric) for _, result in members
            ]
            stats = MetricStats.from_values(values)
            row[f"{metric}_mean"] = stats.mean
            row[f"{metric}_std"] = stats.std
            row[f"{metric}_ci95"] = stats.ci95
        rows.append(row)
    return rows


def tidy_table(
    rows: Sequence[Dict[str, Any]], float_format: str = ".2f"
) -> Tuple[Tuple[str, ...], List[Tuple[str, ...]]]:
    """Tidy rows as ``(headers, string rows)`` for ``render_table``."""
    if not rows:
        return (), []
    headers = tuple(rows[0])

    def fmt(value: Any) -> str:
        """Format one cell value for the tidy table."""
        if isinstance(value, float):
            return format(value, float_format)
        if value is None:
            return "-"
        return str(value)

    return headers, [
        tuple(fmt(row.get(header)) for header in headers) for row in rows
    ]
