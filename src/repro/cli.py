"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        one scenario under one controller, print the summary
table3     reproduce Table III
fig2       reproduce Fig. 2 (period sweep)
fig34      reproduce Figs. 3-4 (phase traces)
fig5       reproduce Fig. 5 (queue trace)
ablations  run a named ablation study
stability  demand-scale stability sweep
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.control.factory import CONTROLLER_NAMES

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'CPS-oriented Modeling and Control of Traffic "
            "Signals Using Adaptive Back Pressure' (DATE 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario/controller")
    run.add_argument("--pattern", default="I")
    run.add_argument("--controller", choices=CONTROLLER_NAMES, default="util-bp")
    run.add_argument("--period", type=float, default=None,
                     help="control period for fixed-slot controllers")
    run.add_argument("--engine", choices=("meso", "micro"), default="meso")
    run.add_argument("--duration", type=float, default=1800.0)
    run.add_argument("--seed", type=int, default=1)

    table3 = sub.add_parser("table3", help="reproduce Table III")
    table3.add_argument("--engine", choices=("meso", "micro"), default="meso")
    table3.add_argument("--scale", type=float, default=1.0)
    table3.add_argument("--seed", type=int, default=1)

    fig2 = sub.add_parser("fig2", help="reproduce Fig. 2")
    fig2.add_argument("--engine", choices=("meso", "micro"), default="meso")
    fig2.add_argument("--segment", type=float, default=3600.0)
    fig2.add_argument("--seed", type=int, default=1)

    fig34 = sub.add_parser("fig34", help="reproduce Figs. 3-4")
    fig34.add_argument("--engine", choices=("meso", "micro"), default="micro")
    fig34.add_argument("--duration", type=float, default=2000.0)
    fig34.add_argument("--seed", type=int, default=1)

    fig5 = sub.add_parser("fig5", help="reproduce Fig. 5")
    fig5.add_argument("--engine", choices=("meso", "micro"), default="micro")
    fig5.add_argument("--duration", type=float, default=2000.0)
    fig5.add_argument("--seed", type=int, default=1)

    ablations = sub.add_parser("ablations", help="run an ablation study")
    ablations.add_argument("study", nargs="?", default=None,
                           help="study name (default: all)")
    ablations.add_argument("--duration", type=float, default=1800.0)

    stability = sub.add_parser("stability", help="demand-scale sweep")
    stability.add_argument("--duration", type=float, default=1200.0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "run":
        from repro.experiments import build_scenario, run_scenario

        params = {}
        if args.period is not None:
            params["period"] = args.period
        result = run_scenario(
            build_scenario(args.pattern, seed=args.seed),
            controller=args.controller,
            controller_params=params,
            duration=args.duration,
            engine=args.engine,
        )
        print(result.summary)
        print(
            f"average queuing time: {result.average_queuing_time:.2f} s, "
            f"amber share: {result.network_utilization().amber_share:.3f}"
        )
        return 0

    if args.command == "table3":
        from repro.experiments.table3 import render_table3, run_table3

        rows = run_table3(
            engine=args.engine, seed=args.seed, duration_scale=args.scale
        )
        print(render_table3(rows))
        return 0

    if args.command == "fig2":
        from repro.experiments.fig2 import render_fig2, run_fig2

        print(
            render_fig2(
                run_fig2(
                    engine=args.engine,
                    seed=args.seed,
                    segment_duration=args.segment,
                )
            )
        )
        return 0

    if args.command == "fig34":
        from repro.experiments.fig34 import render_fig34, run_fig34

        print(
            render_fig34(
                run_fig34(
                    engine=args.engine,
                    duration=args.duration,
                    seed=args.seed,
                )
            )
        )
        return 0

    if args.command == "fig5":
        from repro.experiments.fig5 import render_fig5, run_fig5

        print(
            render_fig5(
                run_fig5(
                    engine=args.engine,
                    duration=args.duration,
                    seed=args.seed,
                )
            )
        )
        return 0

    if args.command == "ablations":
        from repro.experiments.ablations import (
            ABLATIONS,
            render_ablation,
            run_ablation,
        )

        studies = [args.study] if args.study else list(ABLATIONS)
        for study in studies:
            print(render_ablation(run_ablation(study, duration=args.duration)))
            print()
        return 0

    if args.command == "stability":
        from repro.experiments.stability import (
            render_stability,
            run_stability_sweep,
        )

        print(render_stability(run_stability_sweep(duration=args.duration)))
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
