"""Command-line interface: ``python -m repro <command>``.

Commands
--------
run        one scenario under one controller, print the summary
sweep      run a (workload x controller x seed) grid on the worker pool
           (--shard i/N runs one deterministic grid shard; --fleet N
           runs all N shards as subprocesses with per-shard stores and
           merges them into --store)
results    inspect a result store (list / show / export / merge)
analyze    regime-shift analytics over a store (changepoint verdicts)
scenarios  list/inspect the scenario catalog (repro.scenarios)
serve      run the simulation service (HTTP submission/query server)
submit     submit specs/grids to a running service
jobs       list or inspect jobs on a running service
table3     reproduce Table III
fig2       reproduce Fig. 2 (period sweep)
fig34      reproduce Figs. 3-4 (phase traces)
fig5       reproduce Fig. 5 (queue trace)
ablations  run a named ablation study
stability  demand-scale stability sweep

Every sweep-shaped command accepts ``--workers N`` (process-parallel
execution) and ``--store FILE``, the canonical persistence option
naming the SQLite result store; completed cells are committed
incrementally and a re-invoked sweep resumes by computing only the
missing cells.  ``--cache-dir DIR`` is a **deprecated** alias that
opens ``DIR/results.sqlite`` (importing any legacy per-spec JSON cache
entries found there, once) and emits a ``DeprecationWarning``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.control.factory import CONTROLLER_NAMES
from repro.core.engine import ENGINE_NAMES

__all__ = ["build_parser", "main"]


class _VersionAction(argparse.Action):
    """``--version`` printing both package and API versions.

    Custom (instead of ``action="version"``) so :mod:`repro.api` is
    imported only when the flag is actually used — parser construction
    stays cheap for every other invocation.
    """

    def __init__(self, option_strings, dest, **kwargs):
        """Configure as a zero-argument, exiting flag."""
        kwargs.setdefault("nargs", 0)
        kwargs.setdefault("help", "print package and API versions, then exit")
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        """Print ``repro <pkg-version> (api <API_VERSION>)`` and exit."""
        from repro.api import API_VERSION, package_version

        print(f"repro {package_version()} (api {API_VERSION})")
        parser.exit(0)


def _add_pool_options(parser: argparse.ArgumentParser) -> None:
    """Worker-pool options shared by every sweep-shaped command."""
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial in-process)",
    )
    parser.add_argument(
        "--store", default=None, metavar="FILE",
        help=(
            "SQLite result store (the canonical persistence option); "
            "completed cells are committed incrementally and never "
            "re-simulated (wins over --cache-dir)"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=(
            "DEPRECATED alias for --store: opens DIR/results.sqlite "
            "(importing legacy per-spec JSON cache entries once) and "
            "emits a DeprecationWarning; use --store FILE instead"
        ),
    )
    parser.add_argument(
        "--batch-size", type=int, default=16,
        help=(
            "maximum seed-batch width: same-cell/different-seed specs on "
            "a batch-capable engine (meso-vec) are stepped as one batched "
            "simulation (1 disables grouping; default 16)"
        ),
    )


def _make_pool(args: argparse.Namespace):
    import warnings

    from repro.orchestration import ExperimentPool

    store = getattr(args, "store", None)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None and store is None:
        # Convert here (not via the pool's own deprecated keyword) so
        # the warning names the CLI flag the user actually typed.
        warnings.warn(
            "--cache-dir is deprecated; pass --store FILE instead "
            "(legacy JSON entries in the directory are imported once)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.results import ResultStore

        store = ResultStore.at_directory(cache_dir)
    return ExperimentPool(
        workers=args.workers,
        store=store,
        batch_size=getattr(args, "batch_size", 16),
    )


def _parse_pattern_token(token: str) -> str:
    """Validate a --patterns entry eagerly (before any cell runs)."""
    from repro.experiments.patterns import PATTERN_NAMES

    if token not in PATTERN_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown pattern {token!r}; known: {list(PATTERN_NAMES)}"
        )
    return token


def _parse_scenario_token(token: str) -> str:
    """Validate a --scenario entry against the catalog (incl. dynamic)."""
    from repro.scenarios import is_scenario_name, scenario_names

    if not is_scenario_name(token):
        raise argparse.ArgumentTypeError(
            f"unknown scenario {token!r}; known: {list(scenario_names())} "
            f"(or <family>-<R>x<C>)"
        )
    return token


def _parse_shard_token(token: str) -> str:
    """Validate an INDEX/COUNT shard designator (kept as its text form)."""
    from repro.orchestration.spec import parse_shard

    try:
        parse_shard(token)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))
    return token


def _parse_controller_token(token: str) -> tuple:
    """Parse ``name`` or ``name:key=val,key=val`` into ``(name, params)``."""
    name, _, params_text = token.partition(":")
    if name not in CONTROLLER_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown controller {name!r}; known: {list(CONTROLLER_NAMES)}"
        )
    params: Dict[str, Any] = {}
    if params_text:
        for item in params_text.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise argparse.ArgumentTypeError(
                    f"malformed controller parameter {item!r} "
                    f"(expected key=value)"
                )
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return name, params


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'CPS-oriented Modeling and Control of Traffic "
            "Signals Using Adaptive Back Pressure' (DATE 2020)"
        ),
    )
    parser.add_argument("--version", action=_VersionAction)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one scenario/controller")
    run.add_argument("--pattern", default="I")
    run.add_argument("--controller", choices=CONTROLLER_NAMES, default="util-bp")
    run.add_argument("--period", type=float, default=None,
                     help="control period for fixed-slot controllers")
    run.add_argument("--engine", choices=ENGINE_NAMES, default="meso")
    run.add_argument("--duration", type=float, default=1800.0)
    run.add_argument("--seed", type=int, default=1)

    sweep = sub.add_parser(
        "sweep",
        help="run a (pattern x controller x seed) grid on the worker pool",
    )
    sweep.add_argument(
        "--patterns", nargs="+", type=_parse_pattern_token, default=None,
        help="traffic patterns (I II III IV mixed)",
    )
    sweep.add_argument(
        "--scenario", "--scenarios", dest="scenarios", nargs="+",
        type=_parse_scenario_token, default=None, metavar="NAME",
        help=(
            "catalog scenarios (see 'repro scenarios list'), e.g. "
            "surge-4x4 tidal-6x6; combined with --patterns"
        ),
    )
    sweep.add_argument(
        "--load", type=float, default=None,
        help="demand load level forwarded to catalog scenarios",
    )
    sweep.add_argument(
        "--controllers", nargs="+", type=_parse_controller_token,
        default=[("util-bp", {})], metavar="NAME[:key=val,...]",
        help="controllers, e.g. util-bp cap-bp:period=18",
    )
    sweep.add_argument("--seeds", nargs="+", type=int, default=[1])
    sweep.add_argument(
        "--engine", "--engines", dest="engine", nargs="+",
        choices=ENGINE_NAMES, default=["meso"], metavar="ENGINE",
        help=(
            "engines axis of the grid; several names sweep every "
            f"workload on each of them (known: {', '.join(ENGINE_NAMES)})"
        ),
    )
    sweep.add_argument("--duration", type=float, default=1800.0)
    sweep.add_argument(
        "--record-entry-queues", type=int, default=0, metavar="N",
        help=(
            "record queue traces at each workload's entry roads "
            "(0 = off, -1 = all entries, n = the first n) — the input "
            "'repro analyze changepoints' needs"
        ),
    )
    scale_out = sweep.add_mutually_exclusive_group()
    scale_out.add_argument(
        "--shard", type=_parse_shard_token, default=None, metavar="I/N",
        help=(
            "run only the I-th of N deterministic grid shards "
            "(zero-based, e.g. 0/4): the spec-content-hash partition is "
            "identical on every host, so N hosts running 0/N..N-1/N "
            "against their own stores cover the grid exactly once; "
            "merge the stores with 'repro results merge'"
        ),
    )
    scale_out.add_argument(
        "--fleet", type=int, default=None, metavar="N",
        help=(
            "local fleet execution: split the grid into N shards, run "
            "each in its own subprocess against its own store file "
            "(--workers processes per shard), then merge everything "
            "into --store (required) and print the table from it"
        ),
    )
    sweep.add_argument(
        "--aggregate", nargs="?", const="pattern,controller,engine",
        default=None, metavar="AXES",
        help=(
            "also print mean/std/ci95 across the cells of each group, "
            "grouped by the comma-separated spec axes (default group: "
            "pattern,controller,engine — i.e. aggregate across seeds)"
        ),
    )
    _add_pool_options(sweep)

    results = sub.add_parser(
        "results", help="inspect a result store (list/show/export)"
    )
    results_sub = results.add_subparsers(
        dest="results_command", required=True
    )

    def _add_store_argument(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--store", default="results.sqlite", metavar="FILE",
            help="the SQLite result store to read (default: results.sqlite)",
        )

    rlist = results_sub.add_parser(
        "list", help="roll up the store per (pattern, controller, engine)"
    )
    _add_store_argument(rlist)
    show = results_sub.add_parser(
        "show", help="print one stored cell (spec + summary) by hash prefix"
    )
    show.add_argument("hash_prefix", help="spec-hash prefix (repro results list/export shows hashes)")
    _add_store_argument(show)
    merge = results_sub.add_parser(
        "merge",
        help=(
            "merge shard stores into OUT by spec hash (idempotent; "
            "divergent payloads error unless --prefer says otherwise)"
        ),
    )
    merge.add_argument(
        "output", metavar="OUT",
        help="destination store file (created if missing)",
    )
    merge.add_argument(
        "inputs", nargs="+", metavar="IN",
        help="source store files (e.g. per-shard stores of a fleet run)",
    )
    merge.add_argument(
        "--prefer", choices=("ours", "theirs"), default=None,
        help=(
            "conflict policy for hashes whose payloads diverge: keep "
            "the destination row (ours) or take the source row "
            "(theirs); without this flag a divergent payload aborts "
            "the merge"
        ),
    )
    export = results_sub.add_parser(
        "export", help="dump tidy per-cell rows as CSV or JSON"
    )
    _add_store_argument(export)
    export.add_argument(
        "--format", choices=("csv", "json"), default="csv",
        help="output format (default csv)",
    )
    export.add_argument(
        "--output", default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )

    scenarios = sub.add_parser(
        "scenarios", help="inspect the scenario catalog"
    )
    scenarios_sub = scenarios.add_subparsers(
        dest="scenarios_command", required=True
    )
    scenarios_sub.add_parser("list", help="list all catalog scenarios")
    show = scenarios_sub.add_parser(
        "show", help="build one scenario and print its shape"
    )
    show.add_argument("name", type=_parse_scenario_token)
    show.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="run the simulation service (HTTP submission/query server)",
    )
    serve.add_argument(
        "--store", default="results.sqlite", metavar="FILE",
        help="SQLite result store backing the service (created if missing)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8000,
        help="listening port (0 = pick an ephemeral port)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per job (1 = serial in-process)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=16,
        help="seed-batch width forwarded to the job pool",
    )

    def _add_url_argument(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--url", default="http://127.0.0.1:8000", metavar="URL",
            help="base URL of a running 'repro serve' instance",
        )

    submit = sub.add_parser(
        "submit", help="submit a spec/grid to a running service"
    )
    _add_url_argument(submit)
    submit.add_argument(
        "--json", dest="json_file", default=None, metavar="FILE",
        help=(
            "submission body file ('-' = stdin) carrying {'spec': ...}, "
            "{'specs': [...]} or {'grid': ...}; overrides the grid flags"
        ),
    )
    submit.add_argument(
        "--patterns", nargs="+", type=_parse_pattern_token, default=None,
        help="traffic patterns (I II III IV mixed)",
    )
    submit.add_argument(
        "--scenario", "--scenarios", dest="scenarios", nargs="+",
        type=_parse_scenario_token, default=None, metavar="NAME",
        help="catalog scenarios, e.g. steady-4x4 surge-3x3",
    )
    submit.add_argument(
        "--controllers", nargs="+", type=_parse_controller_token,
        default=[("util-bp", {})], metavar="NAME[:key=val,...]",
    )
    submit.add_argument("--seeds", nargs="+", type=int, default=[1])
    submit.add_argument(
        "--engine", "--engines", dest="engine", nargs="+",
        choices=ENGINE_NAMES, default=["meso"], metavar="ENGINE",
    )
    submit.add_argument("--duration", type=float, default=1800.0)
    submit.add_argument(
        "--shard", type=_parse_shard_token, default=None, metavar="I/N",
        help=(
            "submit only the I-th of N deterministic grid shards "
            "(zero-based); the service expands the same spec-hash "
            "partition 'repro sweep --shard' uses"
        ),
    )
    submit.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="block until the job is terminal (polling the service)",
    )

    jobs = sub.add_parser(
        "jobs", help="list or inspect jobs on a running service"
    )
    _add_url_argument(jobs)
    jobs.add_argument(
        "job_id", nargs="?", default=None,
        help="job to describe (omit to list all jobs)",
    )
    jobs.add_argument(
        "--events", action="store_true",
        help="print the job's recorded events (requires a job id)",
    )

    table3 = sub.add_parser("table3", help="reproduce Table III")
    table3.add_argument("--engine", choices=ENGINE_NAMES, default="meso")
    table3.add_argument("--scale", type=float, default=1.0)
    table3.add_argument("--seed", type=int, default=1)
    _add_pool_options(table3)

    fig2 = sub.add_parser("fig2", help="reproduce Fig. 2")
    fig2.add_argument("--engine", choices=ENGINE_NAMES, default="meso")
    fig2.add_argument("--segment", type=float, default=3600.0)
    fig2.add_argument("--seed", type=int, default=1)
    _add_pool_options(fig2)

    fig34 = sub.add_parser("fig34", help="reproduce Figs. 3-4")
    fig34.add_argument("--engine", choices=ENGINE_NAMES, default="micro")
    fig34.add_argument("--duration", type=float, default=2000.0)
    fig34.add_argument("--seed", type=int, default=1)
    _add_pool_options(fig34)

    fig5 = sub.add_parser("fig5", help="reproduce Fig. 5")
    fig5.add_argument("--engine", choices=ENGINE_NAMES, default="micro")
    fig5.add_argument("--duration", type=float, default=2000.0)
    fig5.add_argument("--seed", type=int, default=1)
    _add_pool_options(fig5)

    ablations = sub.add_parser("ablations", help="run an ablation study")
    ablations.add_argument("study", nargs="?", default=None,
                           help="study name (default: all)")
    ablations.add_argument("--duration", type=float, default=1800.0)
    _add_pool_options(ablations)

    stability = sub.add_parser("stability", help="demand-scale sweep")
    stability.add_argument("--duration", type=float, default=1200.0)
    _add_pool_options(stability)

    analyze = sub.add_parser(
        "analyze",
        help="regime-shift analytics over a result store (repro.analysis)",
    )
    analyze_sub = analyze.add_subparsers(
        dest="analyze_command", required=True
    )
    changepoints = analyze_sub.add_parser(
        "changepoints",
        help=(
            "CUSUM stability verdicts per (workload, controller, load) "
            "cell: stable | breakdown@t* [CI] | insufficient-data"
        ),
    )
    changepoints.add_argument(
        "--store", default="results.sqlite", metavar="FILE",
        help="the SQLite result store to analyze (default: results.sqlite)",
    )
    changepoints.add_argument(
        "--pattern", default=None, help="restrict to one workload")
    changepoints.add_argument(
        "--controller", default=None, help="restrict to one controller")
    changepoints.add_argument(
        "--engine", default=None, help="restrict to one engine")
    changepoints.add_argument(
        "--seed", type=int, default=None, help="restrict to one seed")
    changepoints.add_argument(
        "--delay-mode", default=None, dest="delay_mode",
        help="restrict to one delay mode (per-vehicle / aggregate)",
    )
    changepoints.add_argument(
        "--warmup-fraction", type=float, default=0.25,
        help="leading fraction of each series discarded (default 0.25)",
    )
    changepoints.add_argument(
        "--min-points", type=int, default=20,
        help="fewest post-warm-up samples a run needs (default 20)",
    )
    changepoints.add_argument(
        "--min-shift", type=float, default=2.0, dest="min_shift",
        help=(
            "breakdown effect-size floor in vehicles per recorded "
            "series (default 2.0)"
        ),
    )
    changepoints.add_argument(
        "--quantile", type=float, default=0.95,
        help="permutation-null detection quantile (default 0.95)",
    )
    changepoints.add_argument(
        "--permutations", type=int, default=199,
        help="permutation draws per series (default 199)",
    )
    changepoints.add_argument(
        "--block", type=int, default=12,
        help="circular block length of the permutation null (default 12)",
    )
    changepoints.add_argument(
        "--perm-seed", type=int, default=0, dest="perm_seed",
        help="permutation RNG seed (default 0; fixed = deterministic)",
    )
    changepoints.add_argument(
        "--confidence", type=float, default=0.95,
        help="onset confidence-interval coverage (default 0.95)",
    )
    changepoints.add_argument(
        "--format", choices=("csv", "json"), default=None,
        help="export tidy verdict rows instead of the table",
    )
    changepoints.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the export to FILE instead of stdout",
    )
    return parser


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.orchestration import SweepGrid
    from repro.util.tables import render_table

    scenario_names = tuple(args.scenarios or ())
    if args.load is not None and not scenario_names:
        print(
            "repro sweep: --load applies to catalog scenarios; pass "
            "--scenario NAME (paper patterns take "
            "--patterns with scenario_params via the API)",
            file=sys.stderr,
        )
        return 2
    entry_params = {"load": args.load} if args.load is not None else {}
    grid = SweepGrid(
        patterns=None if args.patterns is None else tuple(args.patterns),
        scenarios=tuple(
            (name, entry_params) for name in scenario_names
        ),
        controllers=tuple(args.controllers),
        seeds=tuple(args.seeds),
        engines=tuple(args.engine),
        durations=(args.duration,),
        record_entry_queues=args.record_entry_queues,
    )

    fleet_report = None
    if args.fleet is not None:
        if args.fleet < 1:
            print(
                f"repro sweep: --fleet must be >= 1, got {args.fleet}",
                file=sys.stderr,
            )
            return 2
        if args.store is None:
            print(
                "repro sweep: --fleet needs --store FILE (the canonical "
                "store the shard stores are merged into)",
                file=sys.stderr,
            )
            return 2
        from repro.orchestration import run_fleet

        fleet_report = run_fleet(
            grid,
            args.fleet,
            args.store,
            workers_per_shard=args.workers,
            batch_size=args.batch_size,
        )
        # Fall through to the ordinary pool path below: every cell is
        # now in the merged store, so the table prints from pure cache
        # hits — which doubles as an end-to-end completeness check.

    shard_suffix = ""
    if args.shard is not None:
        from repro.orchestration.spec import parse_shard

        index, count = parse_shard(args.shard)
        specs = grid.shard(index, count)
        shard_suffix = f" (shard {index}/{count} of {len(grid)} cells)"
        if not specs:
            print(
                f"shard {index}/{count} of this {len(grid)}-cell grid is "
                f"empty; nothing to run"
            )
            return 0
    else:
        specs = grid.specs()
    pool = _make_pool(args)
    results = pool.run(specs)
    rows = [
        (
            spec.pattern,
            spec.controller,
            ",".join(f"{k}={v}" for k, v in spec.controller_params) or "-",
            spec.engine,
            spec.seed,
            f"{result.average_queuing_time:.2f}",
            f"{result.summary.throughput_per_hour:.0f}",
            f"{result.network_utilization().amber_share:.3f}",
        )
        for spec, result in zip(specs, results)
    ]
    print(
        render_table(
            (
                "pattern",
                "controller",
                "params",
                "engine",
                "seed",
                "avg queuing [s]",
                "thru [veh/h]",
                "amber",
            ),
            rows,
            title=(
                f"Sweep — {len(specs)} cells{shard_suffix}, engines "
                f"{','.join(args.engine)}, duration {args.duration:.0f} s"
            ),
        )
    )
    if args.aggregate is not None:
        from repro.results import aggregate, tidy_table

        axes = tuple(
            axis.strip() for axis in args.aggregate.split(",") if axis.strip()
        )
        try:
            agg_rows = aggregate(
                zip(specs, results), by=axes, on_mixed_delay_mode="split"
            )
        except ValueError as error:
            print(f"repro sweep: --aggregate: {error}", file=sys.stderr)
            return 2
        headers, body = tidy_table(agg_rows)
        print()
        print(
            render_table(
                headers, body,
                title=f"Aggregated over {', '.join(axes)} (across the rest)",
            )
        )
    print(
        f"executed {pool.stats.executed}, "
        f"cache hits {pool.stats.cache_hits}, workers {pool.workers}"
    )
    if fleet_report is not None:
        for shard in fleet_report.shards:
            print(
                f"  shard {shard.index}/{fleet_report.shard_count}: "
                f"{shard.cells} cells, {shard.executed} executed, "
                f"{shard.cache_hits} from store, {shard.duration_s:.1f} s"
            )
        print(
            f"fleet: {fleet_report.shard_count} shards, "
            f"{fleet_report.executed} executed, "
            f"{fleet_report.merged_rows} rows merged into "
            f"{fleet_report.store}, wall {fleet_report.wall_time_s:.1f} s"
        )
    return 0


def _open_store(path: str):
    """Open an existing store for inspection, or None + message."""
    from pathlib import Path

    from repro.results import ResultStore

    if not Path(path).exists():
        print(
            f"repro results: no store at {path!r} (run a sweep with "
            f"--store/--cache-dir first, or pass --store)",
            file=sys.stderr,
        )
        return None
    return ResultStore(path)


def _run_results(args: argparse.Namespace) -> int:
    from repro.util.tables import render_table

    if args.results_command == "merge":
        import sqlite3

        from repro.results import MergeError, MergeStats, ResultStore

        totals = MergeStats()
        try:
            with ResultStore(args.output) as destination:
                for source in args.inputs:
                    stats = destination.merge_from(
                        source, prefer=args.prefer
                    )
                    totals.merge(stats)
                    print(
                        f"{source}: {stats.inserted} inserted, "
                        f"{stats.identical} identical, "
                        f"{stats.conflicts} conflicts"
                    )
                rows = len(destination)
        except (MergeError, ValueError, sqlite3.DatabaseError) as error:
            print(f"repro results merge: {error}", file=sys.stderr)
            return 2
        print(
            f"merged {len(args.inputs)} store(s) into {args.output}: "
            f"{totals.inserted} inserted, {totals.identical} identical, "
            f"{totals.conflicts} conflicts — {rows} rows total"
        )
        return 0

    store = _open_store(args.store)
    if store is None:
        return 2

    if args.results_command == "list":
        rows = [
            (
                entry["pattern"],
                entry["controller"],
                entry["engine"],
                entry["cells"],
                entry["seeds"],
                entry["delay_mode"],
                f"{entry['mean_avg_queuing_time']:.2f}"
                if entry["mean_avg_queuing_time"] is not None
                else "-",
            )
            for entry in store.overview()
        ]
        print(
            render_table(
                (
                    "pattern",
                    "controller",
                    "engine",
                    "cells",
                    "seeds",
                    "delay mode",
                    "mean avg queuing [s]",
                ),
                rows,
                title=f"Result store {args.store} — {len(store)} cells",
            )
        )
        return 0

    if args.results_command == "show":
        import json as _json

        matches = store.find(args.hash_prefix)
        if not matches:
            print(
                f"repro results show: no cell with hash prefix "
                f"{args.hash_prefix!r}",
                file=sys.stderr,
            )
            return 2
        if len(matches) > 1:
            print(
                f"repro results show: prefix {args.hash_prefix!r} is "
                f"ambiguous ({len(matches)} cells):",
                file=sys.stderr,
            )
            for record in matches:
                print(
                    f"  {record.spec_hash[:16]}  {record.spec.label()}",
                    file=sys.stderr,
                )
            return 2
        record = matches[0]
        print(f"cell {record.spec_hash}")
        print(f"  label: {record.spec.label()}")
        print("  spec:")
        print(
            "\n".join(
                f"    {line}"
                for line in _json.dumps(
                    record.spec.to_dict(), indent=2
                ).splitlines()
            )
        )
        print(f"  summary: {record.summary}")
        print(
            f"  avg queuing {record.summary.average_queuing_time:.2f} s, "
            f"delay mode {record.summary.delay_mode}"
        )
        return 0

    assert args.results_command == "export"
    rows = store.export_rows()
    if args.format == "json":
        import json as _json

        text = _json.dumps(rows, indent=2) + "\n"
    else:
        import csv
        import io

        buffer = io.StringIO()
        if rows:
            writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        text = buffer.getvalue()
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(rows)} rows to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _run_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        AnalysisOptions,
        analyze_store,
        render_verdicts,
        verdict_rows,
    )

    if not Path(args.store).exists():
        print(
            f"repro analyze: no store at {args.store!r} (run a sweep "
            f"with --store and --record-entry-queues first)",
            file=sys.stderr,
        )
        return 2
    try:
        options = AnalysisOptions(
            warmup_fraction=args.warmup_fraction,
            min_points=args.min_points,
            min_shift_per_series=args.min_shift,
            quantile=args.quantile,
            n_permutations=args.permutations,
            block_length=args.block,
            seed=args.perm_seed,
            confidence=args.confidence,
        )
    except ValueError as error:
        print(f"repro analyze: {error}", file=sys.stderr)
        return 2
    filters = {
        key: getattr(args, key)
        for key in ("pattern", "controller", "engine", "seed", "delay_mode")
        if getattr(args, key) is not None
    }
    verdicts = analyze_store(args.store, options=options, **filters)
    if args.format is None:
        print(render_verdicts(verdicts))
        return 0
    rows = verdict_rows(verdicts)
    if args.format == "json":
        import json as _json

        text = _json.dumps(rows, indent=2) + "\n"
    else:
        import csv
        import io

        buffer = io.StringIO()
        if rows:
            writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        text = buffer.getvalue()
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {len(rows)} rows to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _run_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import build_named_scenario, catalog_entries
    from repro.util.tables import render_table

    if args.scenarios_command == "list":
        rows = [
            (entry.name, entry.grid, entry.family.name, entry.description)
            for entry in catalog_entries()
        ]
        print(
            render_table(
                ("name", "grid", "family", "description"),
                rows,
                title=(
                    f"Scenario catalog — {len(rows)} entries "
                    f"(any <family>-<R>x<C> also resolves)"
                ),
            )
        )
        return 0

    scenario = build_named_scenario(args.name, seed=args.seed)
    network = scenario.network
    horizon = scenario.default_duration
    expected = sum(
        schedule.expected_count(0.0, horizon)
        for schedule in scenario.demand.values()
    )
    print(f"scenario {scenario.name} (seed {scenario.seed})")
    print(
        f"  network: {len(network.intersections)} intersections, "
        f"{len(network.roads)} roads, {len(network.entry_roads())} entries"
    )
    print(f"  default horizon: {horizon:.0f} s")
    print(f"  expected arrivals over horizon: {expected:.0f} vehicles")
    capacities = sorted(
        {road.capacity for road in network.roads.values()}
    )
    print(f"  road capacities: {capacities}")
    return 0


def _run_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    if args.json_file is not None:
        if args.json_file == "-":
            body = _json.load(sys.stdin)
        else:
            with open(args.json_file, "r", encoding="utf-8") as handle:
                body = _json.load(handle)
    else:
        from repro.orchestration import SweepGrid

        grid = SweepGrid(
            patterns=(
                None if args.patterns is None else tuple(args.patterns)
            ),
            scenarios=tuple(args.scenarios or ()),
            controllers=tuple(args.controllers),
            seeds=tuple(args.seeds),
            engines=tuple(args.engine),
            durations=(args.duration,),
        )
        body = {"grid": grid.to_dict()}
    if args.shard is not None:
        body["shard"] = args.shard
    try:
        view = client.submit(body)
        job = view["job"]
        print(
            f"submitted {job['job_id']}: {job['counts']['total']} cells "
            f"({job['counts']['shared']} shared with earlier jobs)"
        )
        if args.wait is not None:
            view = client.job(job["job_id"], wait=args.wait)
            job = view["job"]
        counts = job["counts"]
        print(
            f"{job['job_id']}: {job['state']} — "
            f"{counts['done']}/{counts['total']} done "
            f"({counts['from_store']} from store, "
            f"{counts['executed']} executed, {counts['failed']} failed)"
        )
        return 0 if job["state"] != "failed" else 1
    except ServiceError as error:
        print(f"repro submit: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(
            f"repro submit: cannot reach {args.url}: {error}",
            file=sys.stderr,
        )
        return 2


def _run_jobs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.client import ServiceClient, ServiceError
    from repro.util.tables import render_table

    client = ServiceClient(args.url)
    try:
        if args.job_id is None:
            jobs = client.jobs()["jobs"]
            rows = [
                (
                    job["job_id"],
                    job["state"],
                    job["counts"]["total"],
                    job["counts"]["done"],
                    job["counts"]["failed"],
                    job["counts"]["from_store"],
                    job["counts"]["executed"],
                )
                for job in jobs
            ]
            print(
                render_table(
                    (
                        "job", "state", "cells", "done", "failed",
                        "from store", "executed",
                    ),
                    rows,
                    title=f"Jobs at {args.url} — {len(rows)}",
                )
            )
            return 0
        if args.events:
            for event in client.iter_events(args.job_id, follow=False):
                print(_json.dumps(event))
            return 0
        view = client.job(args.job_id)
        print(_json.dumps(view["job"], indent=2, sort_keys=True))
        return 0
    except ServiceError as error:
        print(f"repro jobs: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(
            f"repro jobs: cannot reach {args.url}: {error}", file=sys.stderr
        )
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "run":
        from repro.experiments import RunConfig, build_scenario, run_scenario

        params = {}
        if args.period is not None:
            params["period"] = args.period
        result = run_scenario(
            build_scenario(args.pattern, seed=args.seed),
            config=RunConfig(
                controller=args.controller,
                controller_params=params,
                duration=args.duration,
                engine=args.engine,
            ),
        )
        print(result.summary)
        print(
            f"average queuing time: {result.average_queuing_time:.2f} s, "
            f"amber share: {result.network_utilization().amber_share:.3f}"
        )
        return 0

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "results":
        return _run_results(args)

    if args.command == "scenarios":
        return _run_scenarios(args)

    if args.command == "analyze":
        return _run_analyze(args)

    if args.command == "serve":
        from repro.service import serve as run_service

        run_service(
            store=args.store,
            host=args.host,
            port=args.port,
            workers=args.workers,
            batch_size=args.batch_size,
        )
        return 0

    if args.command == "submit":
        return _run_submit(args)

    if args.command == "jobs":
        return _run_jobs(args)

    if args.command == "table3":
        from repro.experiments.table3 import render_table3, run_table3

        rows = run_table3(
            engine=args.engine, seed=args.seed, duration_scale=args.scale,
            pool=_make_pool(args),
        )
        print(render_table3(rows))
        return 0

    if args.command == "fig2":
        from repro.experiments.fig2 import render_fig2, run_fig2

        print(
            render_fig2(
                run_fig2(
                    engine=args.engine,
                    seed=args.seed,
                    segment_duration=args.segment,
                    pool=_make_pool(args),
                )
            )
        )
        return 0

    if args.command == "fig34":
        from repro.experiments.fig34 import render_fig34, run_fig34

        print(
            render_fig34(
                run_fig34(
                    engine=args.engine,
                    duration=args.duration,
                    seed=args.seed,
                    pool=_make_pool(args),
                )
            )
        )
        return 0

    if args.command == "fig5":
        from repro.experiments.fig5 import render_fig5, run_fig5

        print(
            render_fig5(
                run_fig5(
                    engine=args.engine,
                    duration=args.duration,
                    seed=args.seed,
                    pool=_make_pool(args),
                )
            )
        )
        return 0

    if args.command == "ablations":
        from repro.experiments.ablations import (
            ABLATIONS,
            render_ablation,
            run_ablation,
        )

        pool = _make_pool(args)
        studies = [args.study] if args.study else list(ABLATIONS)
        for study in studies:
            print(
                render_ablation(
                    run_ablation(study, duration=args.duration, pool=pool)
                )
            )
            print()
        return 0

    if args.command == "stability":
        from repro.experiments.stability import (
            render_stability,
            run_stability_sweep,
        )

        print(
            render_stability(
                run_stability_sweep(
                    duration=args.duration, pool=_make_pool(args)
                )
            )
        )
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
