"""Pressure and gain metrics of Sec. III-A.

The notions implemented here, with their equation numbers in the paper:

* ``pressure`` — the mapping ``b = f(q) = q`` (Eq. 4).
* ``link_gain_original`` — the original back-pressure link gain
  ``g_o(L, k) = max(0, (b_i - b_{i'}) mu)`` computed on the *total*
  incoming queue (Eq. 5, Varaiya-style).
* ``link_gain`` — the paper's modified gain (Eqs. 6-9): per-movement
  incoming pressure, shifted positive by ``W*``, with the special
  cases ``beta`` (full outgoing road) and ``alpha`` (empty incoming
  movement).
* ``phase_gain`` — the total gain of a phase, ``g(c_j, k)`` (Eq. 10).
* ``max_link_gain`` — the maximum constituent link gain,
  ``g_max(c_j, k)`` (Eq. 11), together with the arg-max link
  ``L_max(c_j, k)`` needed by the keep-phase threshold of Eq. 12.

Each scalar function has an ``*_array`` twin operating on whole
``(B, n_movements)`` queue/occupancy arrays — the kernels behind the
batched controllers (:mod:`repro.control.batch`).  The array variants
are *bit-for-bit* equivalent to mapping the scalar function over every
(replication, movement) cell: comparisons are the same, and the
floating-point evaluation order of every sum and product is preserved
(phase sums accumulate left-to-right in declaration order), so batched
decisions never diverge from serial ones by rounding.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.model.movements import Movement
from repro.model.phases import Phase
from repro.model.queues import QueueObservation

__all__ = [
    "pressure",
    "link_gain_original",
    "link_gain",
    "phase_gain",
    "max_link_gain",
    "keep_threshold",
    "link_gain_array",
    "link_gain_original_array",
    "phase_gain_array",
    "max_link_gain_array",
    "keep_threshold_array",
]


def pressure(queue_length: int) -> float:
    """The pressure mapping ``b = f(q) = q`` (Eq. 4).

    The paper keeps ``f`` as the identity; it is factored out so that
    alternative mappings (e.g. normalized or convex pressures) can be
    studied — see :mod:`repro.control.cap_bp` for the capacity-
    normalized variant used by the CAP-BP baseline.
    """
    if queue_length < 0:
        raise ValueError(f"queue length must be >= 0, got {queue_length}")
    return float(queue_length)


def link_gain_original(movement: Movement, obs: QueueObservation) -> float:
    """Original back-pressure link gain, Eq. 5.

    ``g_o(L_i^{i'}, k) = max(0, (b_i(k) - b_{i'}(k)) * mu_i^{i'})``

    Note that the incoming pressure is exerted by the *total* queue of
    the incoming road ``q_i`` — including vehicles that will not use
    this link.  The paper identifies this as a utilization problem.
    """
    b_in = pressure(obs.incoming_total(movement.in_road))
    b_out = pressure(obs.out_queue(movement.out_road))
    return max(0.0, (b_in - b_out) * movement.service_rate)


def link_gain(
    movement: Movement,
    obs: QueueObservation,
    alpha: float,
    beta: float,
) -> float:
    """The paper's modified link gain, Eq. 8.

    ::

        g(L, k) = beta                              if q_{i'} = W_{i'}
                = alpha                             if q_{i'} < W_{i'} and q_i^{i'} = 0
                = (b_i^{i'} - b_{i'} + W*) mu       otherwise

    with ``W* = max W_{i'}`` (Eq. 7).  In the general case the gain is
    non-negative because ``b_i^{i'} >= 0`` and ``b_{i'} <= W*``, so any
    servable link outranks the two special cases (``alpha, beta < 0``).
    """
    if alpha >= 0 or beta >= 0:
        raise ValueError(
            f"alpha and beta must be negative, got alpha={alpha}, beta={beta}"
        )
    q_out = obs.out_queue(movement.out_road)
    capacity = obs.capacity(movement.out_road)
    if q_out >= capacity:
        return beta
    q_move = obs.movement_queue(movement.in_road, movement.out_road)
    if q_move == 0:
        return alpha
    w_star = float(obs.max_capacity())
    b_in = pressure(q_move)
    b_out = pressure(q_out)
    return (b_in - b_out + w_star) * movement.service_rate


def phase_gain(
    phase: Phase, obs: QueueObservation, alpha: float, beta: float
) -> float:
    """Total gain of a phase, ``g(c_j, k)`` (Eq. 10)."""
    return sum(link_gain(m, obs, alpha, beta) for m in phase.movements)


def max_link_gain(
    phase: Phase, obs: QueueObservation, alpha: float, beta: float
) -> Tuple[float, Movement]:
    """``g_max(c_j, k)`` and its arg-max link ``L_max(c_j, k)`` (Eq. 11).

    Ties are broken by the first movement in the phase's declaration
    order, which is deterministic.
    """
    best_gain: Optional[float] = None
    best_movement: Optional[Movement] = None
    for movement in phase.movements:
        gain = link_gain(movement, obs, alpha, beta)
        if best_gain is None or gain > best_gain:
            best_gain = gain
            best_movement = movement
    assert best_gain is not None and best_movement is not None
    return best_gain, best_movement


def keep_threshold(obs: QueueObservation, movement: Movement) -> float:
    """The keep-phase threshold ``g*(k)`` of Eq. 12.

    With ``L_max(c(k-1), k) = L_i^{i'}``, the paper sets
    ``g*(k) = W* mu_i^{i'}``: the current phase is kept exactly while
    its best link still has a *positive* pressure difference
    (``g > g*  <=>  b_i^{i'} - b_{i'} > 0`` in the general case of
    Eq. 8).
    """
    return float(obs.max_capacity()) * movement.service_rate


# -- batched array kernels ----------------------------------------------------
#
# The array variants take movement-aligned arrays whose trailing axis
# enumerates movements (typically shape ``(B, M)`` for B replications,
# but any leading shape broadcasts).  Phase structure enters through a
# dense membership table: ``members[..., j]`` is the movement column of
# the phase's j-th declared movement and ``valid[..., j]`` masks the
# padding of ragged phases.  The membership axes are arbitrary — the
# batched controllers use ``(n_nodes, max_phases, max_members)`` — and
# the outputs take the gains' leading axes plus the members' leading
# axes.


def link_gain_array(
    queues: np.ndarray,
    out_queues: np.ndarray,
    out_capacities: np.ndarray,
    w_star: np.ndarray,
    service_rates: np.ndarray,
    alpha: float,
    beta: float,
) -> np.ndarray:
    """Eq. 8 evaluated elementwise on movement-aligned arrays.

    ``queues``/``out_queues`` hold ``q_i^{i'}``/``q_{i'}`` per movement;
    ``out_capacities``, ``w_star`` (the movement's intersection ``W*``)
    and ``service_rates`` are the static per-movement columns.  Exactly
    :func:`link_gain` per cell, including the check order (a full
    outgoing road wins over an empty incoming movement).
    """
    if alpha >= 0 or beta >= 0:
        raise ValueError(
            f"alpha and beta must be negative, got alpha={alpha}, beta={beta}"
        )
    general = (
        queues.astype(np.float64) - out_queues + w_star
    ) * service_rates
    gains = np.where(queues == 0, alpha, general)
    return np.where(out_queues >= out_capacities, beta, gains)


def link_gain_original_array(
    incoming_totals: np.ndarray,
    out_queues: np.ndarray,
    service_rates: np.ndarray,
) -> np.ndarray:
    """Eq. 5 on movement-aligned arrays (``incoming_totals`` is ``q_i``)."""
    return np.maximum(
        0.0,
        (incoming_totals.astype(np.float64) - out_queues) * service_rates,
    )


def phase_gain_array(
    gains: np.ndarray, members: np.ndarray, valid: np.ndarray
) -> np.ndarray:
    """Eq. 10 as a dense segment reduction over phase memberships.

    Sums ``gains[..., members[..., j]]`` over the membership axis.  The
    accumulation is an explicit left-to-right loop over the (short)
    membership axis so the float addition order matches the scalar
    ``sum(link_gain(m) for m in phase.movements)`` exactly.
    """
    gathered = gains[..., members]
    total = np.zeros(gathered.shape[:-1], dtype=np.float64)
    for j in range(gathered.shape[-1]):
        total = total + np.where(valid[..., j], gathered[..., j], 0.0)
    return total


def max_link_gain_array(
    gains: np.ndarray, members: np.ndarray, valid: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. 11 as a masked argmax over phase memberships.

    Returns ``(g_max, argmax_position)`` where the position indexes the
    membership axis (the phase's declaration order).  ``np.argmax``
    takes the first maximal entry, matching the scalar tie-break.
    """
    gathered = np.where(valid, gains[..., members], -np.inf)
    arg = gathered.argmax(axis=-1)
    g_max = np.take_along_axis(gathered, arg[..., None], axis=-1)[..., 0]
    return g_max, arg


def keep_threshold_array(
    max_capacities: np.ndarray, service_rates: np.ndarray
) -> np.ndarray:
    """Eq. 12 on arrays: ``g* = W* mu`` with ``mu`` of the arg-max link."""
    return max_capacities.astype(np.float64) * service_rates
