"""Tunable parameters of the UTIL-BP controller.

Defaults reproduce the paper's evaluation setup (Sec. V): transition
phase of 4 s, ``alpha = -1``, ``beta = -2``, and the keep-phase
threshold ``g*(k)`` of Eq. 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive

__all__ = ["UtilBpConfig"]


@dataclass(frozen=True)
class UtilBpConfig:
    """Configuration of :class:`repro.core.util_bp.UtilBpController`.

    Attributes
    ----------
    transition_duration:
        Length ``Delta_k`` of the transition (amber) phase in seconds.
    alpha:
        Gain assigned to a link whose incoming movement queue is empty
        while its outgoing road still has space (Eq. 8, second case).
        Must be negative.
    beta:
        Gain assigned to a link whose outgoing road is full (Eq. 8,
        first case).  The paper orders ``beta < alpha < 0`` (Eq. 9) but
        notes the reverse is admissible; we enforce only negativity and
        expose :meth:`paper_ordering` for callers who want the check.
    mini_slot:
        The monitoring interval ``Delta_t = t_{k+1} - t_k`` in seconds.
        Used by drivers to schedule controller invocations.
    keep_margin:
        Relaxation of the keep-phase threshold: the phase is kept while
        ``g_max > (W* - keep_margin) µ``, i.e. while the best link's
        pressure difference exceeds ``-keep_margin``.  The paper's
        Eq. 12 corresponds to 0 and notes that ``g*(k)`` "can be chosen
        based on customized requirements and traffic conditions"; the
        ablation benchmarks sweep this.
    """

    transition_duration: float = 4.0
    alpha: float = -1.0
    beta: float = -2.0
    mini_slot: float = 1.0
    keep_margin: float = 0.0

    def __post_init__(self) -> None:
        check_positive("transition_duration", self.transition_duration)
        check_positive("mini_slot", self.mini_slot)
        if self.keep_margin < 0:
            raise ValueError(
                f"keep_margin must be >= 0, got {self.keep_margin}"
            )
        if self.alpha >= 0:
            raise ValueError(f"alpha must be negative, got {self.alpha}")
        if self.beta >= 0:
            raise ValueError(f"beta must be negative, got {self.beta}")

    def paper_ordering(self) -> bool:
        """True iff the parameters satisfy Eq. 9 (``beta < alpha < 0``)."""
        return self.beta < self.alpha < 0
