"""The utilization-aware adaptive back-pressure controller (Algorithm 1).

This is the paper's main contribution.  The controller is invoked at
*every* mini-slot (enabling varying-length control phases) and decides
between three cases:

* **Case 1** (lines 1-2): a transition phase is running and its period
  ``Delta_k`` has not expired — keep it.
* **Case 2** (lines 3-4): a control phase is running and its best
  constituent link gain ``g_max(c(k-1), k)`` still exceeds the
  non-negative threshold ``g*(k)`` (Eq. 12) — keep it.  This is the
  mechanism that limits the number of transition phases.
* **Case 3** (lines 5-17): select a new phase ``c'``:

  - if some phase can guarantee junction utilization in the next
    mini-slot (``max_j g_max(c_j, k) > alpha``), restrict to those
    phases and pick the one with the highest *total* gain — the best
    effort against instability (lines 6-8);
  - otherwise utilization will be low whatever is chosen; pick the
    phase with the highest single link gain (lines 9-10);
  - if ``c'`` is already running, or a transition phase just expired,
    apply ``c'`` directly (lines 12-13); otherwise start a transition
    phase and arm its expiry timer ``t_{Delta k} = t_k + Delta_k``
    (lines 14-16).

All inputs — ``Q(k)``, ``C``, ``c(k-1)``, ``t_k`` — are local to the
intersection, preserving back-pressure's decentralized character.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.control.base import IntersectionController, TRANSITION
from repro.core.config import UtilBpConfig
from repro.core.pressure import keep_threshold, max_link_gain, phase_gain
from repro.model.intersection import Intersection
from repro.model.phases import Phase
from repro.model.queues import QueueObservation

__all__ = ["UtilBpController"]


class UtilBpController(IntersectionController):
    """Utilization-aware adaptive back-pressure (UTIL-BP), Algorithm 1.

    Parameters
    ----------
    intersection:
        The controlled intersection.
    config:
        Controller parameters; defaults are the paper's evaluation
        values (``Delta_k = 4 s``, ``alpha = -1``, ``beta = -2``).
    """

    def __init__(
        self,
        intersection: Intersection,
        config: Optional[UtilBpConfig] = None,
    ):
        super().__init__(intersection)
        self.config = config or UtilBpConfig()
        #: Global variable ``t_{Delta k}`` of Algorithm 1 — the expiry
        #: time of the running transition phase.
        self._transition_until = -math.inf

    def reset(self) -> None:
        """Clear the per-intersection controller state."""
        super().reset()
        self._transition_until = -math.inf

    # -- Algorithm 1 -------------------------------------------------------

    def decide(self, obs: QueueObservation) -> int:
        """Apply Algorithm 1: keep, hold through amber, or select anew."""
        t_k = obs.time
        previous = self._current  # c(k-1)

        # Case 1 (lines 1-2): transition phase still running.
        if previous == TRANSITION and t_k < self._transition_until:
            return self._record(TRANSITION)

        # Case 2 (lines 3-4): keep the current control phase while its
        # best link stays above the threshold g*(k).
        if previous != TRANSITION:
            current_phase = self.intersection.phase_by_index(previous)
            g_max, l_max = max_link_gain(
                current_phase, obs, self.config.alpha, self.config.beta
            )
            threshold = keep_threshold(obs, l_max)
            threshold -= self.config.keep_margin * l_max.service_rate
            if g_max > threshold:
                return self._record(previous)

        # Case 3 (lines 5-17): select a new control phase.
        selected = self._select_phase(obs)
        if selected == previous or previous == TRANSITION:
            # Lines 12-13: same phase, or an expired transition phase.
            return self._record(selected)
        # Lines 14-16: different phase — clear the junction first.
        self._transition_until = t_k + self.config.transition_duration
        return self._record(TRANSITION)

    def _select_phase(self, obs: QueueObservation) -> int:
        """Lines 6-11: pick ``c'`` by utilization-aware gain ranking."""
        alpha, beta = self.config.alpha, self.config.beta
        ranked: List[Tuple[Phase, float]] = []
        best_overall = -math.inf
        for phase in self.intersection.phases:
            g_max, _ = max_link_gain(phase, obs, alpha, beta)
            ranked.append((phase, g_max))
            best_overall = max(best_overall, g_max)

        if best_overall > alpha:
            # Lines 7-8: among phases guaranteeing some utilization,
            # take the highest *total* gain (best effort for stability).
            candidates = [phase for phase, g_max in ranked if g_max > alpha]
            scores = [
                (phase_gain(phase, obs, alpha, beta), phase)
                for phase in candidates
            ]
        else:
            # Line 10: utilization will be low regardless; fall back to
            # the best single link gain.
            scores = [(g_max, phase) for phase, g_max in ranked]
        # Deterministic tie-break: on equal scores prefer the running
        # phase (a pointless switch would only buy an amber), then the
        # lowest phase index.
        def rank(item: Tuple[float, Phase]) -> Tuple[float, int, int]:
            """Score a candidate phase for the Eq.-11/12 arg-max."""
            score, phase = item
            return (-score, 0 if phase.index == self._current else 1, phase.index)

        scores.sort(key=rank)
        return scores[0][1].index

    # -- introspection helpers (used by tests and examples) ----------------

    def transition_remaining(self, now: float) -> float:
        """Seconds of transition phase left at time ``now`` (0 if none)."""
        if self._current != TRANSITION:
            return 0.0
        return max(0.0, self._transition_until - now)
