"""The formal simulation-engine contract and the engine registry.

Every plant the control loop can drive — the mesoscopic
store-and-forward simulator (``meso``), its counts-based fast variant
(``meso-counts``), the microscopic Krauss simulator (``micro``), and
any future backend (a real SUMO bridge, a hardware-in-the-loop rig) —
implements the :class:`SimulationEngine` protocol:

* ``time`` — the current simulation clock (s);
* ``collector`` — the per-vehicle :class:`MetricsCollector`;
* ``utilization`` — per-intersection :class:`UtilizationTracker` map;
* ``observations()`` — ``Q(k)`` per intersection at the current time;
* ``step(dt, phases)`` — advance ``dt`` seconds under the given
  phase decisions (0 = transition/amber);
* ``finalize()`` — close the books (idempotent);
* ``incoming_queue_total(road_id)`` — stop-line queue of one road;
* ``vehicles_in_network()`` / ``backlog_size()`` — occupancy
  introspection used by the stability study.

Engines are registered by name so experiments, the orchestration pool
and the CLI can select them with a string.  The built-in engines are
imported lazily: meso-only users never pay the microscopic import.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Mapping,
    Optional,
    Protocol,
    TYPE_CHECKING,
    runtime_checkable,
)

from repro.metrics.collector import MetricsCollector
from repro.metrics.utilization import UtilizationTracker
from repro.model.queues import QueueObservation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.scenario import Scenario

__all__ = [
    "SimulationEngine",
    "ENGINE_NAMES",
    "register_engine",
    "engine_names",
    "provider_module",
    "build_engine",
]


@runtime_checkable
class SimulationEngine(Protocol):
    """Structural contract every simulation backend must satisfy."""

    time: float
    collector: MetricsCollector
    utilization: Dict[str, UtilizationTracker]

    def observations(self) -> Dict[str, QueueObservation]:
        """Build ``Q(k)`` for every intersection at the current time."""
        ...

    def step(self, dt: float, phases: Mapping[str, int]) -> None:
        """Advance by ``dt`` seconds under the given phase decisions."""
        ...

    def finalize(self) -> None:
        """Close the metric books; must be safe to call repeatedly."""
        ...

    def incoming_queue_total(self, road_id: str) -> int:
        """Total queued vehicles at the stop line of one road."""
        ...

    def vehicles_in_network(self) -> int:
        """Total vehicles currently inside the network."""
        ...

    def backlog_size(self) -> int:
        """Vehicles generated but still gated outside a full entry."""
        ...


#: Engine constructors by name (``builder(scenario) -> SimulationEngine``).
_ENGINE_BUILDERS: Dict[str, Callable[["Scenario"], SimulationEngine]] = {}

#: Modules whose import registers a built-in engine.
_BUILTIN_MODULES: Dict[str, str] = {
    "meso": "repro.meso.simulator",
    "meso-counts": "repro.meso.counts",
    "micro": "repro.micro.simulator",
}

#: The engine names the CLI offers (built-ins; plugins add more).
ENGINE_NAMES = tuple(sorted(_BUILTIN_MODULES))


def register_engine(
    name: str, builder: Callable[["Scenario"], SimulationEngine]
) -> None:
    """Register an engine constructor (``builder(scenario) -> engine``)."""
    _ENGINE_BUILDERS[name] = builder


def engine_names() -> tuple:
    """All currently selectable engine names (built-in + registered)."""
    return tuple(sorted(set(_ENGINE_BUILDERS) | set(_BUILTIN_MODULES)))


def provider_module(name: str) -> Optional[str]:
    """The module whose import registers engine ``name`` (if known).

    Worker processes under the ``spawn`` start method begin with a
    fresh registry; importing this module there re-establishes the
    registration (engines register at import time, like the
    built-ins).  Returns ``None`` for unregistered names or builders
    defined in ``__main__`` (not importable elsewhere).
    """
    # The live registration wins over the built-in mapping: a plugin
    # overriding a built-in name must run its own code in workers too.
    builder = _ENGINE_BUILDERS.get(name)
    if builder is not None:
        module = getattr(builder, "__module__", None)
        return None if module == "__main__" else module
    return _BUILTIN_MODULES.get(name)


def build_engine(scenario: "Scenario", engine: str = "meso") -> SimulationEngine:
    """Instantiate a simulation engine for a scenario by name."""
    if engine not in _ENGINE_BUILDERS and engine in _BUILTIN_MODULES:
        # Importing the module registers the builder.
        import importlib

        importlib.import_module(_BUILTIN_MODULES[engine])
    try:
        builder = _ENGINE_BUILDERS[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r}; known: {list(engine_names())}"
        )
    return builder(scenario)
