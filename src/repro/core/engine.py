"""The formal simulation-engine contract and the engine registry.

Every plant the control loop can drive — the mesoscopic
store-and-forward simulator (``meso``), its counts-based fast variant
(``meso-counts``), the microscopic Krauss simulator (``micro``), and
any future backend (a real SUMO bridge, a hardware-in-the-loop rig) —
implements the :class:`SimulationEngine` protocol:

* ``time`` — the current simulation clock (s);
* ``collector`` — the per-vehicle :class:`MetricsCollector`;
* ``utilization`` — per-intersection :class:`UtilizationTracker` map;
* ``observations()`` — ``Q(k)`` per intersection at the current time;
* ``step(dt, phases)`` — advance ``dt`` seconds under the given
  phase decisions (0 = transition/amber);
* ``finalize()`` — close the books (idempotent);
* ``incoming_queue_total(road_id)`` — stop-line queue of one road;
* ``vehicles_in_network()`` / ``backlog_size()`` — occupancy
  introspection used by the stability study.

Engines are registered by name so experiments, the orchestration pool
and the CLI can select them with a string.  The built-in engines are
imported lazily: meso-only users never pay the microscopic import.

Batched *controllers* register here too, alongside the batch engines:
a :class:`~repro.control.batch.BatchNetworkController` computes the
phase decisions of all B replications at once on the engine's internal
arrays (no per-replication ``QueueObservation`` round-trip), and
:class:`BatchControlArrays` is the array-shaped ``Q(k)`` contract a
batch engine hands it each mini-slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    TYPE_CHECKING,
    runtime_checkable,
)

import numpy as np

from repro.metrics.collector import MetricsCollector, Summary
from repro.metrics.utilization import UtilizationTracker
from repro.model.queues import QueueObservation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.scenarios.core import Scenario
    from repro.model.network import Network

__all__ = [
    "SimulationEngine",
    "BatchEngine",
    "BatchControlArrays",
    "Registry",
    "ENGINES",
    "BATCH_ENGINES",
    "BATCH_CONTROLLERS",
    "ENGINE_NAMES",
    "register_engine",
    "engine_names",
    "provider_module",
    "build_engine",
    "register_batch_engine",
    "batch_engine_names",
    "has_batch_engine",
    "batch_provider_module",
    "build_batch_engine",
    "register_batch_controller",
    "batch_controller_names",
    "has_batch_controller",
    "build_batch_controller",
]


@dataclass(frozen=True)
class BatchControlArrays:
    """The batched ``Q(k)``: one mini-slot's sensor view for all B reps.

    The movement axis follows the producing engine's canonical layout:
    node-major over ``network.intersections`` order, movements in each
    intersection's declaration order — the same layout
    :class:`~repro.control.batch.BatchNetworkController` derives from
    the network, so the two sides agree by construction (and verify it
    once via ``movement_keys``).

    Attributes
    ----------
    time:
        The observation time ``t_k`` (shared by every replication).
    queues:
        ``q_i^{i'}(k)`` — ``(B, n_movements)`` sensed movement queues
        (including units inside the engine's sensing horizon, exactly
        as the per-replication observations report them).
    out_queues:
        ``q_{i'}(k)`` — ``(B, n_movements)`` outgoing-road queue seen
        by each movement, under the engine's out-queue sensing mode.
    """

    time: float
    queues: np.ndarray
    out_queues: np.ndarray


@runtime_checkable
class SimulationEngine(Protocol):
    """Structural contract every simulation backend must satisfy."""

    time: float
    collector: MetricsCollector
    utilization: Dict[str, UtilizationTracker]

    def observations(self) -> Dict[str, QueueObservation]:
        """Build ``Q(k)`` for every intersection at the current time."""
        ...

    def step(self, dt: float, phases: Mapping[str, int]) -> None:
        """Advance by ``dt`` seconds under the given phase decisions."""
        ...

    def finalize(self) -> None:
        """Close the metric books; must be safe to call repeatedly."""
        ...

    def incoming_queue_total(self, road_id: str) -> int:
        """Total queued vehicles at the stop line of one road."""
        ...

    def vehicles_in_network(self) -> int:
        """Total vehicles currently inside the network."""
        ...

    def backlog_size(self) -> int:
        """Vehicles generated but still gated outside a full entry."""
        ...


@runtime_checkable
class BatchEngine(Protocol):
    """Contract of a backend that steps many replications at once.

    A batch engine advances ``batch_size`` independent replications of
    *one* scenario shape (same network/demand/turning, one seed per
    replication) on a shared clock.  Replications never interact: the
    results of replication ``b`` are independent of the batch size and
    of the other seeds — which is what lets the orchestration pool fan
    a batch back into the same per-seed result rows a serial sweep
    would have produced.

    Per-replication surfaces take or return batch-ordered sequences:
    ``observations()[b]`` is replication ``b``'s ``Q(k)``, ``step``
    takes one phase mapping per replication, and the introspection
    methods return one value per replication.
    """

    time: float
    batch_size: int
    seeds: tuple

    def observations(self) -> List[Dict[str, QueueObservation]]:
        """Per-replication ``Q(k)`` maps at the current time."""
        ...

    def step(
        self, dt: float, phases: Sequence[Mapping[str, int]]
    ) -> None:
        """Advance every replication by ``dt`` under its own phases."""
        ...

    def finalize(self) -> None:
        """Close the metric books; must be safe to call repeatedly."""
        ...

    def summaries(self, duration: Optional[float] = None) -> List[Summary]:
        """Per-replication run summaries, in batch order."""
        ...

    def utilization_of(self, replication: int) -> Dict[str, UtilizationTracker]:
        """One replication's per-intersection utilization books."""
        ...

    def incoming_queue_total(self, road_id: str) -> Sequence[int]:
        """Stop-line queue of one road, per replication."""
        ...

    def vehicles_in_network(self) -> Sequence[int]:
        """Vehicles currently inside the network, per replication."""
        ...

    def backlog_size(self) -> Sequence[int]:
        """Vehicles gated outside a full entry, per replication."""
        ...


# -- the registry primitive ---------------------------------------------------


class Registry:
    """A lazily-importing name -> builder registry.

    One primitive behind the engine, batch-engine and batch-controller
    registries (they were three copy-pasted implementations before):

    * ``register(name, builder)`` — add or override a constructor;
    * ``has(name)`` / ``names()`` — membership and the sorted union of
      live registrations and known built-ins;
    * ``build(name, *args, **kwargs)`` — construct, importing the
      built-in provider module first if the name is not yet live
      (built-ins register themselves at import time);
    * ``provider_module(name)`` — the module a worker process must
      import to re-establish the registration (``spawn`` workers start
      with a fresh registry).  The live registration wins over the
      built-in mapping — a plugin overriding a built-in name must run
      its own code in workers too — and builders defined in
      ``__main__`` return ``None`` (not importable elsewhere).

    ``kind`` only labels error messages (e.g. ``"batch engine"``).
    """

    def __init__(self, kind: str, builtin_modules: Mapping[str, str]):
        self.kind = kind
        self.builtin_modules = dict(builtin_modules)
        self.builders: Dict[str, Callable[..., Any]] = {}

    def register(self, name: str, builder: Callable[..., Any]) -> None:
        """Register a constructor under ``name`` (overrides allowed)."""
        self.builders[name] = builder

    def has(self, name: str) -> bool:
        """Whether ``name`` is live-registered or a known built-in."""
        return name in self.builders or name in self.builtin_modules

    def names(self) -> tuple:
        """All currently selectable names (built-in + registered)."""
        return tuple(sorted(set(self.builders) | set(self.builtin_modules)))

    def provider_module(self, name: str) -> Optional[str]:
        """The module whose import registers ``name`` (if known)."""
        builder = self.builders.get(name)
        if builder is not None:
            module = getattr(builder, "__module__", None)
            return None if module == "__main__" else module
        return self.builtin_modules.get(name)

    def build(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Construct ``name``, importing its built-in provider if needed."""
        if name not in self.builders and name in self.builtin_modules:
            # Importing the module registers the builder.
            import importlib

            importlib.import_module(self.builtin_modules[name])
        try:
            builder = self.builders[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; known: {list(self.names())}"
            )
        return builder(*args, **kwargs)


#: Engine constructors by name (``builder(scenario) -> SimulationEngine``).
ENGINES = Registry(
    "engine",
    {
        "meso": "repro.meso.simulator",
        "meso-counts": "repro.meso.counts",
        "meso-events": "repro.meso.events",
        "meso-vec": "repro.meso.vectorized",
        "micro": "repro.micro.simulator",
    },
)

#: Batch-engine constructors (``builder(scenarios) -> BatchEngine``).
#: A name listed here also appears in :data:`ENGINES`: every batch
#: engine doubles as a single-run engine (batch of one) so plain specs
#: and the CLI can select it like any other backend.
BATCH_ENGINES = Registry(
    "batch engine",
    {
        "meso-vec": "repro.meso.vectorized",
    },
)

#: Batch-controller constructors
#: (``builder(network, batch_size, **params) -> BatchNetworkController``).
#: Mirrors the batch-engine registry: controllers that can decide for a
#: whole replication batch at once (on BatchControlArrays) register a
#: builder by the same short name the serial factory uses, and the
#: closed-loop batch runner picks the batched kernel whenever both the
#: engine and the controller support it.
BATCH_CONTROLLERS = Registry(
    "batch controller",
    {
        "util-bp": "repro.control.batch",
        "cap-bp": "repro.control.batch",
        "original-bp": "repro.control.batch",
    },
)

# Legacy aliases for the registries' internals: tests and downstream
# code reach into these mappings (e.g. to pop a test registration), so
# they stay bound to the live dicts.
_ENGINE_BUILDERS = ENGINES.builders
_BUILTIN_MODULES = ENGINES.builtin_modules
_BATCH_ENGINE_BUILDERS = BATCH_ENGINES.builders
_BUILTIN_BATCH_MODULES = BATCH_ENGINES.builtin_modules
_BATCH_CONTROLLER_BUILDERS = BATCH_CONTROLLERS.builders
_BUILTIN_BATCH_CONTROLLER_MODULES = BATCH_CONTROLLERS.builtin_modules

#: The engine names the CLI offers (built-ins; plugins add more).
ENGINE_NAMES = tuple(sorted(ENGINES.builtin_modules))


# -- engines (thin delegates onto the registry) -------------------------------


def register_engine(
    name: str, builder: Callable[["Scenario"], SimulationEngine]
) -> None:
    """Register an engine constructor (``builder(scenario) -> engine``)."""
    ENGINES.register(name, builder)


def engine_names() -> tuple:
    """All currently selectable engine names (built-in + registered)."""
    return ENGINES.names()


def provider_module(name: str) -> Optional[str]:
    """The module whose import registers engine ``name`` (if known).

    Worker processes under the ``spawn`` start method begin with a
    fresh registry; importing this module there re-establishes the
    registration (engines register at import time, like the
    built-ins).  Returns ``None`` for unregistered names or builders
    defined in ``__main__`` (not importable elsewhere).
    """
    return ENGINES.provider_module(name)


def build_engine(scenario: "Scenario", engine: str = "meso") -> SimulationEngine:
    """Instantiate a simulation engine for a scenario by name."""
    return ENGINES.build(engine, scenario)


# -- batch engines -----------------------------------------------------------


def register_batch_engine(
    name: str, builder: Callable[[Sequence["Scenario"]], BatchEngine]
) -> None:
    """Register a batch-engine constructor (``builder(scenarios) -> engine``).

    ``scenarios`` is one :class:`Scenario` per replication — same
    workload shape, one seed each.  A batch engine should also register
    a plain single-run builder under the same name (batch of one), so
    specs naming the engine work outside the batching pool path too.
    """
    BATCH_ENGINES.register(name, builder)


def batch_engine_names() -> tuple:
    """All currently selectable batch-engine names."""
    return BATCH_ENGINES.names()


def has_batch_engine(name: str) -> bool:
    """Whether ``name`` can step whole seed-batches in one engine."""
    return BATCH_ENGINES.has(name)


def batch_provider_module(name: str) -> Optional[str]:
    """The module whose import registers batch engine ``name`` (if known)."""
    return BATCH_ENGINES.provider_module(name)


def build_batch_engine(
    scenarios: Sequence["Scenario"], engine: str = "meso-vec"
) -> BatchEngine:
    """Instantiate a batch engine over one scenario per replication."""
    if not scenarios:
        raise ValueError("a batch needs at least one scenario")
    return BATCH_ENGINES.build(engine, scenarios)


# -- batch controllers --------------------------------------------------------


def register_batch_controller(
    name: str, builder: Callable[..., Any]
) -> None:
    """Register a batch-controller constructor by controller name.

    ``builder(network, batch_size, **params)`` must return a
    :class:`~repro.control.batch.BatchNetworkController` whose
    decisions are, per replication, identical to those of the serial
    controller of the same name and parameters.
    """
    BATCH_CONTROLLERS.register(name, builder)


def batch_controller_names() -> tuple:
    """All controller names with a batched implementation."""
    return BATCH_CONTROLLERS.names()


def has_batch_controller(name: str) -> bool:
    """Whether controller ``name`` can decide whole batches at once."""
    return BATCH_CONTROLLERS.has(name)


def build_batch_controller(
    name: str, network: "Network", batch_size: int, **params: Any
) -> Any:
    """Instantiate a batched network controller by controller name."""
    return BATCH_CONTROLLERS.build(name, network, batch_size, **params)
