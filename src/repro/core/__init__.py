"""The paper's primary contribution.

* :mod:`repro.core.pressure` — the pressure mapping and link/phase gain
  metrics of Sec. III-A (Eqs. 4-12).
* :mod:`repro.core.util_bp` — the utilization-aware adaptive
  back-pressure controller, a line-by-line implementation of
  Algorithm 1.
* :mod:`repro.core.config` — the controller's tunable parameters with
  the paper's evaluation defaults.
* :mod:`repro.core.engine` — the :class:`SimulationEngine` protocol
  every plant implements, and the name-based engine registry.
"""

from repro.core.config import UtilBpConfig
from repro.core.engine import (
    ENGINE_NAMES,
    SimulationEngine,
    build_engine,
    engine_names,
    register_engine,
)
from repro.core.pressure import (
    link_gain,
    link_gain_original,
    max_link_gain,
    phase_gain,
    pressure,
)
from repro.core.util_bp import UtilBpController

__all__ = [
    "UtilBpConfig",
    "SimulationEngine",
    "ENGINE_NAMES",
    "engine_names",
    "register_engine",
    "build_engine",
    "pressure",
    "link_gain",
    "link_gain_original",
    "phase_gain",
    "max_link_gain",
    "UtilBpController",
]
