"""Setup shim.

All project metadata lives in ``pyproject.toml``.  This file exists so
that editable installs work on environments whose setuptools lacks PEP
660 support (no ``wheel`` package available offline):
``pip install -e . --no-build-isolation`` falls back to it.
"""

from setuptools import setup

setup()
