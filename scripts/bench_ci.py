"""Fast benchmark subset with a committed-baseline regression gate.

Measures closed-loop steps/second of a small, fixed workload set (meso
and micro engines over catalog scenarios), writes the numbers to
``BENCH_ci.json`` and fails (exit 1) if any workload's throughput
dropped more than ``--threshold`` (default 25%) versus the committed
baseline ``benchmarks/baseline_ci.json``.

Raw steps/second is machine-dependent, so every run also times a fixed
pure-Python/numpy *calibration* workload and gates on the
calibration-normalized ratio ``steps_per_second / calibration_score``.
That makes the committed baseline meaningful across laptops and CI
runners of different speeds; the 25% threshold absorbs the residual
noise.

Usage
-----
    PYTHONPATH=src python scripts/bench_ci.py                # gate
    PYTHONPATH=src python scripts/bench_ci.py --update-baseline
    PYTHONPATH=src python scripts/bench_ci.py --output BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict

import numpy as np

from repro.control.factory import make_network_controller
from repro.experiments.runner import build_engine
from repro.scenarios import build_named_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline_ci.json"
SCHEMA_VERSION = 1

#: The gated workloads: (key, engine, scenario name, measured steps).
WORKLOADS = (
    ("meso/steady-3x3", "meso", "steady-3x3", 400),
    ("meso/surge-4x4", "meso", "surge-4x4", 250),
    ("meso/incident-3x3", "meso", "incident-3x3", 400),
    ("micro/steady-3x3", "micro", "steady-3x3", 120),
)

#: Mini-slots simulated before timing starts (populate the queues).
WARMUP_STEPS = 60


def calibration_score(repeats: int = 3) -> float:
    """Machine-speed proxy: fixed Python+numpy work per second.

    The workload imitates the simulators' hot loops — dict traffic,
    list shuffling and small vectorized numpy draws — so its speed
    tracks theirs across CPUs reasonably well.
    """
    rng = np.random.default_rng(0)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        table: Dict[int, int] = {}
        for i in range(200_000):
            table[i & 1023] = i
            acc += table.get((i * 7) & 1023, 0)
        for _ in range(200):
            acc += int(rng.poisson(3.0, size=64).sum())
        best = min(best, time.perf_counter() - start)
    return 1.0 / best


def measure_steps_per_second(
    engine: str, scenario_name: str, steps: int, repeats: int
) -> float:
    """Best-of-``repeats`` closed-loop step rate for one workload."""
    best = 0.0
    for attempt in range(repeats):
        scenario = build_named_scenario(scenario_name, seed=1 + attempt)
        sim = build_engine(scenario, engine)
        controller = make_network_controller("util-bp", scenario.network)
        for _ in range(WARMUP_STEPS):
            sim.step(1.0, controller.decide(sim.observations()))
        start = time.perf_counter()
        for _ in range(steps):
            sim.step(1.0, controller.decide(sim.observations()))
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed)
    return best


def run_benchmarks(repeats: int) -> Dict:
    calibration = calibration_score()
    results = {}
    for key, engine, scenario_name, steps in WORKLOADS:
        rate = measure_steps_per_second(engine, scenario_name, steps, repeats)
        results[key] = {
            "steps_per_second": round(rate, 2),
            "normalized": round(rate / calibration, 5),
        }
        print(
            f"  {key:<22} {rate:>10,.0f} steps/s   "
            f"(normalized {rate / calibration:.3f})"
        )
    return {
        "version": SCHEMA_VERSION,
        "calibration_score": round(calibration, 2),
        "results": results,
    }


def compare(current: Dict, baseline: Dict, threshold: float) -> int:
    """Gate the current run against the baseline; return the exit code."""
    if baseline.get("version") != SCHEMA_VERSION:
        print(
            f"baseline schema version {baseline.get('version')} != "
            f"{SCHEMA_VERSION}; refresh it with --update-baseline",
            file=sys.stderr,
        )
        return 2
    failures = []
    for key, entry in current["results"].items():
        base = baseline["results"].get(key)
        if base is None:
            print(f"  {key}: no baseline entry (new workload, not gated)")
            continue
        ratio = entry["normalized"] / base["normalized"]
        status = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        print(
            f"  {key:<22} normalized {entry['normalized']:.3f} vs "
            f"baseline {base['normalized']:.3f}  ({ratio:.0%})  {status}"
        )
        if status != "ok":
            failures.append(key)
    if failures:
        print(
            f"\nbenchmark regression gate FAILED: {failures} dropped more "
            f"than {threshold:.0%} below baseline",
            file=sys.stderr,
        )
        return 1
    print("\nbenchmark regression gate OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed baseline JSON to gate against",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_ci.json"),
        help="where to write this run's numbers",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated normalized steps/s drop (default 0.25)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per workload (best is kept)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write this run's numbers to the baseline instead of gating",
    )
    args = parser.parse_args()

    print("running CI benchmark subset:")
    current = run_benchmarks(args.repeats)
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    if args.update_baseline:
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"updated baseline {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; create one with "
            f"--update-baseline",
            file=sys.stderr,
        )
        return 2

    print(f"\ngating against {args.baseline} (threshold {args.threshold:.0%}):")
    baseline = json.loads(args.baseline.read_text())
    return compare(current, baseline, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
