"""Fast benchmark subset with committed-baseline and speedup gates.

Measures two kinds of steps/second on a small, fixed workload set:

* **closed-loop** — engine + util-bp controller, the end-to-end cost a
  sweep cell pays (keys like ``meso/steady-3x3``);
* **engine-stepping** — ``observations() + step()`` under a fixed
  phase plan, isolating the simulation backend from the controller
  (keys like ``engine/meso/steady-8x8``);
* **batch-stepping** — pure ``step()`` dynamics under a fixed phase
  plan, comparing the ``meso-vec`` batch engine (B replications per
  step, reported as *replication* mini-slots/s) against serial
  ``meso-counts`` runs of the same shape (keys like
  ``step/meso-vec-b16/steady-10x10-l10``).  Observation building and
  controllers are per-replication Python work identical on both sides,
  so the stepping comparison isolates exactly what batching
  accelerates;
* **batch closed-loop** — the full batched control loop: the in-engine
  observation façade plus the batched util-bp kernel deciding all B
  replications per mini-slot, against serial meso-counts closed-loop
  runs (keys like ``step/meso-vec-b16-utilbp/steady-10x10-l10``).
  This is the paper's main regime — the gate that the vectorized
  controller kernel must keep paying for itself;
* **store overhead** — ``ResultStore`` put/get/query operations per
  second on a file-backed SQLite store (key ``store/put-get-query``):
  the per-cell bookkeeping every sweep pays on top of simulating, so a
  store regression shows up here before it drowns a mass sweep;
* **shard partition** — ``SweepGrid.shard`` assignments per second on
  a mass-replication-sized grid split 8 ways (key
  ``shard/partition-8``): the fleet runner and every ``--shard i/N``
  invocation re-partition the full grid, so hashing throughput is part
  of scale-out startup cost;
* **merge throughput** — ``ResultStore.merge_from`` rows per second
  merging a 400-row shard store into a fresh canonical store (key
  ``store/merge-400``): the tax a fleet run pays after the last shard
  finishes;
* **changepoint detection** — full CUSUM detections (scan +
  199-permutation calibration) per second over deterministic synthetic
  queue series (key ``analysis/cusum-10k``, 50 series x 200 samples,
  reported in series/s): the per-run cost ``repro analyze
  changepoints`` pays for every stored cell, so detection stays cheap
  relative to simulating the runs it analyzes.

Five gates, all enforced in CI:

1. **Regression gate** — writes the numbers to ``BENCH_ci.json`` and
   fails (exit 1) if any workload's calibration-normalized throughput
   dropped more than ``--threshold`` (default 25%) versus the
   committed baseline ``benchmarks/baseline_ci.json``.
2. **Speedup gate** — fails (exit 1) if the ``meso-counts`` engine is
   not at least ``--min-speedup`` (default 5x) faster than the
   reference ``meso`` engine on the gated scenario, comparing raw
   same-machine steps/s.  This pins the fast engine's reason to exist:
   a change that erodes the speedup below 5x defeats the point of
   maintaining a second backend.
3. **Batch speedup gate** — fails (exit 1) if one ``meso-vec`` batch
   of 16 replications does not step at least ``--min-vec-speedup``
   (default 3x) more replication mini-slots/s than 16 serial
   ``meso-counts`` runs would on the gated light-demand 10x10 grid —
   the mass-replication regime the batch engine exists for.
4. **Event-engine speedup gate** — fails (exit 1) if the ``meso-events``
   calendar-queue engine is not at least ``--min-events-speedup``
   (default 3x) faster than serial ``meso-counts`` stepping on the
   gated light-demand 10x10 grid (key
   ``step/meso-events/steady-10x10-l10``).  Light load is exactly the
   regime the event loop exists for: most slots move nothing, and the
   calendar skips them.
5. **Batch closed-loop speedup gate** — fails (exit 1) if the same
   B=16 batch running the *full* control loop (batched util-bp on the
   in-engine arrays) is not at least ``--min-vec-closed-speedup``
   (default 2x) faster, in replication mini-slots/s, than 16 serial
   meso-counts closed-loop runs.  This is the gate the vectorized
   controller kernel answers to: losing it means sweeps are better off
   serial again.

Raw steps/second is machine-dependent, so every run also times a fixed
pure-Python/numpy *calibration* workload and gates the baseline
comparison on the normalized ratio ``steps_per_second /
calibration_score``; the speedup gates are same-run ratios and need no
normalization.

Usage
-----
    PYTHONPATH=src python scripts/bench_ci.py                # gate
    PYTHONPATH=src python scripts/bench_ci.py --update-baseline
    PYTHONPATH=src python scripts/bench_ci.py --output BENCH_ci.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict

import numpy as np

from repro.control.factory import make_network_controller
from repro.core.engine import build_batch_controller, build_batch_engine
from repro.experiments.runner import build_engine
from repro.scenarios import build_named_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline_ci.json"
SCHEMA_VERSION = 8

#: Closed-loop workloads: (key, engine, scenario name, measured steps).
WORKLOADS = (
    ("meso/steady-3x3", "meso", "steady-3x3", 400),
    ("meso/surge-4x4", "meso", "surge-4x4", 250),
    ("meso/incident-3x3", "meso", "incident-3x3", 400),
    ("meso-counts/surge-4x4", "meso-counts", "surge-4x4", 250),
    ("meso-vec/surge-4x4", "meso-vec", "surge-4x4", 250),
    ("micro/steady-3x3", "micro", "steady-3x3", 120),
)

#: Engine-stepping workloads (fixed phase plan, no controller).
ENGINE_WORKLOADS = (
    ("engine/meso/steady-10x10", "meso", "steady-10x10", 200),
    ("engine/meso-counts/steady-10x10", "meso-counts", "steady-10x10", 200),
)

#: The batch-gate workload shape: a large grid at light demand — mass
#: replication of many scenarios is exactly where sweeps spend their
#: seeds, and where per-replication Python overhead (not vehicle
#: volume) dominates the serial engines' cost.
BATCH_SCENARIO = "steady-10x10"
BATCH_SCENARIO_PARAMS = {"load": 0.10}
BATCH_WIDTH = 16

#: Pure-stepping workloads (fixed phase plan, step() only): the serial
#: reference and the B=16 batch, reported in replication mini-slots/s.
STEPPING_WORKLOADS = (
    ("step/meso-counts/steady-10x10-l10", "meso-counts", 400),
    ("step/meso-events/steady-10x10-l10", "meso-events", 400),
    ("step/meso-vec-b16/steady-10x10-l10", "meso-vec", 400),
)

#: Closed-loop batch workloads (util-bp deciding every mini-slot): the
#: serial meso-counts reference and the B=16 batch driven by the
#: batched util-bp kernel on the engine's arrays, in replication
#: mini-slots/s.
CLOSED_BATCH_WORKLOADS = (
    ("step/meso-counts-utilbp/steady-10x10-l10", "meso-counts", 400),
    ("step/meso-vec-b16-utilbp/steady-10x10-l10", "meso-vec", 400),
)

#: Same-run speedup gates: (fast key, reference key, argparse attribute
#: holding the minimum ratio).  The stepping pair compares one B=16
#: batch against 16 serial runs: replication-steps/s on both sides.
SPEEDUP_GATES = (
    (
        "engine/meso-counts/steady-10x10",
        "engine/meso/steady-10x10",
        "min_speedup",
    ),
    (
        "step/meso-vec-b16/steady-10x10-l10",
        "step/meso-counts/steady-10x10-l10",
        "min_vec_speedup",
    ),
    (
        "step/meso-events/steady-10x10-l10",
        "step/meso-counts/steady-10x10-l10",
        "min_events_speedup",
    ),
    (
        "step/meso-vec-b16-utilbp/steady-10x10-l10",
        "step/meso-counts-utilbp/steady-10x10-l10",
        "min_vec_closed_speedup",
    ),
)

#: Mini-slots simulated before timing starts (populate the queues).
WARMUP_STEPS = 60

#: Warm-up for the light-demand stepping workloads: queues fill slower.
STEPPING_WARMUP = 120

#: Green dwell of the fixed phase plan used for engine stepping.
PHASE_DWELL = 15


def calibration_score(repeats: int = 3) -> float:
    """Machine-speed proxy: fixed Python+numpy work per second.

    The workload imitates the simulators' hot loops — dict traffic,
    list shuffling and small vectorized numpy draws — so its speed
    tracks theirs across CPUs reasonably well.
    """
    rng = np.random.default_rng(0)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        table: Dict[int, int] = {}
        for i in range(200_000):
            table[i & 1023] = i
            acc += table.get((i * 7) & 1023, 0)
        for _ in range(200):
            acc += int(rng.poisson(3.0, size=64).sum())
        best = min(best, time.perf_counter() - start)
    return 1.0 / best


def measure_steps_per_second(
    engine: str, scenario_name: str, steps: int, repeats: int
) -> float:
    """Best-of-``repeats`` closed-loop step rate for one workload."""
    best = 0.0
    for attempt in range(repeats):
        scenario = build_named_scenario(scenario_name, seed=1 + attempt)
        sim = build_engine(scenario, engine)
        controller = make_network_controller("util-bp", scenario.network)
        for _ in range(WARMUP_STEPS):
            sim.step(1.0, controller.decide(sim.observations()))
        start = time.perf_counter()
        for _ in range(steps):
            sim.step(1.0, controller.decide(sim.observations()))
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed)
    return best


def measure_engine_steps_per_second(
    engine: str, scenario_name: str, steps: int, repeats: int
) -> float:
    """Best-of-``repeats`` engine-only step rate (fixed phase plan).

    Each step still builds the observations — that is part of an
    engine's per-mini-slot duty in the closed loop — but the phase
    decisions come from a precomputed cycle so no controller cost
    dilutes the engine comparison.
    """
    best = 0.0
    for attempt in range(repeats):
        scenario = build_named_scenario(scenario_name, seed=1 + attempt)
        sim = build_engine(scenario, engine)
        nodes = list(scenario.network.intersections)
        plan = [
            {node: 1 + (k // PHASE_DWELL) % 4 for node in nodes}
            for k in range(WARMUP_STEPS + steps)
        ]
        for k in range(WARMUP_STEPS):
            sim.observations()
            sim.step(1.0, plan[k])
        start = time.perf_counter()
        for k in range(WARMUP_STEPS, WARMUP_STEPS + steps):
            sim.observations()
            sim.step(1.0, plan[k])
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed)
    return best


def measure_serial_stepping(
    engine, scenario_name, params, steps, repeats
) -> float:
    """Best-of-``repeats`` pure ``step()`` rate of one serial engine."""
    best = 0.0
    for attempt in range(repeats):
        scenario = build_named_scenario(
            scenario_name, seed=1 + attempt, **params
        )
        sim = build_engine(scenario, engine)
        nodes = list(scenario.network.intersections)
        plan = [
            {node: 1 + (k // PHASE_DWELL) % 4 for node in nodes}
            for k in range(STEPPING_WARMUP + steps)
        ]
        for k in range(STEPPING_WARMUP):
            sim.step(1.0, plan[k])
        start = time.perf_counter()
        for k in range(STEPPING_WARMUP, STEPPING_WARMUP + steps):
            sim.step(1.0, plan[k])
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed)
    return best


def measure_batch_stepping(
    scenario_name, params, width, steps, repeats
) -> float:
    """Best-of-``repeats`` batch ``step()`` rate in replication-steps/s.

    One batch mini-slot advances ``width`` replications, so the
    reported rate is ``batch steps/s x width`` — directly comparable to
    a serial engine's steps/s on the same workload.
    """
    best = 0.0
    for attempt in range(repeats):
        scenarios = [
            build_named_scenario(
                scenario_name, seed=1 + attempt * width + b, **params
            )
            for b in range(width)
        ]
        sim = build_batch_engine(scenarios, "meso-vec")
        n_nodes = len(scenarios[0].network.intersections)
        plan = [
            np.full(n_nodes, 1 + (k // PHASE_DWELL) % 4, dtype=np.int64)
            for k in range(STEPPING_WARMUP + steps)
        ]
        for k in range(STEPPING_WARMUP):
            sim.step(1.0, plan[k])
        start = time.perf_counter()
        for k in range(STEPPING_WARMUP, STEPPING_WARMUP + steps):
            sim.step(1.0, plan[k])
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed * width)
    return best


def measure_serial_closed_loop(
    engine, scenario_name, params, steps, repeats
) -> float:
    """Best-of-``repeats`` serial closed-loop rate (util-bp each slot)."""
    best = 0.0
    for attempt in range(repeats):
        scenario = build_named_scenario(
            scenario_name, seed=1 + attempt, **params
        )
        sim = build_engine(scenario, engine)
        controller = make_network_controller("util-bp", scenario.network)
        for _ in range(STEPPING_WARMUP):
            sim.step(1.0, controller.decide(sim.observations()))
        start = time.perf_counter()
        for _ in range(steps):
            sim.step(1.0, controller.decide(sim.observations()))
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed)
    return best


def measure_batch_closed_loop(
    scenario_name, params, width, steps, repeats
) -> float:
    """Best-of-``repeats`` batched closed-loop rate in replication-steps/s.

    Every mini-slot the batched util-bp kernel decides all ``width``
    replications on the engine's internal arrays
    (``controller_arrays``), then the batch engine steps them — the
    exact loop :func:`repro.experiments.runner.run_scenario_batch`
    runs for a sweep cell.
    """
    best = 0.0
    for attempt in range(repeats):
        scenarios = [
            build_named_scenario(
                scenario_name, seed=1 + attempt * width + b, **params
            )
            for b in range(width)
        ]
        sim = build_batch_engine(scenarios, "meso-vec")
        controller = build_batch_controller(
            "util-bp", scenarios[0].network, width
        )
        for _ in range(STEPPING_WARMUP):
            sim.step(1.0, controller.decide_batch(sim.controller_arrays()))
        start = time.perf_counter()
        for _ in range(steps):
            sim.step(1.0, controller.decide_batch(sim.controller_arrays()))
        elapsed = time.perf_counter() - start
        best = max(best, steps / elapsed * width)
    return best


#: Cells written/read/queried by the store-overhead workload.
STORE_CELLS = 150


def measure_store_ops_per_second(repeats: int, cells: int = STORE_CELLS) -> float:
    """Best-of-``repeats`` ResultStore put+get+query operations/s.

    Uses a real file-backed store (the sweep configuration) with a
    synthetic but schema-complete payload, so the number reflects the
    JSON encode + SQLite commit + decode cost a sweep cell actually
    pays — not simulation time.
    """
    from repro.orchestration import RunSpec
    from repro.results.store import ResultStore

    summary = {
        "duration": 600.0,
        "vehicles_entered": 1000,
        "vehicles_left": 950,
        "average_queuing_time": 42.0,
        "average_travel_time": 120.0,
        "total_queuing_time": 42000.0,
        "max_queuing_time": 300.0,
        "throughput_per_hour": 5700.0,
        "delay_mode": "per-vehicle",
    }
    payload = {
        "scenario_name": "bench-store",
        "controller_name": "util-bp",
        "duration": 600.0,
        "summary": summary,
        "vehicles_in_network": 50,
        "backlog": 0,
    }
    specs = [
        RunSpec(pattern="I", seed=seed, duration=600.0)
        for seed in range(cells)
    ]
    best = 0.0
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(Path(tmp) / "bench.sqlite")
            start = time.perf_counter()
            for spec in specs:
                store.put(spec, payload)
            for spec in specs:
                store.get(spec)
            for seed in range(0, cells, 10):
                store.query(pattern="I", seed=seed)
            elapsed = time.perf_counter() - start
            operations = 2 * cells + cells // 10
            store.close()
        best = max(best, operations / elapsed)
    return best


#: The shard-partition workload grid: 3 scenarios x 2 controllers x
#: 2 engines x 30 seeds = 360 cells, a small mass-replication sweep.
SHARD_GRID_SEEDS = 30
SHARD_COUNT = 8


def _shard_bench_grid():
    from repro.orchestration.spec import SweepGrid

    return SweepGrid(
        scenarios=("steady-3x3", "surge-4x4", "incident-3x3"),
        controllers=(("util-bp", ()), ("cap-bp", ())),
        engines=("meso", "meso-counts"),
        seeds=tuple(range(1, SHARD_GRID_SEEDS + 1)),
    )


def measure_shard_partition(repeats: int) -> float:
    """Best-of-``repeats`` ``SweepGrid.shard`` assignments per second.

    Every ``shard(i, N)`` call expands and content-hashes the full
    grid, so partitioning a grid N ways costs ``N x |grid|``
    assignments — exactly what the fleet runner (and N independent
    ``--shard i/N`` hosts) pay before any cell simulates.
    """
    grid = _shard_bench_grid()
    cells = len(grid)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        total = 0
        for index in range(SHARD_COUNT):
            total += len(grid.shard(index, SHARD_COUNT))
        elapsed = time.perf_counter() - start
        assert total == cells, f"partition lost cells: {total} != {cells}"
        best = max(best, cells * SHARD_COUNT / elapsed)
    return best


#: Rows merged by the merge-throughput workload.
MERGE_ROWS = 400


def measure_merge_rows_per_second(repeats: int, rows: int = MERGE_ROWS) -> float:
    """Best-of-``repeats`` ``ResultStore.merge_from`` rows per second.

    One populated shard store is built once; each repeat merges it
    into a fresh canonical store, so the timed cost is the merge
    itself (row scan, conflict checks, one transaction) — the tax a
    fleet run pays after its last shard completes.
    """
    from repro.orchestration import RunSpec
    from repro.results.store import ResultStore

    payload = {
        "scenario_name": "bench-merge",
        "controller_name": "util-bp",
        "duration": 600.0,
        "summary": {
            "duration": 600.0,
            "vehicles_entered": 1000,
            "vehicles_left": 950,
            "average_queuing_time": 42.0,
            "average_travel_time": 120.0,
            "total_queuing_time": 42000.0,
            "max_queuing_time": 300.0,
            "throughput_per_hour": 5700.0,
            "delay_mode": "per-vehicle",
        },
        "vehicles_in_network": 50,
        "backlog": 0,
    }
    best = 0.0
    with tempfile.TemporaryDirectory() as tmp:
        source_path = Path(tmp) / "shard.sqlite"
        with ResultStore(source_path) as source:
            for seed in range(rows):
                source.put(
                    RunSpec(pattern="I", seed=seed, duration=600.0), payload
                )
        for attempt in range(repeats):
            destination_path = Path(tmp) / f"merged-{attempt}.sqlite"
            with ResultStore(destination_path) as destination:
                start = time.perf_counter()
                stats = destination.merge_from(source_path)
                elapsed = time.perf_counter() - start
            assert stats.inserted == rows
            best = max(best, rows / elapsed)
    return best


#: Shape of the changepoint-detection workload: series count and
#: samples per series (roughly 10k samples total, hence the key).
ANALYSIS_SERIES = 50
ANALYSIS_SAMPLES = 200


def measure_cusum_series_per_second(repeats: int) -> float:
    """Best-of-``repeats`` full CUSUM detections per second.

    Builds a fixed synthetic batch of ``ANALYSIS_SERIES`` queue-like
    series (seeded AR(1) noise, half with an injected mid-series level
    shift — the analyzer's real input shape) and times
    ``detect_changepoint`` over each: one scan plus its 199-permutation
    threshold calibration, the dominant cost of ``repro analyze``.
    """
    from repro.analysis import detect_changepoint

    rng = np.random.default_rng(12345)
    batch = []
    for index in range(ANALYSIS_SERIES):
        noise = rng.normal(0.0, 1.0, size=ANALYSIS_SAMPLES)
        values = np.empty(ANALYSIS_SAMPLES)
        level = 0.0
        for i in range(ANALYSIS_SAMPLES):
            level = 0.7 * level + noise[i]
            values[i] = level
        if index % 2 == 0:
            values[ANALYSIS_SAMPLES // 2 :] += 8.0
        batch.append(values)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        detections = sum(
            1
            for values in batch
            if detect_changepoint(values, seed=7) is not None
        )
        elapsed = time.perf_counter() - start
        assert detections >= ANALYSIS_SERIES // 2, (
            f"detector missed injected shifts: {detections}"
        )
        best = max(best, ANALYSIS_SERIES / elapsed)
    return best


def run_benchmarks(
    repeats: int, minimums: Dict[str, float], speedup_repeats: int
) -> Dict:
    calibration = calibration_score()
    results = {}

    def record(key, rate, unit="steps/s"):
        results[key] = {
            "steps_per_second": round(rate, 2),
            "normalized": round(rate / calibration, 5),
        }
        print(
            f"  {key:<36} {rate:>10,.0f} {unit:<12}"
            f"(normalized {rate / calibration:.3f})"
        )

    for key, engine, scenario_name, steps in WORKLOADS:
        record(
            key,
            measure_steps_per_second(engine, scenario_name, steps, repeats),
        )
    # The speedup gates compare two same-run numbers, so their noise
    # adds up: every workload feeding a ratio gets its own (usually
    # higher) repeat count instead of a loosened threshold.
    for key, engine, scenario_name, steps in ENGINE_WORKLOADS:
        record(
            key,
            measure_engine_steps_per_second(
                engine, scenario_name, steps, speedup_repeats
            ),
        )
    for key, engine, steps in STEPPING_WORKLOADS:
        if engine == "meso-vec":
            rate = measure_batch_stepping(
                BATCH_SCENARIO,
                BATCH_SCENARIO_PARAMS,
                BATCH_WIDTH,
                steps,
                speedup_repeats,
            )
            record(key, rate, unit="rep-steps/s")
        else:
            record(
                key,
                measure_serial_stepping(
                    engine,
                    BATCH_SCENARIO,
                    BATCH_SCENARIO_PARAMS,
                    steps,
                    speedup_repeats,
                ),
            )
    for key, engine, steps in CLOSED_BATCH_WORKLOADS:
        if engine == "meso-vec":
            rate = measure_batch_closed_loop(
                BATCH_SCENARIO,
                BATCH_SCENARIO_PARAMS,
                BATCH_WIDTH,
                steps,
                speedup_repeats,
            )
            record(key, rate, unit="rep-steps/s")
        else:
            record(
                key,
                measure_serial_closed_loop(
                    engine,
                    BATCH_SCENARIO,
                    BATCH_SCENARIO_PARAMS,
                    steps,
                    speedup_repeats,
                ),
            )
    record(
        "store/put-get-query",
        measure_store_ops_per_second(repeats),
        unit="ops/s",
    )
    record(
        "shard/partition-8",
        measure_shard_partition(repeats),
        unit="cells/s",
    )
    record(
        "store/merge-400",
        measure_merge_rows_per_second(repeats),
        unit="rows/s",
    )
    record(
        "analysis/cusum-10k",
        measure_cusum_series_per_second(repeats),
        unit="series/s",
    )
    speedups = []
    for fast_key, reference_key, minimum_name in SPEEDUP_GATES:
        ratio = (
            results[fast_key]["steps_per_second"]
            / results[reference_key]["steps_per_second"]
        )
        speedups.append(
            {
                "fast": fast_key,
                "reference": reference_key,
                "ratio": round(ratio, 3),
                "minimum": minimums[minimum_name],
            }
        )
    return {
        "version": SCHEMA_VERSION,
        "calibration_score": round(calibration, 2),
        "results": results,
        "speedups": speedups,
    }


def gate_speedups(current: Dict) -> int:
    """Enforce the same-run engine speedup gates; return the exit code."""
    code = 0
    for gate in current.get("speedups", []):
        status = "ok" if gate["ratio"] >= gate["minimum"] else "TOO SLOW"
        print(
            f"  {gate['fast']} vs {gate['reference']}: "
            f"{gate['ratio']:.2f}x (gate >= {gate['minimum']:.1f}x)  {status}"
        )
        if status != "ok":
            print(
                f"\nspeedup gate FAILED: {gate['fast']} must be at least "
                f"{gate['minimum']:.1f}x faster than {gate['reference']}",
                file=sys.stderr,
            )
            code = 1
    return code


def compare(current: Dict, baseline: Dict, threshold: float) -> int:
    """Gate the current run against the baseline; return the exit code."""
    if baseline.get("version") != SCHEMA_VERSION:
        print(
            f"baseline schema version {baseline.get('version')} != "
            f"{SCHEMA_VERSION}; refresh it with --update-baseline",
            file=sys.stderr,
        )
        return 2
    failures = []
    for key, entry in current["results"].items():
        base = baseline["results"].get(key)
        if base is None:
            print(f"  {key}: no baseline entry (new workload, not gated)")
            continue
        ratio = entry["normalized"] / base["normalized"]
        status = "ok" if ratio >= 1.0 - threshold else "REGRESSION"
        print(
            f"  {key:<30} normalized {entry['normalized']:.3f} vs "
            f"baseline {base['normalized']:.3f}  ({ratio:.0%})  {status}"
        )
        if status != "ok":
            failures.append(key)
    if failures:
        print(
            f"\nbenchmark regression gate FAILED: {failures} dropped more "
            f"than {threshold:.0%} below baseline",
            file=sys.stderr,
        )
        return 1
    print("\nbenchmark regression gate OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed baseline JSON to gate against",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_ci.json"),
        help="where to write this run's numbers",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum tolerated normalized steps/s drop (default 0.25)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=5.0,
        help=(
            "required meso-counts over meso steps/s ratio on the gated "
            "scenario (default 5.0)"
        ),
    )
    parser.add_argument(
        "--min-vec-speedup", type=float, default=3.0,
        help=(
            "required meso-vec@B=16 replication-steps/s over 16 serial "
            "meso-counts runs on the gated light-demand grid (default 3.0)"
        ),
    )
    parser.add_argument(
        "--min-events-speedup", type=float, default=3.0,
        help=(
            "required meso-events over meso-counts steps/s ratio on the "
            "gated light-demand grid (default 3.0): the event engine only "
            "earns its keep by skipping idle slots"
        ),
    )
    parser.add_argument(
        "--min-vec-closed-speedup", type=float, default=2.0,
        help=(
            "required batched closed-loop (meso-vec@B=16 + batched "
            "util-bp) replication-steps/s over 16 serial meso-counts "
            "closed-loop runs (default 2.0)"
        ),
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats per workload (best is kept)",
    )
    parser.add_argument(
        "--speedup-repeats", type=int, default=None,
        help=(
            "timing repeats for the workloads feeding same-run speedup "
            "gates (default: same as --repeats); raise this to tame "
            "ratio-gate flake without loosening the thresholds"
        ),
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write this run's numbers to the baseline instead of gating",
    )
    args = parser.parse_args()

    print("running CI benchmark subset:")
    current = run_benchmarks(
        args.repeats,
        {
            "min_speedup": args.min_speedup,
            "min_vec_speedup": args.min_vec_speedup,
            "min_events_speedup": args.min_events_speedup,
            "min_vec_closed_speedup": args.min_vec_closed_speedup,
        },
        speedup_repeats=(
            args.repeats
            if args.speedup_repeats is None
            else args.speedup_repeats
        ),
    )
    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    print("\nengine speedup gate:")
    speedup_code = gate_speedups(current)

    if args.update_baseline:
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"updated baseline {args.baseline}")
        return speedup_code

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; create one with "
            f"--update-baseline",
            file=sys.stderr,
        )
        return 2

    print(f"\ngating against {args.baseline} (threshold {args.threshold:.0%}):")
    baseline = json.loads(args.baseline.read_text())
    regression_code = compare(current, baseline, args.threshold)
    return regression_code or speedup_code


if __name__ == "__main__":
    raise SystemExit(main())
