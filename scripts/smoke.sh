#!/usr/bin/env bash
# Pre-merge smoke gate: lint, tier-1 tests, the scenario catalog, a
# 2-worker mini-sweep, a sharded sweep + merge (and fleet run) that
# must export byte-identically to the unsharded run, and the service.
#
# Usage: bash scripts/smoke.sh
#
# Designed to fail fast in non-interactive CI shells: no reliance on a
# pre-activated venv (set PYTHON to pick an interpreter explicitly),
# every stage runs under `set -euo pipefail`, and optional tooling
# (ruff) is detected rather than assumed.  Set SMOKE_SKIP_TESTS=1 when
# the tier-1 suite already ran in a separate CI step.
#
# The mini-sweep exercises the full orchestration path (spec expansion,
# process-parallel execution, SQLite result store) end to end: it runs
# the same grid cold, then warm, and the warm pass must execute zero
# cells (true resume).  Set SMOKE_STORE_DIR to keep the store directory
# after the run (CI uploads its results.sqlite as an artifact);
# otherwise a temp directory is used and cleaned up.

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ -z "${PYTHON:-}" ]]; then
    if command -v python3 >/dev/null 2>&1; then
        PYTHON=python3
    elif command -v python >/dev/null 2>&1; then
        PYTHON=python
    else
        echo "smoke FAILED: no python interpreter on PATH" >&2
        exit 1
    fi
fi

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== lint (ruff) =="
if command -v ruff >/dev/null 2>&1; then
    ruff check .
else
    echo "ruff not installed; skipping lint (CI installs it via .[dev])"
fi

if [[ "${SMOKE_SKIP_TESTS:-0}" != "1" ]]; then
    echo
    echo "== tier-1 tests =="
    "$PYTHON" -m pytest -x -q
fi

echo
echo "== scenario catalog =="
"$PYTHON" -m repro scenarios list
"$PYTHON" -m repro sweep --scenario surge-4x4 --duration 120

echo
echo "== 2-worker mini-sweep (cold, then warm from the result store) =="
if [[ -n "${SMOKE_STORE_DIR:-}" ]]; then
    CACHE_DIR="$SMOKE_STORE_DIR"
    mkdir -p "$CACHE_DIR"
    KEEP_STORE=1
else
    CACHE_DIR="$(mktemp -d)"
    KEEP_STORE=0
fi
STORE="$CACHE_DIR/results.sqlite"
SERVE_PID=""
cleanup() {
    [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
    [[ "$KEEP_STORE" == "0" ]] && rm -rf "$CACHE_DIR" || true
}
trap cleanup EXIT

"$PYTHON" -m repro sweep \
    --patterns I II \
    --controllers util-bp cap-bp:period=18 \
    --duration 300 --workers 2 --store "$STORE"

WARM=$("$PYTHON" -m repro sweep \
    --patterns I II \
    --controllers util-bp cap-bp:period=18 \
    --duration 300 --workers 2 --store "$STORE")
echo "$WARM"
echo "$WARM" | grep -q "executed 0," \
    || { echo "smoke FAILED: warm-store sweep re-executed cells"; exit 1; }

[[ -f "$STORE" ]] \
    || { echo "smoke FAILED: sweep left no store at $STORE"; exit 1; }

echo
echo "== result store inspection =="
"$PYTHON" -m repro results list --store "$STORE"
"$PYTHON" -m repro results export --store "$STORE" --format csv | head -n 3

echo
echo "== sharded sweep (2 shards + merge == unsharded run, bit for bit) =="
# The same 4-cell grid runs three ways: unsharded into one store, as
# two deterministic --shard halves merged by spec hash, and as a
# --fleet run (shard subprocesses + auto-merge).  All three stores
# must export byte-identically — execution strategy must leave no
# trace in the results — and a resume against the merged store must
# compute nothing.
SHARD_ARGS=(--patterns I --controllers util-bp --seeds 1 2 3 4 --duration 120)
"$PYTHON" -m repro sweep "${SHARD_ARGS[@]}" --store "$CACHE_DIR/whole.sqlite"
"$PYTHON" -m repro sweep "${SHARD_ARGS[@]}" --shard 0/2 \
    --store "$CACHE_DIR/shard-0.sqlite"
"$PYTHON" -m repro sweep "${SHARD_ARGS[@]}" --shard 1/2 \
    --store "$CACHE_DIR/shard-1.sqlite"
"$PYTHON" -m repro results merge "$CACHE_DIR/sharded.sqlite" \
    "$CACHE_DIR/shard-0.sqlite" "$CACHE_DIR/shard-1.sqlite"
"$PYTHON" -m repro results export --store "$CACHE_DIR/whole.sqlite" \
    --format csv > "$CACHE_DIR/whole.csv"
"$PYTHON" -m repro results export --store "$CACHE_DIR/sharded.sqlite" \
    --format csv > "$CACHE_DIR/sharded.csv"
cmp "$CACHE_DIR/whole.csv" "$CACHE_DIR/sharded.csv" \
    || { echo "smoke FAILED: sharded+merged export differs from the unsharded run"; exit 1; }
RESUME=$("$PYTHON" -m repro sweep "${SHARD_ARGS[@]}" \
    --store "$CACHE_DIR/sharded.sqlite")
echo "$RESUME"
echo "$RESUME" | grep -q "executed 0," \
    || { echo "smoke FAILED: resume after merge re-executed cells"; exit 1; }

FLEET=$("$PYTHON" -m repro sweep "${SHARD_ARGS[@]}" --fleet 2 \
    --store "$CACHE_DIR/fleet.sqlite" 2>/dev/null)
echo "$FLEET"
echo "$FLEET" | grep -q "fleet: 2 shards" \
    || { echo "smoke FAILED: fleet sweep did not report its shards"; exit 1; }
"$PYTHON" -m repro results export --store "$CACHE_DIR/fleet.sqlite" \
    --format csv > "$CACHE_DIR/fleet.csv"
cmp "$CACHE_DIR/whole.csv" "$CACHE_DIR/fleet.csv" \
    || { echo "smoke FAILED: fleet-run export differs from the unsharded run"; exit 1; }

echo
echo "== batched meso-vec sweep (seed fan-out through the pool) =="
# Two seeds of one scenario on the batch engine run as ONE batched
# simulation; the store must still end up with one row per seed (cache
# keys are per spec, so batch execution stays resumable cell by cell).
# The closed loop must run on the batched util-bp kernel: a
# "falling back" notice on stderr means the vectorized fast path
# silently de-vectorized (layout drift, renamed controller, ...).
VEC_ERR="$CACHE_DIR/vec-sweep.stderr"
"$PYTHON" -m repro sweep \
    --scenario steady-4x4 --engine meso-vec \
    --seeds 1 2 --duration 300 --store "$STORE" \
    2> "$VEC_ERR" || { cat "$VEC_ERR" >&2; exit 1; }
cat "$VEC_ERR" >&2
grep -q "falling back" "$VEC_ERR" \
    && { echo "smoke FAILED: batched sweep fell back to per-replication controllers"; exit 1; }

VEC_ROWS=$("$PYTHON" - "$STORE" <<'EOF'
import sys

from repro.results import ResultStore

store = ResultStore(sys.argv[1])
rows = store.query(engine="meso-vec", pattern="steady-4x4")
print(len(rows))
seeds = sorted(record.spec.seed for record in rows)
assert seeds == [1, 2], f"expected one row per seed, got seeds {seeds}"
for record in rows:
    assert record.summary.delay_mode == "aggregate", record.summary
EOF
)
[[ "$VEC_ROWS" == "2" ]] \
    || { echo "smoke FAILED: meso-vec sweep left $VEC_ROWS rows (want 2)"; exit 1; }

echo
echo "== event-driven engine (meso-events sweep + parity spot-check) =="
# One sweep cell on the calendar-queue engine, then replay the same
# cell serially on meso-counts: the stored summary must match exactly
# (the event engine's contract is bit-identical trajectories, not
# statistical agreement).
"$PYTHON" -m repro sweep \
    --scenario steady-4x4 --engine meso-events \
    --seeds 3 --duration 300 --store "$STORE"
"$PYTHON" - "$STORE" <<'EOF'
import sys

from repro.results import ResultStore
from repro.experiments.runner import run_scenario
from repro.scenarios import build_named_scenario

store = ResultStore(sys.argv[1])
[record] = store.query(engine="meso-events", pattern="steady-4x4")
assert record.summary.delay_mode == "aggregate", record.summary
reference = run_scenario(
    build_named_scenario("steady-4x4", seed=record.spec.seed),
    controller=record.spec.controller,
    controller_params=dict(record.spec.controller_params),
    duration=record.spec.duration,
    engine="meso-counts",
)
assert record.summary == reference.summary, (
    f"meso-events summary diverged from meso-counts:\n"
    f"  events: {record.summary}\n  counts: {reference.summary}"
)
print("meso-events sweep cell == serial meso-counts replay")
EOF

echo
echo "== simulation service (serve + submit over the shared store) =="
# Boot the service on a random port against the store the sweeps just
# filled.  A cell the sweeps already computed must be served from the
# store without simulating; a fresh cell submitted twice must trigger
# exactly one engine execution (the second submission shares the
# first's in-flight/completed cell).
SERVE_PORT=$((20000 + RANDOM % 20000))
SERVE_URL="http://127.0.0.1:$SERVE_PORT"
SERVE_LOG="$CACHE_DIR/serve.log"
"$PYTHON" -m repro serve --store "$STORE" --port "$SERVE_PORT" 2> "$SERVE_LOG" &
SERVE_PID=$!

for _ in $(seq 1 50); do
    if "$PYTHON" -c "import urllib.request as u; u.urlopen('$SERVE_URL/healthz', timeout=1)" 2>/dev/null; then
        break
    fi
    kill -0 "$SERVE_PID" 2>/dev/null \
        || { echo "smoke FAILED: repro serve died at startup"; cat "$SERVE_LOG" >&2; exit 1; }
    sleep 0.2
done

# 1. A cell the meso-vec sweep already stored: instant store hit.
HIT=$("$PYTHON" -m repro submit --url "$SERVE_URL" \
    --scenario steady-4x4 --engine meso-vec --seeds 1 \
    --duration 300 --wait 60)
echo "$HIT"
echo "$HIT" | grep -q "(1 from store, 0 executed" \
    || { echo "smoke FAILED: warm cell was not served from the store"; cat "$SERVE_LOG" >&2; exit 1; }

# 2. A fresh cell submitted twice: one execution, the repeat is instant.
FIRST=$("$PYTHON" -m repro submit --url "$SERVE_URL" \
    --scenario steady-4x4 --engine meso-vec --seeds 9 \
    --duration 300 --wait 120)
echo "$FIRST"
echo "$FIRST" | grep -q "(0 from store, 1 executed" \
    || { echo "smoke FAILED: fresh cell was not executed"; cat "$SERVE_LOG" >&2; exit 1; }
SECOND=$("$PYTHON" -m repro submit --url "$SERVE_URL" \
    --scenario steady-4x4 --engine meso-vec --seeds 9 \
    --duration 300 --wait 60)
echo "$SECOND"
echo "$SECOND" | grep -q "1 shared with earlier jobs" \
    || { echo "smoke FAILED: repeat submission did not share the cell"; cat "$SERVE_LOG" >&2; exit 1; }

# The service's pool must have executed exactly one cell in total.
"$PYTHON" - "$SERVE_URL" <<'EOF'
import json
import sys
import urllib.request

with urllib.request.urlopen(sys.argv[1] + "/healthz", timeout=5) as response:
    stats = json.load(response)["stats"]
assert stats["executed"] == 1, f"expected exactly 1 execution, got {stats}"
assert stats["cache_hits"] == 1, f"expected 1 store hit, got {stats}"
print(f"service stats: {stats}")
EOF

# Every service log line must be structured JSON.
"$PYTHON" - "$SERVE_LOG" <<'EOF'
import json
import sys

lines = [line for line in open(sys.argv[1]) if line.strip()]
assert lines, "service wrote no log lines"
for line in lines:
    record = json.loads(line)
    assert {"ts", "level", "component", "event"} <= set(record), record
print(f"service log: {len(lines)} structured JSON lines")
EOF

kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo
echo "== regime-shift analysis (gridlock breakdown vs steady stable) =="
# A tiny gridlock-vs-steady pair with entry-queue recording on, run as
# a 2-shard fleet so the analyzer consumes a *merged* store; the CUSUM
# analyzer must flag the overloaded family as a breakdown with a
# finite onset and call the steady family stable, and the CSV export
# must round-trip the same verdicts.
ANALYZE_STORE="$CACHE_DIR/analyze.sqlite"
"$PYTHON" -m repro sweep \
    --scenario gridlock-3x3 steady-3x3 --engine meso-counts \
    --seeds 1 2 --duration 900 --record-entry-queues -1 \
    --fleet 2 --store "$ANALYZE_STORE" 2>/dev/null
ANALYSIS=$("$PYTHON" -m repro analyze changepoints --store "$ANALYZE_STORE")
echo "$ANALYSIS"
echo "$ANALYSIS" | grep -E "gridlock-3x3.*breakdown@[0-9]+s" >/dev/null \
    || { echo "smoke FAILED: gridlock cell was not flagged as a breakdown"; exit 1; }
echo "$ANALYSIS" | grep -E "steady-3x3.*\| stable" >/dev/null \
    || { echo "smoke FAILED: steady cell was not judged stable"; exit 1; }
"$PYTHON" -m repro analyze changepoints --store "$ANALYZE_STORE" \
    --format csv --output "$CACHE_DIR/verdicts.csv"
"$PYTHON" - "$CACHE_DIR/verdicts.csv" <<'EOF'
import csv
import sys

with open(sys.argv[1], newline="") as handle:
    rows = list(csv.DictReader(handle))
by_pattern = {row["pattern"]: row for row in rows}
gridlock = by_pattern["gridlock-3x3"]
steady = by_pattern["steady-3x3"]
assert gridlock["status"] == "breakdown", gridlock
assert float(gridlock["onset"]) > 0, gridlock
assert float(gridlock["onset_lo"]) <= float(gridlock["onset_hi"]), gridlock
assert steady["status"] == "stable", steady
print(f"verdict CSV round-trip: {len(rows)} rows, "
      f"gridlock breakdown@{float(gridlock['onset']):.0f}s, steady stable")
EOF

echo
echo "smoke OK"
