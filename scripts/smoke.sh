#!/usr/bin/env bash
# Pre-merge smoke gate: tier-1 tests plus a 2-worker mini-sweep.
#
# Usage: bash scripts/smoke.sh
#
# The mini-sweep exercises the full orchestration path (spec expansion,
# process-parallel execution, result cache) end to end: it runs the
# same grid cold, then warm, and the warm pass must execute zero cells.

set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== 2-worker mini-sweep (cold, then warm from cache) =="
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT

python -m repro sweep \
    --patterns I II \
    --controllers util-bp cap-bp:period=18 \
    --duration 300 --workers 2 --cache-dir "$CACHE_DIR"

WARM=$(python -m repro sweep \
    --patterns I II \
    --controllers util-bp cap-bp:period=18 \
    --duration 300 --workers 2 --cache-dir "$CACHE_DIR")
echo "$WARM"
echo "$WARM" | grep -q "executed 0," \
    || { echo "smoke FAILED: warm-cache sweep re-executed cells"; exit 1; }

echo
echo "smoke OK"
