#!/usr/bin/env python3
"""Docs link checker: every intra-repo Markdown link must resolve.

Scans README.md and docs/*.md for Markdown links and fails (exit 1)
when a relative link points at a file that does not exist, or a
same-file/cross-file ``#fragment`` names a heading the target page
does not contain. External links (http/https/mailto) are not fetched —
CI must not depend on the network — and bare anchors inside code
blocks are ignored.

Stdlib only; run from anywhere:

    python scripts/check_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$")
EXTERNAL = ("http://", "https://", "mailto:")


def _strip_code_blocks(text: str) -> str:
    """Blank out fenced code blocks so example links are not checked."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            out.append("")
            continue
        out.append("" if fenced else line)
    return "\n".join(out)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    """All heading anchors a Markdown file exposes."""
    slugs = set()
    for line in _strip_code_blocks(path.read_text()).splitlines():
        match = HEADING.match(line)
        if match:
            slugs.add(_slugify(match.group(1)))
    return slugs


def check_file(path: Path, root: Path) -> list:
    """Return a list of broken-link descriptions for one file."""
    problems = []
    for target in LINK.findall(_strip_code_blocks(path.read_text())):
        if target.startswith(EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        resolved = (path.parent / base).resolve() if base else path
        if base and not resolved.exists():
            problems.append(f"{path.relative_to(root)}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if _slugify(fragment) not in _anchors(resolved):
                problems.append(
                    f"{path.relative_to(root)}: missing anchor -> {target}"
                )
    return problems


def main() -> int:
    """Check every documentation page; print problems, return exit code."""
    root = Path(__file__).resolve().parent.parent
    pages = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    problems = []
    for page in pages:
        if not page.exists():
            problems.append(f"missing page: {page.relative_to(root)}")
            continue
        problems.extend(check_file(page, root))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = ", ".join(str(p.relative_to(root)) for p in pages)
    if problems:
        print(f"link check FAILED ({len(problems)} problems)", file=sys.stderr)
        return 1
    print(f"link check OK: {checked}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
