"""Collect the reproduction numbers recorded in EXPERIMENTS.md.

Runs every table/figure driver and prints a consolidated report:

* Table III + Fig. 2 at the paper's full horizons on the mesoscopic
  engine;
* Table III (patterns I and IV) and Figs. 3-5 at reduced horizons on
  the microscopic engine (the SUMO substitute);
* all ablation studies.

Every driver is an :class:`repro.results.ExperimentDefinition` whose
cells go through one shared :class:`repro.orchestration.ExperimentPool`
— so ``--workers N`` runs the independent cells N-wide, and
``--store FILE`` (``--cache-dir DIR`` is a deprecated alias) backs the pool with one
shared :class:`repro.results.ResultStore`: an interrupted collection
resumes by computing only the missing cells, and cells common to
several drivers are simulated exactly once.

Usage: python scripts/collect_results.py [--workers N] [--store FILE]
"""

import argparse
import time

from repro.experiments.ablations import (
    ABLATIONS,
    render_ablation,
    run_ablation,
)
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.fig34 import render_fig34, run_fig34
from repro.experiments.fig5 import render_fig5, run_fig5
from repro.experiments.table3 import render_table3, run_table3
from repro.orchestration import ExperimentPool


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the sweep pool (1 = serial)",
    )
    parser.add_argument(
        "--store", default=None, metavar="FILE",
        help=(
            "SQLite result store shared by every driver; completed "
            "cells are never re-simulated (wins over --cache-dir)"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help=(
            "DEPRECATED alias for --store: opens DIR/results.sqlite "
            "(importing legacy per-spec JSON entries once) and emits "
            "a DeprecationWarning"
        ),
    )
    args = parser.parse_args()
    store = args.store
    if args.cache_dir is not None and store is None:
        import warnings

        from repro.results import ResultStore

        warnings.warn(
            "--cache-dir is deprecated; pass --store FILE instead",
            DeprecationWarning,
            stacklevel=2,
        )
        store = ResultStore.at_directory(args.cache_dir)
    pool = ExperimentPool(workers=args.workers, store=store)

    start = time.time()

    banner("Table III — meso engine, full paper horizons (1 h / 4 h mixed)")
    rows = run_table3(engine="meso", duration_scale=1.0, pool=pool)
    print(render_table3(rows))
    mean = sum(r.improvement_percent for r in rows) / len(rows)
    print(f"mean improvement: {mean:.1f}% (paper: ~13%)")

    banner("Fig. 2 — meso engine, full mixed horizon (4 h), 10-80 s sweep")
    print(render_fig2(run_fig2(engine="meso", pool=pool)))

    banner("Table III — micro engine, patterns I/IV, 30 min horizons")
    rows_micro = run_table3(
        patterns=("I", "IV"),
        engine="micro",
        periods=(14.0, 18.0, 22.0),
        duration_scale=0.5,
        pool=pool,
    )
    print(render_table3(rows_micro))

    banner("Figs. 3-4 — micro engine, Pattern I, 2000 s")
    print(render_fig34(run_fig34(engine="micro", pool=pool)))

    banner("Fig. 5 — micro engine, Pattern I, 2000 s")
    print(render_fig5(run_fig5(engine="micro", pool=pool)))

    banner("Ablations — meso engine, Pattern I, 1800 s")
    for study in ABLATIONS:
        print(render_ablation(run_ablation(study, pool=pool)))
        print()

    print(
        f"\ntotal wall time: {time.time() - start:.0f} s  "
        f"(cells executed: {pool.stats.executed}, "
        f"cache hits: {pool.stats.cache_hits}, workers: {pool.workers})"
    )


if __name__ == "__main__":
    main()
