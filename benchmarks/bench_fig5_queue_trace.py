"""Fig. 5 — queue length at the east incoming road of the top-right node.

Shape assertion: UTIL-BP keeps the queue shorter than CAP-BP *in
general* (the paper's wording).  A single-road queue trace is a noisy
statistic of one Poisson sample path, so the comparison averages over
three seeds and requires the seed-averaged mean queue to be lower.
"""

from repro.experiments.fig5 import render_fig5, run_fig5

DURATION = 800.0
SEEDS = (1, 2, 3)


def _run():
    return [
        run_fig5(
            engine="meso", duration=DURATION, cap_bp_period=18.0, seed=seed
        )
        for seed in SEEDS
    ]


def test_fig5_util_bp_shorter_queue(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(render_fig5(results[0]))
    cap_mean = sum(r.cap_bp_trace.mean() for r in results) / len(results)
    util_mean = sum(r.util_bp_trace.mean() for r in results) / len(results)
    print(
        f"seed-averaged mean queue over {len(SEEDS)} seeds: "
        f"CAP-BP {cap_mean:.2f}, UTIL-BP {util_mean:.2f}"
    )
    for result in results:
        assert len(result.cap_bp_trace.series) == len(
            result.util_bp_trace.series
        )
    assert util_mean < cap_mean, (
        f"UTIL-BP seed-averaged mean queue {util_mean:.2f} not below "
        f"CAP-BP {cap_mean:.2f}"
    )
