"""Fig. 3 — applied phases under fixed-length CAP-BP (top-right node).

Shape assertion: CAP-BP's control-phase applications are rigid — every
green interval is (a multiple of) the fixed period, so the *variance*
of phase lengths is small and the mean tracks the configured period.
"""

import pytest

from repro.experiments.fig34 import run_fig34
from repro.util.series import render_series

DURATION = 800.0
PERIOD = 18.0


def _run():
    return run_fig34(engine="meso", duration=DURATION, cap_bp_period=PERIOD)


def test_fig3_capbp_fixed_length_phases(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    trace = result.cap_bp_trace
    print()
    print(
        render_series(
            [trace.as_series(DURATION)],
            height=8,
            title=f"Fig. 3 — CAP-BP (period {PERIOD:.0f}s) phases, J02, Pattern I",
        )
    )
    intervals = trace.intervals(DURATION)
    # The final interval is truncated by the horizon; drop it.
    greens = [
        end - start
        for start, end, phase in intervals[:-1]
        if phase != 0
    ]
    assert greens, "CAP-BP never showed a control phase"
    # Every application lasts at least one period (extensions are
    # multiples when the same phase is re-selected).
    assert min(greens) >= PERIOD - 1e-6
    mean = sum(greens) / len(greens)
    assert mean == pytest.approx(PERIOD, rel=0.8)
    # All four phases appear over the horizon.
    applied = {
        phase for _, _, phase in trace.intervals(DURATION) if phase != 0
    }
    assert applied == {1, 2, 3, 4}
