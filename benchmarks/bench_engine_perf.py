"""Performance benchmarks of the simulation engines and the controller.

These are classical pytest-benchmark microbenchmarks (multiple rounds):
steps/second of each engine on the paper's 3x3 network and the decision
cost of the UTIL-BP controller.
"""

import pytest

from repro.control.factory import make_network_controller
from repro.core.util_bp import UtilBpController
from repro.experiments.runner import build_engine
from repro.scenarios.core import build_scenario


@pytest.fixture(scope="module")
def warm_meso():
    scenario = build_scenario("I", seed=1)
    sim = build_engine(scenario, "meso")
    controller = make_network_controller("util-bp", scenario.network)
    for _ in range(120):  # warm up: populate the network
        sim.step(1.0, controller.decide(sim.observations()))
    return sim, controller


@pytest.fixture(scope="module")
def warm_micro():
    scenario = build_scenario("I", seed=1)
    sim = build_engine(scenario, "micro")
    controller = make_network_controller("util-bp", scenario.network)
    for _ in range(120):
        sim.step(1.0, controller.decide(sim.observations()))
    return sim, controller


def test_meso_step_rate(benchmark, warm_meso):
    sim, controller = warm_meso

    def one_mini_slot():
        sim.step(1.0, controller.decide(sim.observations()))

    benchmark(one_mini_slot)


def test_micro_step_rate(benchmark, warm_micro):
    sim, controller = warm_micro

    def one_mini_slot():
        sim.step(1.0, controller.decide(sim.observations()))

    benchmark(one_mini_slot)


def test_util_bp_decision_rate(benchmark, warm_meso):
    sim, _ = warm_meso
    scenario_obs = sim.observations()["J11"]
    controller = UtilBpController(sim.network.intersections["J11"])

    def decide():
        controller.decide(scenario_obs)

    benchmark(decide)


def test_observation_build_rate(benchmark, warm_meso):
    sim, _ = warm_meso
    benchmark(sim.observations)
