"""Mixed lanes vs dedicated turning lanes (paper future work, Sec. IV-Q4).

The paper assumes dedicated turning lanes and notes that mixed lanes
(shared FIFOs with head-of-line blocking) would need a different
algorithm.  This bench quantifies the assumption: identical demand and
controller, lanes dedicated vs mixed — HOL blocking must cost
throughput and queuing time.
"""

from repro.control.factory import make_network_controller
from repro.scenarios.core import build_scenario
from repro.meso.simulator import MesoSimulator

DURATION = 1200


def _run(lane_policy):
    scenario = build_scenario("I", seed=1)
    sim = MesoSimulator(
        scenario.network,
        scenario.demand,
        scenario.turning,
        seed=scenario.seed,
        lane_policy=lane_policy,
    )
    controller = make_network_controller("util-bp", scenario.network)
    for _ in range(DURATION):
        sim.step(1.0, controller.decide(sim.observations()))
    sim.finalize()
    return sim.collector.summary(float(DURATION))


def _run_both():
    return _run("dedicated"), _run("mixed")


def test_mixed_lanes_hol_blocking_costs(benchmark):
    dedicated, mixed = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    print()
    print(
        f"dedicated lanes: avg queuing {dedicated.average_queuing_time:.1f}s, "
        f"trips {dedicated.vehicles_left}"
    )
    print(
        f"mixed lane:      avg queuing {mixed.average_queuing_time:.1f}s, "
        f"trips {mixed.vehicles_left}"
    )
    # Head-of-line blocking must hurt: longer queuing, fewer trips.
    assert mixed.average_queuing_time > dedicated.average_queuing_time
    assert mixed.vehicles_left <= dedicated.vehicles_left
