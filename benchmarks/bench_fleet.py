"""Fleet execution vs one pool: wall clock and result equivalence.

Runs the same independent-cell grid twice — once through a single
:class:`~repro.orchestration.ExperimentPool` and once through
:func:`~repro.orchestration.run_fleet` with two shard subprocesses —
and reports cells/second for both.  On multi-core hosts the fleet run
should approach ``min(shards, cores)``-fold throughput, because each
shard owns its interpreter, its worker pool *and* its store file (no
shared SQLite writer); on a single core it shows the spawn + merge
overhead the scale-out pays for nothing, which is worth knowing too.

The merged fleet store must export byte-identically to the
single-pool store — asserted here, so this benchmark doubles as the
fleet-correctness gate at benchmark scale.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py \
        --benchmark-only -q
"""

import pytest

from repro.orchestration import ExperimentPool, SweepGrid, run_fleet
from repro.results import ResultStore

#: 8 independent cells, long enough that per-shard spawn cost (two
#: fresh interpreters importing the package) amortizes.
GRID = SweepGrid(
    patterns=("I", "II", "III", "IV"),
    controllers=["util-bp", ("cap-bp", {"period": 18.0})],
    durations=(900.0,),
)

FLEET_SHARDS = 2


@pytest.fixture(scope="module")
def reference_export(tmp_path_factory):
    """Export of the single-pool run (also the correctness reference)."""
    store = ResultStore(
        tmp_path_factory.mktemp("fleet-ref") / "serial.sqlite"
    )
    ExperimentPool(store=store).run(GRID.specs())
    return store.export_rows()


@pytest.mark.benchmark(group="fleet", warmup=False)
def test_single_pool(benchmark, tmp_path):
    def run():
        store = tmp_path / "pool.sqlite"
        store.unlink(missing_ok=True)
        pool = ExperimentPool(store=store)
        pool.run(GRID.specs())
        return pool.stats.executed

    executed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert executed == len(GRID)
    benchmark.extra_info["cells_per_second"] = round(
        len(GRID) / benchmark.stats["mean"], 3
    )


@pytest.mark.benchmark(group="fleet", warmup=False)
def test_fleet_two_shards(benchmark, tmp_path, reference_export):
    def run():
        store = tmp_path / "fleet.sqlite"
        store.unlink(missing_ok=True)
        return run_fleet(GRID, FLEET_SHARDS, store)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.executed == len(GRID)
    assert report.merged_rows == len(GRID)
    benchmark.extra_info["cells_per_second"] = round(
        len(GRID) / benchmark.stats["mean"], 3
    )
    # Fleet execution must leave no trace in the results.
    merged = ResultStore(tmp_path / "fleet.sqlite")
    assert merged.export_rows() == reference_export
