"""Changepoint-analysis throughput: detection and verdict assembly.

Times the two costs ``repro analyze changepoints`` pays per store:

* ``test_cusum_detection`` — full single-series detections (CUSUM scan
  + 199-permutation block calibration) over a fixed synthetic batch of
  AR(1) queue-like series, half with an injected level shift; reported
  in series/s.  This is the same shape the gated
  ``analysis/cusum-10k`` workload in ``scripts/bench_ci.py`` measures.
* ``test_verdict_pipeline`` — end-to-end :func:`analyze_records` over
  synthetic (spec, result) pairs carrying real ``QueueTrace`` objects:
  trace summation, warm-up discard, per-run detection and cell-verdict
  aggregation; reported in runs/s.

Everything is seeded, so repeated nightly points measure the code, not
the workload.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_analysis.py \
        --benchmark-only -q
"""

import numpy as np
import pytest

from repro.analysis import analyze_records, detect_changepoint
from repro.metrics.traces import QueueTrace
from repro.util.series import TimeSeries

N_SERIES = 50
N_SAMPLES = 200


def _synthetic_batch():
    """AR(1) series, every second one with a mid-series level shift."""
    rng = np.random.default_rng(12345)
    batch = []
    for index in range(N_SERIES):
        noise = rng.normal(0.0, 1.0, size=N_SAMPLES)
        values = np.empty(N_SAMPLES)
        level = 0.0
        for i in range(N_SAMPLES):
            level = 0.7 * level + noise[i]
            values[i] = level
        if index % 2 == 0:
            values[N_SAMPLES // 2 :] += 8.0
        batch.append(values)
    return batch


class _FakeSummary:
    delay_mode = "aggregate"


class _FakeResult:
    """Just enough of a RunResult for the analyzer: traces + summary."""

    summary = _FakeSummary()

    def __init__(self, queue_traces):
        self.queue_traces = queue_traces


class _FakeSpec:
    """Just enough of a RunSpec for cell grouping."""

    pattern = "bench-3x3"
    controller = "util-bp"
    controller_params = ()
    engine = "meso-counts"
    scenario_params = ()

    def __init__(self, seed):
        self.seed = seed


def _synthetic_records(n_runs=8, n_roads=6):
    """(spec, result) pairs with gridlock-shaped entry-queue traces."""
    rng = np.random.default_rng(999)
    records = []
    for seed in range(1, n_runs + 1):
        traces = {}
        for road in range(n_roads):
            trace = QueueTrace(road_id=f"IN:{road}")
            trace.series = TimeSeries(f"IN:{road}")
            level = 0.0
            for i in range(N_SAMPLES):
                level = max(0.0, 0.8 * level + rng.normal(0.5, 1.0))
                value = level + (6.0 if i > N_SAMPLES // 2 else 0.0)
                trace.series.append(float(i * 5), value)
            traces[(f"J{road}", f"IN:{road}")] = trace
        records.append((_FakeSpec(seed), _FakeResult(traces)))
    return records


@pytest.mark.benchmark(group="analysis", warmup=False)
def test_cusum_detection(benchmark):
    batch = _synthetic_batch()

    def run():
        return sum(
            1
            for values in batch
            if detect_changepoint(values, seed=7) is not None
        )

    detections = benchmark(run)
    assert detections >= N_SERIES // 2
    benchmark.extra_info["series_per_second"] = round(
        N_SERIES / benchmark.stats["mean"], 1
    )


@pytest.mark.benchmark(group="analysis", warmup=False)
def test_verdict_pipeline(benchmark):
    records = _synthetic_records()

    def run():
        return analyze_records(records)

    verdicts = benchmark(run)
    assert len(verdicts) == 1
    assert verdicts[0].status == "breakdown"
    benchmark.extra_info["runs_per_second"] = round(
        len(records) / benchmark.stats["mean"], 1
    )
