"""Sweep-throughput scaling of the orchestration pool.

Runs the same 8-cell (pattern x controller) grid through
:class:`repro.orchestration.ExperimentPool` at 1, 2 and 4 workers and
reports cells/second.  The cells are independent simulations, so the
parallel runs must reproduce the serial results exactly — that
equality is asserted here, making this benchmark double as the
parallel-correctness gate at benchmark scale.
"""

import pytest

from repro.orchestration import ExperimentPool, SweepGrid

#: 8 independent cells: 4 patterns x 2 controllers, 1800 s meso runs —
#: large enough that worker start-up amortizes and scaling is visible.
GRID = SweepGrid(
    patterns=("I", "II", "III", "IV"),
    controllers=["util-bp", ("cap-bp", {"period": 18.0})],
    durations=(1800.0,),
)


@pytest.fixture(scope="module")
def serial_results():
    """Reference results from the serial in-process path."""
    return ExperimentPool(workers=1).run(GRID.specs())


@pytest.mark.parametrize("workers", (1, 2, 4))
def test_sweep_scaling(benchmark, workers, serial_results):
    specs = GRID.specs()

    def sweep():
        return ExperimentPool(workers=workers).run(specs)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert results == serial_results, (
        f"{workers}-worker sweep diverged from the serial reference"
    )
    cells_per_second = len(specs) / benchmark.stats.stats.mean
    print(
        f"\nworkers={workers}: {len(specs)} cells, "
        f"{cells_per_second:.2f} cells/s"
    )
