"""Fig. 4 — applied phases under UTIL-BP (top-right node, Pattern I).

Shape assertions matching the paper's reading of the figure:

* phase lengths *vary* (the adaptive mechanism at work), unlike the
  fixed-length CAP-BP slots of Fig. 3;
* with heavy north/south traffic, the north/south phases (c1 straight+
  left, c2 right) together receive more green time than the east/west
  phases (c3, c4).
"""

from repro.experiments.fig34 import run_fig34
from repro.util.series import render_series

DURATION = 800.0


def _run():
    return run_fig34(engine="meso", duration=DURATION)


def test_fig4_utilbp_adaptive_phases(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    trace = result.util_bp_trace
    print()
    print(
        render_series(
            [trace.as_series(DURATION)],
            height=8,
            title="Fig. 4 — UTIL-BP phases, J02, Pattern I",
        )
    )
    greens = [
        end - start
        for start, end, phase in trace.intervals(DURATION)
        if phase != 0
    ]
    assert len(greens) >= 5
    # Varying-length phases: not all applications are (near) equal.
    assert max(greens) > 2.0 * min(greens)
    durations = trace.phase_durations(DURATION)
    north_south = durations.get(1, 0.0) + durations.get(2, 0.0)
    east_west = durations.get(3, 0.0) + durations.get(4, 0.0)
    # Pattern I is north-heavy: N/S phases dominate (paper's reading).
    assert north_south > east_west
