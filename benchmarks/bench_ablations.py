"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.experiments.ablations import (
    render_ablation,
    run_ablation,
    run_mini_slot_ablation,
)

DURATION = 900.0


def test_ablation_transition_duration(benchmark):
    """Longer ambers hurt; the 4 s paper value sits on a clear slope."""
    points = benchmark.pedantic(
        run_ablation,
        args=("transition-duration",),
        kwargs={"duration": DURATION},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_ablation(points))
    by_amber = {p.params["transition_duration"]: p for p in points}
    assert (
        by_amber[2.0].average_queuing_time
        < by_amber[8.0].average_queuing_time
    )


def test_ablation_alpha_beta_order(benchmark):
    """Both orderings run; the paper's (beta < alpha) is the default."""
    points = benchmark.pedantic(
        run_ablation,
        args=("alpha-beta-order",),
        kwargs={"duration": DURATION},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_ablation(points))
    assert len(points) == 2
    assert all(p.average_queuing_time > 0 for p in points)


def test_ablation_keep_margin(benchmark):
    """Relaxing g* trades ambers for staleness; margins must reduce
    the amber share monotonically."""
    points = benchmark.pedantic(
        run_ablation,
        args=("keep-margin",),
        kwargs={"duration": DURATION},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_ablation(points))
    ambers = [p.amber_share for p in points]  # margins 0, 2, 5, 10
    assert ambers[-1] <= ambers[0]


def test_ablation_controller_family(benchmark):
    """UTIL-BP must beat original BP and fixed-time at equal demand."""
    points = benchmark.pedantic(
        run_ablation,
        args=("controller-family",),
        kwargs={"duration": DURATION},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_ablation(points))
    by_label = {p.label: p.average_queuing_time for p in points}
    util = by_label["UTIL-BP (proposed)"]
    assert util < by_label["original BP @ 18s"]
    assert util < by_label["fixed-time @ 18s"]


def test_ablation_mini_slot(benchmark):
    """Coarser mini-slots degrade towards fixed slots; 1 s must not be
    worse than 5 s."""
    points = benchmark.pedantic(
        run_mini_slot_ablation,
        kwargs={"duration": DURATION, "mini_slots": (1.0, 5.0)},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_ablation(points))
    fine, coarse = points[0], points[1]
    assert fine.average_queuing_time <= coarse.average_queuing_time * 1.10
