"""Batch-width scaling of the vectorized engine (``meso-vec``).

Steps one warm scenario shape at batch widths B = 1, 4, 16 and 32
under a fixed phase plan and reports *replication mini-slots per
second* (batch steps x B): the number that decides how many extra
seeds a sweep can afford.  A serial ``meso-counts`` cell is measured
alongside as the per-replication baseline the batch has to beat.

Two workload shapes are covered:

* ``light`` — steady-10x10 at load 0.10: the mass-replication regime
  the batch engine exists for (array work dominates, per-vehicle
  Python work is small).  This is the shape the CI speedup gate pins
  (``scripts/bench_ci.py``).
* ``full`` — steady-10x10 at the catalog's default demand: vehicle
  volume grows per replication, so the batch advantage narrows; the
  printed matrix keeps that honest.

Besides the fixed-plan stepping matrix, a *closed-loop* matrix runs
the same widths with the batched util-bp kernel deciding every
replication on the engine's internal arrays (``controller_arrays``),
against a serial meso-counts closed-loop cell — the regime the
``--min-vec-closed-speedup`` CI gate pins.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_scaling.py \
        --benchmark-only -q
"""

import numpy as np
import pytest

from repro.control.factory import make_network_controller
from repro.core.engine import (
    build_batch_controller,
    build_batch_engine,
    build_engine,
)
from repro.scenarios import build_named_scenario

#: Mini-slots simulated before timing starts (populate the network).
WARMUP_STEPS = 120

#: Green dwell of the fixed phase plan (mini-slots per phase).
PHASE_DWELL = 15

SCENARIO = "steady-10x10"

WORKLOADS = {
    "light": {"load": 0.10},
    "full": {},
}

BATCH_WIDTHS = (1, 4, 16, 32)


def _phase_plan_array(n_nodes: int, steps: int):
    return [
        np.full(n_nodes, 1 + (k // PHASE_DWELL) % 4, dtype=np.int64)
        for k in range(steps)
    ]


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def workload(request):
    return request.param


@pytest.fixture(
    scope="module",
    params=BATCH_WIDTHS,
    ids=lambda width: f"B{width}",
)
def warm_batch(request, workload):
    width = request.param
    params = WORKLOADS[workload]
    scenarios = [
        build_named_scenario(SCENARIO, seed=1 + b, **params)
        for b in range(width)
    ]
    sim = build_batch_engine(scenarios, "meso-vec")
    n_nodes = len(scenarios[0].network.intersections)
    plan = _phase_plan_array(n_nodes, WARMUP_STEPS)
    for k in range(WARMUP_STEPS):
        sim.step(1.0, plan[k])
    return workload, width, sim, n_nodes


def test_batch_step_rate(benchmark, warm_batch):
    name, width, sim, n_nodes = warm_batch
    clock = [WARMUP_STEPS]
    plan = _phase_plan_array(n_nodes, 4 * PHASE_DWELL)

    def one_mini_slot():
        sim.step(1.0, plan[clock[0] % len(plan)])
        clock[0] += 1

    benchmark(one_mini_slot)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        replication_rate = width / benchmark.stats.stats.mean
        print(
            f"\n{SCENARIO}[{name}] B={width}: "
            f"{replication_rate:,.0f} replication-steps/s (meso-vec)"
        )


@pytest.fixture(scope="module")
def warm_serial(workload):
    params = WORKLOADS[workload]
    scenario = build_named_scenario(SCENARIO, seed=1, **params)
    sim = build_engine(scenario, "meso-counts")
    nodes = list(scenario.network.intersections)
    plans = [
        {node: 1 + (k // PHASE_DWELL) % 4 for node in nodes}
        for k in range(WARMUP_STEPS)
    ]
    for k in range(WARMUP_STEPS):
        sim.step(1.0, plans[k])
    return workload, sim, nodes


def test_serial_counts_baseline(benchmark, warm_serial):
    name, sim, nodes = warm_serial
    clock = [WARMUP_STEPS]
    plans = [
        {node: 1 + (k // PHASE_DWELL) % 4 for node in nodes}
        for k in range(4 * PHASE_DWELL)
    ]

    def one_mini_slot():
        sim.step(1.0, plans[clock[0] % len(plans)])
        clock[0] += 1

    benchmark(one_mini_slot)
    if benchmark.stats is not None:
        rate = 1.0 / benchmark.stats.stats.mean
        print(
            f"\n{SCENARIO}[{name}] serial: {rate:,.0f} steps/s (meso-counts)"
        )


@pytest.fixture(
    scope="module",
    params=BATCH_WIDTHS,
    ids=lambda width: f"B{width}",
)
def warm_closed_loop_batch(request):
    """A warm B-wide batch plus its batched util-bp controller.

    Closed-loop scaling is only benchmarked on the ``light`` shape —
    the one the CI gate pins; the fixed-plan matrix above already
    covers how demand volume erodes the batch advantage.
    """
    width = request.param
    params = WORKLOADS["light"]
    scenarios = [
        build_named_scenario(SCENARIO, seed=1 + b, **params)
        for b in range(width)
    ]
    sim = build_batch_engine(scenarios, "meso-vec")
    controller = build_batch_controller(
        "util-bp", scenarios[0].network, width
    )
    for _ in range(WARMUP_STEPS):
        sim.step(1.0, controller.decide_batch(sim.controller_arrays()))
    return width, sim, controller


def test_batch_closed_loop_rate(benchmark, warm_closed_loop_batch):
    width, sim, controller = warm_closed_loop_batch

    def one_mini_slot():
        sim.step(1.0, controller.decide_batch(sim.controller_arrays()))

    benchmark(one_mini_slot)
    if benchmark.stats is not None:
        replication_rate = width / benchmark.stats.stats.mean
        print(
            f"\n{SCENARIO}[light] B={width} util-bp: "
            f"{replication_rate:,.0f} replication-steps/s (meso-vec batched)"
        )


@pytest.fixture(scope="module")
def warm_closed_loop_serial():
    params = WORKLOADS["light"]
    scenario = build_named_scenario(SCENARIO, seed=1, **params)
    sim = build_engine(scenario, "meso-counts")
    controller = make_network_controller("util-bp", scenario.network)
    for _ in range(WARMUP_STEPS):
        sim.step(1.0, controller.decide(sim.observations()))
    return sim, controller


def test_serial_closed_loop_baseline(benchmark, warm_closed_loop_serial):
    sim, controller = warm_closed_loop_serial

    def one_mini_slot():
        sim.step(1.0, controller.decide(sim.observations()))

    benchmark(one_mini_slot)
    if benchmark.stats is not None:
        rate = 1.0 / benchmark.stats.stats.mean
        print(
            f"\n{SCENARIO}[light] serial util-bp: "
            f"{rate:,.0f} steps/s (meso-counts)"
        )


def test_batch_width_does_not_change_results():
    """Benchmark-scale restatement of the B-independence contract."""
    params = WORKLOADS["light"]
    widths_summaries = {}
    for width in (1, 4):
        scenarios = [
            build_named_scenario(SCENARIO, seed=1 + b, **params)
            for b in range(width)
        ]
        sim = build_batch_engine(scenarios, "meso-vec")
        n_nodes = len(scenarios[0].network.intersections)
        plan = _phase_plan_array(n_nodes, 90)
        for k in range(90):
            sim.step(1.0, plan[k])
        sim.finalize()
        widths_summaries[width] = sim.collector.summary_of(0, 90.0)
    assert widths_summaries[1] == widths_summaries[4]
