"""Table II — average inter-arrival times of vehicles entering.

Regenerates Table II empirically: simulate each pattern's arrival
processes and compare the measured mean inter-arrival time per entry
side with the paper's 3-9 s specification.
"""

import numpy as np
import pytest

from repro.experiments.patterns import arrival_schedule, interarrival_times
from repro.model.arrivals import PoissonArrivals
from repro.model.geometry import Direction
from repro.util.tables import render_table

HORIZON = 40_000.0  # simulated seconds per process


def _measure_pattern(pattern):
    measured = {}
    for side in Direction:
        schedule = arrival_schedule(pattern, side)
        process = PoissonArrivals(schedule, np.random.default_rng(7))
        times = process.sample_times(0.0, HORIZON)
        gaps = np.diff(times)
        measured[side] = float(np.mean(gaps))
    return measured


@pytest.mark.parametrize("pattern", ["I", "II", "III", "IV"])
def test_table2_interarrival_times(benchmark, pattern):
    measured = benchmark.pedantic(
        _measure_pattern, args=(pattern,), rounds=1, iterations=1
    )
    expected = interarrival_times(pattern)
    rows = [
        (side.value, f"{measured[side]:.2f}", f"{expected[side]:.0f}")
        for side in Direction
    ]
    print()
    print(
        render_table(
            ("entry side", "measured [s]", "paper [s]"),
            rows,
            title=f"Table II — inter-arrival times, pattern {pattern}",
        )
    )
    for side in Direction:
        assert measured[side] == pytest.approx(expected[side], rel=0.05)
