"""Stability-region bench (Sec. IV-Q1).

Sweeps the demand scale under uniform traffic and checks:

* both controllers are stable at nominal demand (scale 1.0);
* UTIL-BP's maximum stable scale is at least CAP-BP's — giving up the
  idealized maximum-stability guarantee does not cost stability in
  practice at the paper's operating point;
* both destabilize somewhere in the sweep (the capacity region is
  finite).
"""

from repro.experiments.stability import (
    max_stable_scale,
    render_stability,
    run_stability_sweep,
)

SCALES = (1.0, 1.6, 2.2, 2.8)


def _run():
    return run_stability_sweep(scales=SCALES, duration=1200.0)


def test_stability_region(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(render_stability(points))
    util_max = max_stable_scale(points, "util-bp")
    cap_max = max_stable_scale(points, "cap-bp")
    print(f"max stable scale: util-bp {util_max}, cap-bp {cap_max}")
    assert util_max >= 1.0, "UTIL-BP must be stable at nominal demand"
    assert util_max >= cap_max
    # The sweep must actually reach instability for both controllers.
    assert util_max < SCALES[-1] or cap_max < SCALES[-1]
