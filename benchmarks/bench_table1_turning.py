"""Table I — turning probabilities of vehicles entering the network.

Regenerates Table I empirically: sample many routes per entry side and
check the realized right/left/straight fractions against the paper's
probabilities.
"""

import numpy as np
import pytest

from repro.experiments.patterns import TURNING
from repro.model.geometry import Direction, TurnType
from repro.model.grid import build_grid_network
from repro.model.routing import RouteSampler
from repro.util.tables import render_table

SAMPLES = 4000


def _classify(network, sampler, route):
    """Recover the executed manoeuvre from a sampled route."""
    for current, nxt in zip(route, route[1:]):
        movement = network.downstream_intersection(current).movements[
            (current, nxt)
        ]
        if movement.turn is not TurnType.STRAIGHT:
            return movement.turn
    return TurnType.STRAIGHT


def _empirical_fractions():
    network = build_grid_network(3, 3)
    sampler = RouteSampler(network, TURNING, np.random.default_rng(42))
    by_side = {side: {turn: 0 for turn in TurnType} for side in Direction}
    counts = {side: 0 for side in Direction}
    entries = network.entry_roads()
    for _ in range(SAMPLES // len(entries)):
        for entry in entries:
            side = sampler.entry_side(entry)
            turn = _classify(network, sampler, sampler.sample_route(entry))
            by_side[side][turn] += 1
            counts[side] += 1
    return {
        side: {
            turn: by_side[side][turn] / counts[side] for turn in TurnType
        }
        for side in Direction
    }


def test_table1_turning_probabilities(benchmark):
    fractions = benchmark.pedantic(
        _empirical_fractions, rounds=1, iterations=1
    )
    rows = []
    for side in Direction:
        rows.append(
            (
                side.value,
                f"{fractions[side][TurnType.RIGHT]:.3f}",
                f"{TURNING.right[side]:.1f}",
                f"{fractions[side][TurnType.LEFT]:.3f}",
                f"{TURNING.left[side]:.1f}",
            )
        )
    print()
    print(
        render_table(
            ("entry side", "right (meas)", "right (paper)", "left (meas)",
             "left (paper)"),
            rows,
            title="Table I — turning probabilities, measured vs paper",
        )
    )
    for side in Direction:
        assert fractions[side][TurnType.RIGHT] == pytest.approx(
            TURNING.right[side], abs=0.04
        )
        assert fractions[side][TurnType.LEFT] == pytest.approx(
            TURNING.left[side], abs=0.04
        )
