"""Steps/second comparison across the scenario catalog.

One pytest-benchmark case per registered catalog entry: build the
scenario, warm the network up, then measure closed-loop mini-slots per
second under UTIL-BP on the mesoscopic engine.  The printed table is
the catalog's relative cost profile — bigger grids and heavier loads
should cost proportionally, and a new scenario family that is
accidentally quadratic shows up immediately.
"""

import pytest

from repro.control.factory import make_network_controller
from repro.experiments.runner import build_engine
from repro.scenarios import build_named_scenario, scenario_names

#: Mini-slots simulated before measuring, so queues are populated and
#: the steady-state step cost (not the empty-network cost) is timed.
WARMUP_STEPS = 90


@pytest.fixture(scope="module", params=scenario_names())
def warm_scenario(request):
    scenario = build_named_scenario(request.param, seed=1)
    sim = build_engine(scenario, "meso")
    controller = make_network_controller("util-bp", scenario.network)
    for _ in range(WARMUP_STEPS):
        sim.step(1.0, controller.decide(sim.observations()))
    return request.param, sim, controller


def test_scenario_step_rate(benchmark, warm_scenario):
    name, sim, controller = warm_scenario

    def one_mini_slot():
        sim.step(1.0, controller.decide(sim.observations()))

    benchmark(one_mini_slot)
    steps_per_second = 1.0 / benchmark.stats.stats.mean
    print(f"\n{name}: {steps_per_second:,.0f} steps/s (meso)")
