"""Table III — CAP-BP (best period) vs UTIL-BP over the traffic patterns.

CI-scale regeneration of the paper's headline table: reduced horizons
on the mesoscopic engine.  The assertion is on *shape*: UTIL-BP must
beat the best-period CAP-BP on every pattern (the paper reports 5-25 %,
at least ~13 % on average).
"""

from repro.experiments.table3 import render_table3, run_table3

#: Reduced horizon: 20 min per pattern (mixed: 4 x 8 min).
SCALE = 1 / 3


def _run():
    return run_table3(
        patterns=("I", "II", "III", "IV", "mixed"),
        engine="meso",
        periods=(10.0, 14.0, 18.0, 22.0, 26.0),
        duration_scale=SCALE,
        mixed_segment_duration=500.0,
    )


def test_table3_util_bp_beats_best_cap_bp(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(render_table3(rows))
    mean_improvement = sum(r.improvement_percent for r in rows) / len(rows)
    print(f"mean improvement: {mean_improvement:.1f}% (paper: >= ~13%)")
    for row in rows:
        assert row.util_bp_queuing_time < row.cap_bp_queuing_time, (
            f"pattern {row.pattern}: UTIL-BP ({row.util_bp_queuing_time:.1f}s) "
            f"did not beat best CAP-BP ({row.cap_bp_queuing_time:.1f}s)"
        )
    assert mean_improvement >= 10.0
