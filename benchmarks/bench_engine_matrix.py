"""Engine x scenario matrix: the mesoscopic backends across the catalog.

One pytest-benchmark case per (catalog entry, mesoscopic engine): warm
the network up, then measure closed-loop mini-slots per second under
UTIL-BP.  Comparing the engine columns of the printed matrix shows
where each backend pays off (``meso-counts`` everywhere over ``meso``,
increasingly so on larger grids; ``meso-events`` pulls further ahead
the lighter the load, since its calendar skips idle slots entirely;
``meso-vec`` runs here as a batch of
one through its single-replication adapter, so this matrix exposes its
per-replication overhead — its win, batching many seeds per step, is
measured by ``bench_batch_scaling.py``) and doubles as a drift alarm:
if an engine change erodes a ratio, this benchmark shows *which*
workload shape lost it, while ``scripts/bench_ci.py`` gates the
headline numbers in CI.

The micro engine is deliberately excluded — it is 1-2 orders slower
and has its own benchmark (``bench_engine_perf.py``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_matrix.py \
        --benchmark-only --benchmark-group-by=param:name -q
"""

import pytest

from repro.control.factory import make_network_controller
from repro.experiments.runner import build_engine
from repro.scenarios import build_named_scenario, scenario_names

#: Mini-slots simulated before measuring, so queues are populated and
#: the steady-state step cost (not the empty-network cost) is timed.
WARMUP_STEPS = 90

ENGINES = ("meso", "meso-counts", "meso-events", "meso-vec")


@pytest.fixture(
    scope="module",
    params=[
        (name, engine)
        for name in scenario_names()
        for engine in ENGINES
    ],
    ids=lambda param: f"{param[0]}-{param[1]}",
)
def warm_cell(request):
    name, engine = request.param
    scenario = build_named_scenario(name, seed=1)
    sim = build_engine(scenario, engine)
    controller = make_network_controller("util-bp", scenario.network)
    for _ in range(WARMUP_STEPS):
        sim.step(1.0, controller.decide(sim.observations()))
    return name, engine, sim, controller


def test_engine_matrix_step_rate(benchmark, warm_cell):
    name, engine, sim, controller = warm_cell

    def one_mini_slot():
        sim.step(1.0, controller.decide(sim.observations()))

    benchmark(one_mini_slot)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        steps_per_second = 1.0 / benchmark.stats.stats.mean
        print(f"\n{name}: {steps_per_second:,.0f} steps/s ({engine})")


def test_matrix_cells_agree_on_dynamics():
    """The matrix compares cost, so all cells must do the same work:
    spot-check that the warm cells produced identical trajectories
    (full equivalence lives in tests/test_engine_parity.py)."""
    runs = {}
    for engine in ENGINES:
        scenario = build_named_scenario("steady-3x3", seed=1)
        sim = build_engine(scenario, engine)
        controller = make_network_controller("util-bp", scenario.network)
        for _ in range(WARMUP_STEPS):
            sim.step(1.0, controller.decide(sim.observations()))
        runs[engine] = (sim.vehicles_in_network(), sim.backlog_size())
    assert (
        runs["meso"]
        == runs["meso-counts"]
        == runs["meso-events"]
        == runs["meso-vec"]
    )
