"""Fig. 2 — average queuing time vs CAP-BP control period (mixed pattern).

CI-scale regeneration: 10-80 s sweep at reduced segment length on the
mesoscopic engine.  Shape assertions: the sweep has an interior-ish
optimum (short periods pay amber, long periods pay responsiveness) and
UTIL-BP beats every swept period — the figure's message.
"""

from repro.experiments.fig2 import render_fig2, run_fig2

PERIODS = (10, 20, 30, 40, 60, 80)


def _run():
    return run_fig2(
        periods=PERIODS,
        engine="meso",
        segment_duration=450.0,  # 4 x 450 s = 30 min mixed horizon
    )


def test_fig2_shape(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(render_fig2(result))
    times = result.cap_bp_queuing_times
    # Long periods are clearly worse than the best (right branch rises).
    assert times[-1] > result.best_queuing_time * 1.3
    # The optimum is not at the longest period.
    assert result.best_period != PERIODS[-1]
    # UTIL-BP beats the entire sweep (the figure's headline).
    assert result.util_beats_best
    assert result.util_bp_queuing_time < min(times)
