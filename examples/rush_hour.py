"""Beyond the paper: a rush-hour scenario with time-varying demand.

Builds the 3x3 network with a morning-rush profile — light traffic
that surges from the north and east for twenty minutes and then
relaxes — and compares UTIL-BP against CAP-BP at a period tuned for
the *average* load.  Fixed-period control cannot retune as the surge
arrives; the adaptive controller reacts per mini-slot.

Run:  python examples/rush_hour.py
"""

from repro.experiments import TURNING, run_scenario
from repro.scenarios.core import Scenario
from repro.model.arrivals import ArrivalSchedule
from repro.model.geometry import Direction
from repro.model.grid import build_grid_network

#: (start_time, rate) profiles per entry side: a 20-minute surge.
RUSH_PROFILE = {
    Direction.N: [(0, 1 / 9), (600, 1 / 3), (1800, 1 / 9)],
    Direction.E: [(0, 1 / 9), (600, 1 / 4), (1800, 1 / 9)],
    Direction.S: [(0, 1 / 9)],
    Direction.W: [(0, 1 / 9)],
}

DURATION = 2700.0


def build_rush_hour_scenario(seed: int = 3) -> Scenario:
    network = build_grid_network(3, 3)
    demand = {}
    for road_id in network.entry_roads():
        side = Direction(road_id[3])  # "IN:N@J01" -> N
        demand[road_id] = ArrivalSchedule.piecewise(RUSH_PROFILE[side])
    return Scenario(
        name="rush-hour",
        network=network,
        demand=demand,
        turning=TURNING,
        seed=seed,
        default_duration=DURATION,
    )


def main() -> None:
    results = {}
    for name, params in (
        ("util-bp", {}),
        ("cap-bp", {"period": 16.0}),
        ("fixed-time", {"period": 16.0}),
    ):
        result = run_scenario(
            build_rush_hour_scenario(),
            controller=name,
            controller_params=params,
            duration=DURATION,
            engine="meso",
        )
        results[name] = result
        print(
            f"{name:12s} avg queuing {result.average_queuing_time:7.2f} s   "
            f"amber share {result.network_utilization().amber_share:.3f}   "
            f"trips {result.summary.vehicles_left}"
        )

    util = results["util-bp"].average_queuing_time
    cap = results["cap-bp"].average_queuing_time
    print(
        f"\nUTIL-BP handles the surge "
        f"{(cap - util) / cap * 100:.1f}% better than the tuned CAP-BP."
    )


if __name__ == "__main__":
    main()
