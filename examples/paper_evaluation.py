"""The paper's full evaluation protocol (Sec. V) in one script.

Reproduces Table III and Figure 2 on the chosen engine.  The full
paper horizons (1 h per pattern, 4 h mixed) on the microscopic engine
take a while; ``--scale 0.25`` runs quarter horizons.

Run:  python examples/paper_evaluation.py --engine meso --scale 0.5
"""

import argparse

from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.table3 import render_table3, run_table3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        choices=("meso", "micro"),
        default="meso",
        help="simulation engine (micro = paper-faithful, meso = fast)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="fraction of the paper's horizons to simulate",
    )
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    print(f"engine={args.engine}, horizon scale={args.scale}\n")

    rows = run_table3(
        engine=args.engine,
        seed=args.seed,
        duration_scale=args.scale,
    )
    print(render_table3(rows))
    mean = sum(r.improvement_percent for r in rows) / len(rows)
    print(f"mean improvement: {mean:.1f}% (paper: ~13%)\n")

    fig2 = run_fig2(
        engine=args.engine,
        seed=args.seed,
        segment_duration=3600.0 * args.scale,
    )
    print(render_fig2(fig2))


if __name__ == "__main__":
    main()
