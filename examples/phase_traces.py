"""Figures 3-5: phase and queue traces at the top-right intersection.

Reruns Pattern I for 2000 s under CAP-BP (optimal period) and UTIL-BP,
then renders the applied-phase staircases (Figs. 3-4) and the east-
approach queue trace (Fig. 5) as ASCII charts.

Run:  python examples/phase_traces.py --engine micro
"""

import argparse

from repro.experiments.fig34 import render_fig34, run_fig34
from repro.experiments.fig5 import render_fig5, run_fig5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", choices=("meso", "micro"), default="micro")
    parser.add_argument("--duration", type=float, default=2000.0)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    result34 = run_fig34(
        engine=args.engine, duration=args.duration, seed=args.seed
    )
    print(render_fig34(result34))
    print()
    result5 = run_fig5(
        engine=args.engine, duration=args.duration, seed=args.seed
    )
    print(render_fig5(result5))


if __name__ == "__main__":
    main()
