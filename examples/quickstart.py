"""Quickstart: run the paper's controller on one intersection.

Builds a single Fig.-1 intersection with Pattern-II (uniform) demand,
runs the UTIL-BP adaptive controller against the fixed-time baseline on
the microscopic engine, and prints both summaries.

Run:  python examples/quickstart.py
"""

from repro.experiments import build_scenario, run_scenario


def main() -> None:
    # A 1x1 "grid" is a single signalized intersection whose four roads
    # enter/exit the network directly.
    scenario = build_scenario("II", seed=7, rows=1, cols=1)

    util = run_scenario(
        scenario,
        controller="util-bp",
        duration=600,
        engine="micro",
    )
    fixed = run_scenario(
        build_scenario("II", seed=7, rows=1, cols=1),
        controller="fixed-time",
        controller_params={"period": 15},
        duration=600,
        engine="micro",
    )

    print("UTIL-BP (paper's Algorithm 1):")
    print(f"  {util.summary}")
    print("fixed-time round robin (15 s):")
    print(f"  {fixed.summary}")
    improvement = (
        (fixed.average_queuing_time - util.average_queuing_time)
        / fixed.average_queuing_time
        * 100
    )
    print(f"UTIL-BP reduces average queuing time by {improvement:.1f}%")


if __name__ == "__main__":
    main()
