"""Writing a controller as a TraCI client.

Shows the CPS boundary explicitly: the control loop only reads sensors
(queue observations) and writes actuators (phases) through the
TraCI-style session — exactly how the paper's controllers would attach
to SUMO.  The controller here is the paper's Algorithm 1, driven
manually rather than via the experiment runner.

Run:  python examples/traci_client.py
"""

from repro.core.config import UtilBpConfig
from repro.core.util_bp import UtilBpController
from repro.experiments import build_scenario
from repro.traci import TraciSession


def main() -> None:
    scenario = build_scenario("I", seed=11)
    session = TraciSession(scenario, engine="meso", step_length=1.0)

    # One decentralized controller per traffic light, as in the paper.
    controllers = {
        node_id: UtilBpController(intersection, UtilBpConfig())
        for node_id, intersection in scenario.network.intersections.items()
    }
    for node_id in controllers:
        session.subscribeJunction(node_id)

    horizon = 900
    for step in range(horizon):
        observations = session.getSubscriptionResults()
        for node_id, controller in controllers.items():
            session.setPhase(node_id, controller.decide(observations[node_id]))
        session.simulationStep()
        if (step + 1) % 300 == 0:
            queue = sum(
                sum(obs.movement_queues.values())
                for obs in observations.values()
            )
            print(
                f"t={session.getTime():6.0f}s  vehicles queued at stop "
                f"lines: {queue}"
            )

    summary = session.close()
    print(f"\nfinal: {summary}")


if __name__ == "__main__":
    main()
