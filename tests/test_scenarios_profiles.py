"""Demand-profile shapes, the incident network surgery, and the grid
override plumbing behind the scenario library."""

import pytest

from repro.model.geometry import Direction
from repro.model.grid import build_grid_network, grid_node_id
from repro.scenarios import build_named_scenario
from repro.scenarios.library import incident_road
from repro.scenarios.profiles import (
    BASE_RATE,
    asymmetric_turning,
    steady_profile,
    surge_profile,
    tidal_profile,
)


class TestSteadyProfile:
    def test_uniform_and_load_scaled(self):
        profile = steady_profile(load=1.5)
        for side in Direction:
            assert profile[side].rate_at(0.0) == pytest.approx(1.5 * BASE_RATE)
            assert profile[side].rate_at(10_000.0) == profile[side].rate_at(0.0)

    def test_rejects_non_positive_load(self):
        with pytest.raises(ValueError):
            steady_profile(load=0.0)


class TestTidalProfile:
    def test_peak_reverses_at_reversal_time(self):
        profile = tidal_profile(reversal_time=600.0)
        before, after = 0.0, 600.0
        # N/E peak first, S/W peak after the tide turns.
        assert profile[Direction.N].rate_at(before) > profile[
            Direction.S
        ].rate_at(before)
        assert profile[Direction.S].rate_at(after) > profile[
            Direction.N
        ].rate_at(after)
        # The tide conserves the heavy/light split, just mirrored.
        assert profile[Direction.N].rate_at(before) == pytest.approx(
            profile[Direction.S].rate_at(after)
        )


class TestSurgeProfile:
    def test_step_change_window(self):
        profile = surge_profile(
            surge_start=300.0, surge_duration=200.0, surge_factor=3.0
        )
        north = profile[Direction.N]
        assert north.rate_at(0.0) == pytest.approx(BASE_RATE)
        assert north.rate_at(300.0) == pytest.approx(3.0 * BASE_RATE)
        assert north.rate_at(499.0) == pytest.approx(3.0 * BASE_RATE)
        assert north.rate_at(500.0) == pytest.approx(BASE_RATE)
        # Non-surge sides stay flat through the window.
        south = profile[Direction.S]
        assert south.rate_at(400.0) == pytest.approx(BASE_RATE)


class TestAsymmetricTurning:
    def test_heavy_left_side(self):
        turning = asymmetric_turning(
            heavy_side=Direction.W, heavy_left=0.6
        )
        assert turning.left[Direction.W] == pytest.approx(0.6)
        assert turning.straight(Direction.W) == pytest.approx(0.25)
        assert turning.straight(Direction.N) == pytest.approx(0.7)


class TestIncidentScenario:
    def test_capacity_drop_applied(self):
        scenario = build_named_scenario("incident-3x3")
        degraded = incident_road(3, 3)
        roads = scenario.network.roads
        assert roads[degraded].capacity < 120
        healthy = [
            r for r in roads
            if r != degraded and not r.startswith(("IN:", "OUT:"))
        ]
        assert all(roads[r].capacity == 120 for r in healthy)

    def test_service_rate_drop_at_central_junction(self):
        scenario = build_named_scenario("incident-3x3")
        center = scenario.network.intersections[grid_node_id(1, 1)]
        corner = scenario.network.intersections[grid_node_id(0, 0)]
        assert all(
            m.service_rate == pytest.approx(0.5)
            for m in center.movements.values()
        )
        assert all(
            m.service_rate == pytest.approx(1.0)
            for m in corner.movements.values()
        )

    def test_incident_road_fallbacks(self):
        assert incident_road(3, 3) == "J10->J11"
        assert incident_road(1, 3) == "J00->J01"
        assert incident_road(3, 1) == "J00->J10"
        assert incident_road(1, 1) == "IN:W@J00"


class TestGridOverrides:
    def test_capacity_override_applied(self):
        network = build_grid_network(
            2, 2, capacity_overrides={"J00->J01": 30}
        )
        assert network.roads["J00->J01"].capacity == 30
        assert network.roads["J01->J00"].capacity == 120

    def test_unknown_capacity_override_rejected(self):
        with pytest.raises(ValueError, match="does not build"):
            build_grid_network(2, 2, capacity_overrides={"J09->J10": 30})

    def test_unknown_service_rate_override_rejected(self):
        with pytest.raises(ValueError, match="unknown intersections"):
            build_grid_network(2, 2, node_service_rates={"J77": 0.5})
