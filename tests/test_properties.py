"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pressure import link_gain, link_gain_original
from repro.micro.krauss import next_speed, safe_speed
from repro.micro.params import KraussParams
from repro.model.arrivals import ArrivalSchedule
from repro.model.grid import build_grid_network
from repro.model.queues import queue_dynamics_step
from repro.model.routing import RouteSampler, TurningProbabilities
from repro.util.rng import derive_seed
from repro.util.series import TimeSeries

import numpy as np
import pytest

from tests.conftest import make_observation

KP = KraussParams(sigma=0.0)


class TestQueueDynamicsProperties:
    @given(
        queue=st.integers(min_value=0, max_value=1000),
        arrivals=st.integers(min_value=0, max_value=100),
        served=st.integers(min_value=0, max_value=100),
    )
    def test_eq2_never_negative(self, queue, arrivals, served):
        if served > queue + arrivals:
            with pytest.raises(ValueError):
                queue_dynamics_step(queue, arrivals, served)
        else:
            assert queue_dynamics_step(queue, arrivals, served) >= 0

    @given(
        queue=st.integers(min_value=0, max_value=1000),
        arrivals=st.integers(min_value=0, max_value=100),
    )
    def test_eq2_conservation(self, queue, arrivals):
        assert queue_dynamics_step(queue, arrivals, 0) == queue + arrivals


class TestGainProperties:
    @pytest.fixture(scope="class")
    def intersection(self):
        return build_grid_network(1, 1).intersections["J00"]

    @given(
        q_move=st.integers(min_value=0, max_value=120),
        q_out=st.integers(min_value=0, max_value=120),
    )
    @settings(max_examples=60)
    def test_modified_gain_cases_exhaustive(self, intersection, q_move, q_out):
        """Eq. 8's three cases cover every state, mutually exclusively."""
        m = list(intersection.movements.values())[0]
        obs = make_observation(
            intersection,
            movement_queues={m.key: q_move},
            out_queues={m.out_road: q_out},
        )
        gain = link_gain(m, obs, -1.0, -2.0)
        if q_out >= 120:
            assert gain == -2.0
        elif q_move == 0:
            assert gain == -1.0
        else:
            assert gain == (q_move - q_out + 120.0)
            assert gain > 0  # servable links always outrank the specials

    @given(
        queues=st.lists(
            st.integers(min_value=0, max_value=120), min_size=3, max_size=3
        )
    )
    @settings(max_examples=40)
    def test_original_gain_non_negative(self, intersection, queues):
        in_road = sorted(intersection.in_roads)[0]
        movements = intersection.movements_from(in_road)
        obs = make_observation(
            intersection,
            movement_queues={
                m.key: q for m, q in zip(movements, queues)
            },
        )
        for m in movements:
            assert link_gain_original(m, obs) >= 0.0


class TestKraussProperties:
    @given(
        gap=st.floats(min_value=0.0, max_value=500.0),
        speed=st.floats(min_value=0.0, max_value=40.0),
        leader=st.floats(min_value=0.0, max_value=40.0),
    )
    @settings(max_examples=80)
    def test_safe_speed_non_negative(self, gap, speed, leader):
        assert safe_speed(gap, speed, leader, KP) >= 0.0

    @given(
        speed=st.floats(min_value=0.0, max_value=40.0),
        gap=st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=80)
    def test_next_speed_physical_bounds(self, speed, gap):
        v = next_speed(speed, 13.89, gap, 0.0, 1.0, KP, rng=None)
        assert 0.0 <= v <= max(speed + KP.accel, 0.0) + 1e-9
        assert v >= max(0.0, speed - KP.decel) - 1e-9

    @given(speed=st.floats(min_value=0.0, max_value=25.0))
    @settings(max_examples=40)
    def test_stopping_distance_respected(self, speed):
        """Driving at safe speed behind a standing leader never collides.

        The initial speed is bounded by what the comfortable
        deceleration can stop within the gap (v^2 / 2b < 100 m) —
        beyond that no car-following law can avoid the obstacle.
        """
        position, v = 0.0, speed
        gap = 100.0
        for _ in range(200):
            v = next_speed(v, 50.0, gap - position, 0.0, 1.0, KP, rng=None)
            position += v
            assert position <= gap + 1e-6
            if v == 0.0:
                break


class TestScheduleProperties:
    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=5
        ),
        start=st.floats(min_value=0.0, max_value=100.0),
        width=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_expected_count_additive(self, rates, start, width):
        pieces = [(float(i * 10), r) for i, r in enumerate(rates)]
        schedule = ArrivalSchedule.piecewise(pieces)
        mid = start + width / 2
        end = start + width
        total = schedule.expected_count(start, end)
        split = schedule.expected_count(start, mid) + schedule.expected_count(
            mid, end
        )
        assert math.isclose(total, split, rel_tol=1e-9, abs_tol=1e-9)

    @given(rate=st.floats(min_value=0.0, max_value=3.0))
    def test_constant_expected_count(self, rate):
        schedule = ArrivalSchedule.constant(rate)
        assert math.isclose(schedule.expected_count(5.0, 15.0), rate * 10.0)


class TestRoutingProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        right=st.floats(min_value=0.0, max_value=0.5),
        left=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_sampled_routes_always_valid(self, seed, right, left):
        network = build_grid_network(2, 3)
        sampler = RouteSampler(
            network,
            TurningProbabilities.uniform(right, left),
            np.random.default_rng(seed),
        )
        for entry in network.entry_roads():
            route = sampler.sample_route(entry)
            network.validate_route(route)


class TestUtilProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        name=st.text(min_size=1, max_size=30),
    )
    @settings(max_examples=60)
    def test_derive_seed_stable_and_bounded(self, seed, name):
        value = derive_seed(seed, name)
        assert value == derive_seed(seed, name)
        assert 0 <= value < 2**64

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50
        )
    )
    @settings(max_examples=40)
    def test_series_mean_bounded(self, values):
        series = TimeSeries("s")
        for i, v in enumerate(values):
            series.append(float(i), v)
        assert min(values) - 1e-6 <= series.mean() <= max(values) + 1e-6
