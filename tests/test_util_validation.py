"""Tests for repro.util.validation."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestValidation:
    def test_finite_passes(self):
        assert check_finite("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_finite_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_finite("x", bad)

    def test_positive_passes(self):
        assert check_positive("x", 0.1) == 0.1

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)

    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.001)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_probability_passes(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    def test_probability_rejects(self, bad):
        with pytest.raises(ValueError):
            check_probability("p", bad)

    def test_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", -1, 0, 10)

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="myparam"):
            check_positive("myparam", -1)
