"""Tests for repro.model.routing — turning probabilities and routes."""

import numpy as np
import pytest

from repro.experiments.patterns import TURNING
from repro.model.geometry import Direction, TurnType
from repro.model.routing import RouteSampler, TurningProbabilities


class TestTurningProbabilities:
    def test_straight_complement(self):
        assert TURNING.straight(Direction.N) == pytest.approx(0.4)
        assert TURNING.straight(Direction.E) == pytest.approx(0.4)
        assert TURNING.straight(Direction.S) == pytest.approx(0.3)
        assert TURNING.straight(Direction.W) == pytest.approx(0.3)

    def test_uniform_constructor(self):
        turning = TurningProbabilities.uniform(0.1, 0.2)
        for side in Direction:
            assert turning.right[side] == 0.1
            assert turning.left[side] == 0.2

    def test_probabilities_over_one_rejected(self):
        with pytest.raises(ValueError):
            TurningProbabilities.uniform(0.6, 0.6)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            TurningProbabilities.uniform(-0.1, 0.2)

    def test_missing_side_rejected(self):
        with pytest.raises(ValueError):
            TurningProbabilities(right={Direction.N: 0.1}, left={Direction.N: 0.1})

    def test_sample_turn_distribution(self):
        rng = np.random.default_rng(0)
        draws = [TURNING.sample_turn(Direction.N, rng) for _ in range(20000)]
        fraction_right = sum(t is TurnType.RIGHT for t in draws) / len(draws)
        fraction_left = sum(t is TurnType.LEFT for t in draws) / len(draws)
        assert fraction_right == pytest.approx(0.4, abs=0.02)
        assert fraction_left == pytest.approx(0.2, abs=0.02)


class TestRouteSampler:
    @pytest.fixture
    def sampler(self, grid3x3):
        return RouteSampler(grid3x3, TURNING, np.random.default_rng(3))

    def test_corridor_straight_north_to_south(self, sampler):
        corridor = sampler.corridor("IN:N@J01")
        assert corridor == ["IN:N@J01", "J01->J11", "J11->J21", "OUT:S@J21"]

    def test_entry_side(self, sampler):
        assert sampler.entry_side("IN:E@J12") is Direction.E
        with pytest.raises(KeyError):
            sampler.entry_side("J00->J01")

    def test_routes_always_valid(self, sampler, grid3x3):
        for _ in range(300):
            for entry in grid3x3.entry_roads():
                route = sampler.sample_route(entry)
                grid3x3.validate_route(route)
                assert route[0] == entry

    def test_straight_vehicles_keep_corridor(self, grid3x3):
        turning = TurningProbabilities.uniform(0.0, 0.0)
        sampler = RouteSampler(grid3x3, turning, np.random.default_rng(0))
        for entry in grid3x3.entry_roads():
            assert sampler.sample_route(entry) == sampler.corridor(entry)

    def test_always_turn_right(self, grid3x3):
        turning = TurningProbabilities.uniform(1.0, 0.0)
        sampler = RouteSampler(grid3x3, turning, np.random.default_rng(0))
        route = sampler.sample_route("IN:N@J01")
        # A right turn from a north entry heads west and exits west.
        assert route[-1].startswith("OUT:W@")

    def test_always_turn_left(self, grid3x3):
        turning = TurningProbabilities.uniform(0.0, 1.0)
        sampler = RouteSampler(grid3x3, turning, np.random.default_rng(0))
        route = sampler.sample_route("IN:N@J01")
        assert route[-1].startswith("OUT:E@")

    def test_turn_intersection_uniformly_random(self, grid3x3):
        turning = TurningProbabilities.uniform(1.0, 0.0)
        sampler = RouteSampler(grid3x3, turning, np.random.default_rng(11))
        lengths = {}
        for _ in range(3000):
            route = sampler.sample_route("IN:N@J01")
            lengths[len(route)] = lengths.get(len(route), 0) + 1
        # Turning at row 0, 1 or 2 gives three distinct route lengths,
        # each picked uniformly (~1/3).
        assert len(lengths) == 3
        for count in lengths.values():
            assert count / 3000 == pytest.approx(1 / 3, abs=0.05)

    def test_unknown_entry_rejected(self, sampler):
        with pytest.raises(KeyError):
            sampler.sample_route("J00->J01")

    def test_single_intersection_routes(self, single_network):
        sampler = RouteSampler(
            single_network, TURNING, np.random.default_rng(0)
        )
        for _ in range(50):
            route = sampler.sample_route("IN:N@J00")
            single_network.validate_route(route)
            assert len(route) == 2  # entry road + exit road
