"""Tests for repro.model.movements."""

import pytest

from repro.model.geometry import Direction, TurnType
from repro.model.movements import Movement


def make(turn=TurnType.LEFT, mu=1.0):
    return Movement(
        in_road="in",
        out_road="out",
        approach=Direction.N,
        turn=turn,
        service_rate=mu,
    )


class TestMovement:
    def test_key(self):
        assert make().key == ("in", "out")

    def test_exit_side_consistent_with_geometry(self):
        movement = make(turn=TurnType.LEFT)
        assert movement.exit_side is Direction.E

    def test_label(self):
        assert make(turn=TurnType.RIGHT).label() == "N:right"

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Movement("r", "r", Direction.N, TurnType.LEFT)

    def test_empty_road_rejected(self):
        with pytest.raises(ValueError):
            Movement("", "out", Direction.N, TurnType.LEFT)

    @pytest.mark.parametrize("mu", [0.0, -1.0])
    def test_bad_service_rate_rejected(self, mu):
        with pytest.raises(ValueError):
            make(mu=mu)

    def test_frozen_and_hashable(self):
        assert make() == make()
        assert hash(make()) == hash(make())
