"""Tests for the table/figure reproduction drivers (tiny horizons)."""

import pytest

from repro.experiments.ablations import (
    ABLATIONS,
    render_ablation,
    run_ablation,
    run_mini_slot_ablation,
)
from repro.experiments.fig2 import Fig2Result, render_fig2, run_fig2
from repro.experiments.fig34 import render_fig34, run_fig34
from repro.experiments.fig5 import render_fig5, run_fig5
from repro.experiments.table3 import (
    PAPER_TABLE3,
    Table3Row,
    render_table3,
    run_table3,
)


class TestTable3Driver:
    def test_small_run(self):
        rows = run_table3(
            patterns=("II",),
            engine="meso",
            periods=(12.0, 20.0),
            duration_scale=0.05,  # 180 s
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.pattern == "II"
        assert row.cap_bp_best_period in (12.0, 20.0)
        assert row.util_bp_queuing_time > 0

    def test_paper_reference_values(self):
        assert PAPER_TABLE3["IV"] == (22.0, 125.63, 94.05)
        paper_improvements = [
            (cap - util) / cap * 100
            for (_, cap, util) in PAPER_TABLE3.values()
        ]
        mean = sum(paper_improvements) / len(paper_improvements)
        assert mean == pytest.approx(13.0, abs=2.0)  # "at least about 13%"

    def test_render(self):
        row = Table3Row("I", 18.0, 100.0, 87.0)
        out = render_table3([row])
        assert "Table III" in out
        assert "13.0%" in out

    def test_improvement_percent(self):
        row = Table3Row("I", 18.0, 100.0, 80.0)
        assert row.improvement_percent == pytest.approx(20.0)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            run_table3(duration_scale=0.0)


class TestFig2Driver:
    def test_small_sweep(self):
        result = run_fig2(
            periods=(12, 24), engine="meso", segment_duration=60.0
        )
        assert len(result.cap_bp_queuing_times) == 2
        assert result.best_period in (12.0, 24.0)

    def test_result_properties(self):
        result = Fig2Result(
            periods=(10.0, 20.0),
            cap_bp_queuing_times=(150.0, 120.0),
            util_bp_queuing_time=100.0,
        )
        assert result.best_period == 20.0
        assert result.best_queuing_time == 120.0
        assert result.util_beats_best

    def test_render(self):
        result = Fig2Result(
            periods=(10.0, 20.0),
            cap_bp_queuing_times=(150.0, 120.0),
            util_bp_queuing_time=100.0,
        )
        out = render_fig2(result)
        assert "Fig. 2" in out
        assert "beats" in out

    def test_empty_periods_rejected(self):
        with pytest.raises(ValueError):
            run_fig2(periods=())


class TestFig34Driver:
    def test_traces_recorded(self):
        result = run_fig34(engine="meso", duration=200.0)
        assert result.cap_bp_trace.node_id == "J02"
        assert result.util_bp_trace.switch_count() >= 0
        stats = result.stats()
        assert set(stats) == {"cap-bp", "util-bp"}
        shares = [
            stats["util-bp"][f"share_c{i}"] for i in range(5)
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_render(self):
        result = run_fig34(engine="meso", duration=150.0)
        out = render_fig34(result)
        assert "Fig. 3" in out and "Fig. 4" in out


class TestFig5Driver:
    def test_traces_recorded(self):
        result = run_fig5(engine="meso", duration=200.0)
        assert len(result.cap_bp_trace.series) > 0
        assert len(result.util_bp_trace.series) > 0

    def test_render(self):
        result = run_fig5(engine="meso", duration=150.0)
        assert "Fig. 5" in render_fig5(result)


class TestAblations:
    def test_studies_defined(self):
        assert set(ABLATIONS) >= {
            "transition-duration",
            "alpha-beta-order",
            "keep-margin",
            "controller-family",
        }

    def test_alpha_beta_study(self):
        points = run_ablation(
            "alpha-beta-order", pattern="II", duration=120.0
        )
        assert len(points) == 2
        assert all(p.average_queuing_time >= 0 for p in points)

    def test_mini_slot_study(self):
        points = run_mini_slot_ablation(
            pattern="II", duration=120.0, mini_slots=(1.0, 5.0)
        )
        assert [p.params["mini_slot"] for p in points] == [1.0, 5.0]

    def test_mini_slot_dispatch(self):
        points = run_ablation("mini-slot", pattern="II", duration=60.0)
        assert points  # dispatched to the runner-cadence variant

    def test_unknown_study_rejected(self):
        with pytest.raises(ValueError):
            run_ablation("nonexistent")

    def test_render(self):
        points = run_ablation(
            "alpha-beta-order", pattern="II", duration=60.0
        )
        out = render_ablation(points)
        assert "alpha-beta-order" in out
