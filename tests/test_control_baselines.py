"""Tests for the baseline controllers: fixed-time, original BP, CAP-BP."""

import pytest

from repro.control.base import TRANSITION
from repro.control.cap_bp import CapBpController, cap_link_weight
from repro.control.fixed_time import FixedTimeController
from repro.control.original_bp import OriginalBpController
from tests.conftest import make_observation


class TestFixedTime:
    def test_round_robin_order(self, intersection):
        ctrl = FixedTimeController(intersection, period=2, transition_duration=1.0)
        decisions = []
        for t in range(16):
            decisions.append(
                ctrl.decide(make_observation(intersection, time=float(t)))
            )
        greens = [d for d in decisions if d != TRANSITION]
        # Phases must appear in cyclic order 1, 2, 3, 4, 1, ...
        order = []
        for g in greens:
            if not order or order[-1] != g:
                order.append(g)
        assert order[:4] == [1, 2, 3, 4]

    def test_ignores_queues(self, intersection):
        ctrl = FixedTimeController(intersection, period=2, transition_duration=1.0)
        m3 = intersection.phase_by_index(3).movements[0]
        obs = make_observation(intersection, movement_queues={m3.key: 99})
        assert ctrl.decide(obs) == 1  # starts with phase 1 regardless


class TestOriginalBp:
    def test_picks_highest_total_gain(self, intersection):
        ctrl = OriginalBpController(intersection, period=5)
        m3 = intersection.phase_by_index(3).movements[0]
        obs = make_observation(intersection, movement_queues={m3.key: 10})
        assert ctrl.decide(obs) == 3

    def test_total_queue_pressure_is_oblivious_to_movement(self, intersection):
        """The Eq. 5 pathology: queue on the *right* lane inflates the
        gain of the straight/left phase too (pressure from q_i, not
        q_i^{i'})."""
        ctrl = OriginalBpController(intersection, period=5)
        phase_2 = intersection.phase_by_index(2)
        right = phase_2.movements[0]  # N:right queue
        obs = make_observation(intersection, movement_queues={right.key: 12})
        # Phase 1 activates two N links whose road total is 12 each ->
        # phase 1 gain (24) exceeds phase 2 gain (12 + partner road).
        assert ctrl.decide(obs) == 1

    def test_all_zero_keeps_running_phase(self, intersection):
        ctrl = OriginalBpController(intersection, period=2)
        m3 = intersection.phase_by_index(3).movements[0]
        ctrl.decide(make_observation(intersection, movement_queues={m3.key: 5}))
        obs = make_observation(intersection, time=2.0)  # everything empty
        assert ctrl.decide(obs) == 3

    def test_all_zero_initial_picks_first_phase(self, intersection):
        ctrl = OriginalBpController(intersection, period=5)
        assert ctrl.decide(make_observation(intersection)) == 1


class TestCapLinkWeight:
    def test_normalized_difference(self, intersection):
        m = intersection.phase_by_index(1).movements[0]
        obs = make_observation(
            intersection,
            movement_queues={m.key: 12},
            out_queues={m.out_road: 60},
        )
        weight = cap_link_weight(m, obs, in_capacity=120)
        assert weight == pytest.approx(12 / 120 - 60 / 120)

    def test_full_downstream_zero(self, intersection):
        m = intersection.phase_by_index(1).movements[0]
        obs = make_observation(
            intersection,
            movement_queues={m.key: 50},
            out_queues={m.out_road: 120},
        )
        assert cap_link_weight(m, obs, in_capacity=120) == 0.0

    def test_bad_capacity_rejected(self, intersection):
        m = intersection.phase_by_index(1).movements[0]
        obs = make_observation(intersection)
        with pytest.raises(ValueError):
            cap_link_weight(m, obs, in_capacity=0)


class TestCapBp:
    def test_picks_highest_pressure_phase(self, intersection):
        ctrl = CapBpController(intersection, period=5)
        m3 = intersection.phase_by_index(3).movements[0]
        obs = make_observation(intersection, movement_queues={m3.key: 10})
        assert ctrl.decide(obs) == 3

    def test_capacity_awareness_diverts(self, intersection):
        """A huge queue into a full road must not win the slot."""
        ctrl = CapBpController(intersection, period=5)
        m1 = intersection.phase_by_index(1).movements[0]
        m3 = intersection.phase_by_index(3).movements[0]
        obs = make_observation(
            intersection,
            movement_queues={m1.key: 100, m3.key: 2},
            out_queues={m1.out_road: 120},
        )
        assert ctrl.decide(obs) == 3

    def test_work_conservation_prefers_servable(self, intersection):
        """Slot-level work conservation: pick a phase that can serve.

        Phase 1's only queued movements face full roads (weight capped
        to zero by capacity awareness); phase 4 holds a single servable
        vehicle and must win the slot.
        """
        ctrl = CapBpController(intersection, period=5)
        phase_1 = intersection.phase_by_index(1)
        blocked = [
            m for m in phase_1.movements if m.label().startswith("N:")
        ]
        m4 = next(
            m
            for m in intersection.phase_by_index(4).movements
            if m.out_road not in {b.out_road for b in blocked}
        )
        obs = make_observation(
            intersection,
            movement_queues={
                **{m.key: 50 for m in blocked},
                m4.key: 1,
            },
            out_queues={m.out_road: 120 for m in blocked},
        )
        assert ctrl.decide(obs) == 4

    def test_all_empty_keeps_running_phase(self, intersection):
        ctrl = CapBpController(intersection, period=2)
        m3 = intersection.phase_by_index(3).movements[0]
        ctrl.decide(make_observation(intersection, movement_queues={m3.key: 5}))
        assert ctrl.decide(make_observation(intersection, time=2.0)) == 3
