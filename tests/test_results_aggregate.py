"""Shared aggregation: group-by, stats, and delay-mode safety."""

import math

import pytest

from repro.experiments.runner import RunResult
from repro.metrics.collector import Summary
from repro.orchestration import RunSpec
from repro.results import (
    MetricStats,
    MixedDelayModeError,
    aggregate,
    tidy_table,
)


def make_cell(
    pattern="I",
    controller="util-bp",
    engine="meso",
    seed=1,
    avg_queuing=10.0,
    avg_travel=60.0,
    delay_mode="per-vehicle",
):
    """A synthetic (spec, result) pair — no simulation needed."""
    spec = RunSpec(
        pattern=pattern,
        controller=controller,
        engine=engine,
        seed=seed,
        duration=90.0,
    )
    summary = Summary(
        duration=90.0,
        vehicles_entered=100,
        vehicles_left=90,
        average_queuing_time=avg_queuing,
        average_travel_time=avg_travel,
        total_queuing_time=avg_queuing * 100,
        max_queuing_time=3 * avg_queuing,
        throughput_per_hour=3600.0,
        delay_mode=delay_mode,
    )
    result = RunResult(
        scenario_name=f"grid3x3-pattern-{pattern}",
        controller_name=controller,
        duration=90.0,
        summary=summary,
    )
    return spec, result


class TestMetricStats:
    def test_single_value(self):
        stats = MetricStats.from_values([5.0])
        assert stats == MetricStats(mean=5.0, std=0.0, ci95=0.0, n=1)

    def test_mean_std_ci(self):
        stats = MetricStats.from_values([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.ci95 == pytest.approx(1.96 / math.sqrt(3))
        assert stats.n == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricStats.from_values([])


class TestAggregate:
    def test_groups_across_seeds(self):
        cells = [
            make_cell(seed=1, avg_queuing=10.0),
            make_cell(seed=2, avg_queuing=14.0),
            make_cell(controller="cap-bp", seed=1, avg_queuing=20.0),
        ]
        rows = aggregate(cells, by=("pattern", "controller"))
        assert len(rows) == 2
        by_controller = {row["controller"]: row for row in rows}
        util = by_controller["util-bp"]
        assert util["n"] == 2
        assert util["average_queuing_time_mean"] == pytest.approx(12.0)
        assert util["average_queuing_time_std"] == pytest.approx(
            math.sqrt(8.0)
        )
        assert by_controller["cap-bp"]["n"] == 1

    def test_accepts_stored_records(self, tmp_path):
        from repro.results import ResultStore

        store = ResultStore(tmp_path / "s.sqlite")
        for seed, value in ((1, 10.0), (2, 20.0)):
            spec, result = make_cell(seed=seed, avg_queuing=value)
            store.put(spec, result)
        rows = aggregate(store.query(), by=("pattern",))
        assert rows[0]["average_queuing_time_mean"] == pytest.approx(15.0)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregation axes"):
            aggregate([make_cell()], by=("flavor",))

    def test_rows_are_sorted_and_tidy(self):
        cells = [
            make_cell(pattern="II"),
            make_cell(pattern="I"),
        ]
        rows = aggregate(cells, by=("pattern",))
        assert [row["pattern"] for row in rows] == ["I", "II"]
        headers, body = tidy_table(rows)
        assert headers[0] == "pattern"
        assert len(body) == 2
        assert all(len(line) == len(headers) for line in body)


class TestDelayModeSafety:
    def mixed_cells(self):
        return [
            make_cell(seed=1, delay_mode="per-vehicle", avg_travel=60.0),
            make_cell(
                seed=2,
                engine="meso-counts",
                delay_mode="aggregate",
                avg_travel=90.0,
            ),
        ]

    def test_mixed_modes_raise_by_default(self):
        with pytest.raises(MixedDelayModeError, match="delay modes"):
            aggregate(self.mixed_cells(), by=("pattern", "controller"))

    def test_mixed_modes_split_on_request(self):
        rows = aggregate(
            self.mixed_cells(),
            by=("pattern", "controller"),
            on_mixed_delay_mode="split",
        )
        assert len(rows) == 2
        assert {row["delay_mode"] for row in rows} == {
            "per-vehicle",
            "aggregate",
        }
        # Each split row averages only its own semantics.
        travel = {
            row["delay_mode"]: row["average_travel_time_mean"] for row in rows
        }
        assert travel["per-vehicle"] == pytest.approx(60.0)
        assert travel["aggregate"] == pytest.approx(90.0)

    def test_mixed_modes_fine_without_sensitive_metrics(self):
        # Total/average queuing time is exact under both modes, so
        # blending those is legitimate — flagged as mixed, not blocked.
        rows = aggregate(
            self.mixed_cells(),
            by=("pattern", "controller"),
            metrics=("average_queuing_time",),
        )
        assert len(rows) == 1
        assert rows[0]["delay_mode"] == "mixed"
        assert rows[0]["n"] == 2

    def test_explicit_delay_mode_axis_always_allowed(self):
        rows = aggregate(
            self.mixed_cells(),
            by=("pattern", "delay_mode"),
        )
        assert len(rows) == 2

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="on_mixed_delay_mode"):
            aggregate([make_cell()], on_mixed_delay_mode="blend")

    def test_uniform_modes_never_raise(self):
        cells = [make_cell(seed=s) for s in (1, 2, 3)]
        rows = aggregate(cells, by=("pattern",))
        assert rows[0]["delay_mode"] == "per-vehicle"
        assert rows[0]["n"] == 3
