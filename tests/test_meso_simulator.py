"""Tests for repro.meso — the store-and-forward engine."""

import pytest

from repro.experiments.patterns import TURNING
from repro.meso.road_state import RoadState
from repro.meso.simulator import MesoSimulator
from repro.meso.vehicle import MesoVehicle
from repro.model.arrivals import ArrivalSchedule
from repro.model.grid import build_grid_network
from repro.model.roads import Road
from repro.model.routing import TurningProbabilities


def make_sim(
    rows=1,
    cols=1,
    rate=0.2,
    seed=0,
    capacity=120,
    **kwargs,
):
    network = build_grid_network(rows, cols, capacity=capacity)
    demand = {
        entry: ArrivalSchedule.constant(rate)
        for entry in network.entry_roads()
    }
    return MesoSimulator(
        network, demand, TURNING, seed=seed, **kwargs
    )


ALL_GREEN_1 = {"J00": 1}


class TestRoadState:
    def _state(self, capacity=3):
        state = RoadState(Road("r", capacity=capacity))
        state.add_movement_lane("out")
        return state

    def test_occupancy_counts_transit_and_queued(self):
        state = self._state()
        vehicle = MesoVehicle(1, ["r", "out"])
        state.enter_transit(vehicle, ready_time=5.0)
        assert state.occupancy == 1
        state.promote_arrivals(5.0)
        assert state.occupancy == 1
        assert state.queue_length("out") == 1

    def test_capacity_enforced(self):
        state = self._state(capacity=1)
        state.enter_transit(MesoVehicle(1, ["r", "out"]), 0.0)
        with pytest.raises(ValueError):
            state.enter_transit(MesoVehicle(2, ["r", "out"]), 0.0)

    def test_promotion_respects_ready_time(self):
        state = self._state()
        state.enter_transit(MesoVehicle(1, ["r", "out"]), ready_time=10.0)
        assert state.promote_arrivals(9.0) == []
        assert len(state.promote_arrivals(10.0)) == 1

    def test_fifo_order(self):
        state = self._state()
        for i in range(3):
            state.enter_transit(MesoVehicle(i, ["r", "out"]), ready_time=1.0)
        state.promote_arrivals(1.0)
        assert state.pop_served("out").vehicle_id == 0
        assert state.pop_served("out").vehicle_id == 1

    def test_pop_empty_raises(self):
        with pytest.raises(ValueError):
            self._state().pop_served("out")

    def test_approaching_horizon(self):
        state = self._state()
        state.enter_transit(MesoVehicle(1, ["r", "out"]), ready_time=3.0)
        state.enter_transit(MesoVehicle(2, ["r", "out"]), ready_time=30.0)
        assert state.approaching(now=0.0, horizon=5.0) == {"out": 1}


class TestMesoSimulator:
    def test_conservation_of_vehicles(self):
        sim = make_sim(rate=0.3, seed=2)
        for _ in range(300):
            sim.step(1.0, ALL_GREEN_1)
        sim.finalize()
        summary = sim.collector.summary(300.0)
        inside = sim.vehicles_in_network()
        # Exact balance: entered = left + still inside (+ backlog, which
        # finalize() registers as entered).
        assert (
            summary.vehicles_entered
            == summary.vehicles_left + inside + sim.backlog_size()
        )

    def test_transition_serves_nothing(self):
        sim = make_sim(rate=0.5, seed=3)
        for _ in range(120):
            sim.step(1.0, {"J00": 0})
        assert sim.collector.vehicles_left == 0

    def test_capacity_never_exceeded(self):
        sim = make_sim(rate=2.0, seed=4, capacity=15)
        for _ in range(200):
            sim.step(1.0, ALL_GREEN_1)
        for road_id in sim.network.roads:
            assert sim.road_occupancy(road_id) <= 15

    def test_backlog_grows_when_entry_full(self):
        sim = make_sim(rate=3.0, seed=5, capacity=10)
        for _ in range(200):
            sim.step(1.0, {"J00": 0})  # permanent amber
        assert sim.backlog_size() > 0

    def test_green_serves_vehicles(self):
        sim = make_sim(rate=0.5, seed=6)
        for phase in (1, 2, 3, 4):
            for _ in range(100):
                sim.step(1.0, {"J00": phase})
        assert sim.collector.vehicles_left > 0

    def test_determinism(self):
        def run():
            sim = make_sim(rate=0.4, seed=11)
            for k in range(150):
                sim.step(1.0, {"J00": (k // 15) % 4 + 1})
            sim.finalize()
            return sim.collector.summary(150.0)

        a, b = run(), run()
        assert a.average_queuing_time == b.average_queuing_time
        assert a.vehicles_entered == b.vehicles_entered

    def test_observation_structure(self):
        sim = make_sim()
        obs = sim.observations()["J00"]
        assert len(obs.movement_queues) == 12
        assert set(obs.out_queues) == set(
            sim.network.intersections["J00"].out_roads
        )
        assert obs.max_capacity() == 120

    def test_exit_roads_read_zero(self):
        sim = make_sim(rate=1.0, seed=7)
        for _ in range(50):
            sim.step(1.0, ALL_GREEN_1)
        obs = sim.observations()["J00"]
        for road_id in obs.out_queues:
            assert obs.out_queues[road_id] == 0  # 1x1 grid: all exits

    def test_sensing_horizon_sees_approaching(self):
        sim = make_sim(rate=1.0, seed=8, sensing_horizon=1e6)
        sim.step(1.0, {"J00": 0})
        sim.step(1.0, {"J00": 0})
        obs = sim.observations()["J00"]
        assert sum(obs.movement_queues.values()) > 0

    def test_startup_lost_time_delays_service(self):
        slow = make_sim(rate=0.5, seed=9, startup_lost=5.0)
        fast = make_sim(rate=0.5, seed=9, startup_lost=0.0)
        # Alternate phases every 8 s: the 5 s start-up eats most green.
        for sim in (slow, fast):
            for k in range(400):
                sim.step(1.0, {"J00": (k // 8) % 4 + 1})
        assert slow.collector.vehicles_left < fast.collector.vehicles_left

    def test_spillback_mode_reports_full_roads(self):
        network = build_grid_network(1, 2, capacity=8)
        demand = {"IN:W@J00": ArrivalSchedule.constant(1.0)}
        sim = MesoSimulator(
            network,
            demand,
            TurningProbabilities.uniform(0.0, 0.0),  # all straight W->E
            seed=1,
        )
        # J00 green for E/W straight (phase 3); J01 permanently amber:
        # the internal road J00->J01 must fill and spill back.
        for _ in range(300):
            sim.step(1.0, {"J00": 3, "J01": 0})
        obs = sim.observations()["J00"]
        assert obs.out_queues["J00->J01"] >= 8  # reads occupancy when full

    def test_invalid_demand_road_rejected(self):
        network = build_grid_network(1, 1)
        with pytest.raises(ValueError):
            MesoSimulator(
                network,
                {"OUT:N@J00": ArrivalSchedule.constant(1.0)},
                TURNING,
            )

    def test_unknown_out_queue_mode_rejected(self):
        with pytest.raises(ValueError):
            make_sim(out_queue_mode="bogus")

    def test_step_after_finalize_rejected(self):
        sim = make_sim()
        sim.step(1.0, ALL_GREEN_1)
        sim.finalize()
        with pytest.raises(RuntimeError):
            sim.step(1.0, ALL_GREEN_1)

    def test_queuing_time_accrued_for_waiting_vehicles(self):
        sim = make_sim(rate=0.5, seed=10)
        for _ in range(100):
            sim.step(1.0, {"J00": 0})  # nothing served
        sim.finalize()
        summary = sim.collector.summary(100.0)
        assert summary.average_queuing_time > 0
