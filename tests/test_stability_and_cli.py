"""Tests for the stability study and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.stability import (
    StabilityPoint,
    max_stable_scale,
    render_stability,
    run_stability_sweep,
)


class TestStability:
    def test_small_sweep_runs(self):
        points = run_stability_sweep(
            scales=(0.5, 1.0),
            controllers=(("util-bp", None),),
            duration=200.0,
        )
        assert len(points) == 2
        assert all(p.controller == "util-bp" for p in points)

    def test_light_demand_stable(self):
        points = run_stability_sweep(
            scales=(0.5,), controllers=(("util-bp", None),), duration=400.0
        )
        assert points[0].stable

    def test_stable_property(self):
        point = StabilityPoint(
            controller="x",
            demand_scale=1.0,
            average_queuing_time=10.0,
            vehicles_in_network=100,
            backlog=0,
            network_capacity=1000,
        )
        assert point.stable
        saturated = StabilityPoint(
            controller="x",
            demand_scale=2.0,
            average_queuing_time=500.0,
            vehicles_in_network=900,
            backlog=300,
            network_capacity=1000,
        )
        assert not saturated.stable

    def test_max_stable_scale(self):
        def point(scale, stable_count):
            return StabilityPoint(
                "c", scale, 1.0, 0 if stable_count else 10**6, 0, 10
            )

        points = [point(0.5, True), point(1.0, True), point(1.5, False)]
        assert max_stable_scale(points, "c") == 1.0
        assert max_stable_scale(points, "other") == 0.0

    def test_render(self):
        points = run_stability_sweep(
            scales=(0.5,), controllers=(("util-bp", None),), duration=100.0
        )
        assert "Stability sweep" in render_stability(points)

    def test_empty_scales_rejected(self):
        with pytest.raises(ValueError):
            run_stability_sweep(scales=())


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_command(self, capsys):
        code = main(
            [
                "run",
                "--pattern",
                "II",
                "--controller",
                "fixed-time",
                "--period",
                "15",
                "--duration",
                "120",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "average queuing time" in out

    def test_run_util_bp_default(self, capsys):
        assert main(["run", "--duration", "60"]) == 0
        assert "Summary" in capsys.readouterr().out

    def test_ablations_single_study(self, capsys):
        code = main(["ablations", "alpha-beta-order", "--duration", "60"])
        assert code == 0
        assert "alpha-beta-order" in capsys.readouterr().out

    def test_unknown_controller_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--controller", "magic"])

    def test_fig2_flags_parse(self):
        args = build_parser().parse_args(
            ["fig2", "--engine", "meso", "--segment", "100"]
        )
        assert args.segment == 100.0

    def test_stability_flags_parse(self):
        args = build_parser().parse_args(["stability", "--duration", "300"])
        assert args.duration == 300.0

    def test_sweep_flags_parse(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "--patterns", "I", "mixed",
                "--controllers", "util-bp", "cap-bp:period=18",
                "--workers", "4",
            ]
        )
        assert args.patterns == ["I", "mixed"]
        assert args.controllers == [
            ("util-bp", {}),
            ("cap-bp", {"period": 18.0}),
        ]
        assert args.workers == 4

    def test_sweep_rejects_unknown_pattern(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--patterns", "V"])

    def test_sweep_rejects_unknown_controller(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--controllers", "magic"])


class TestScenariosCli:
    def test_list_shows_catalog(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("surge-4x4", "tidal-3x3", "incident-3x3"):
            assert name in out

    def test_list_shows_at_least_eight(self, capsys):
        from repro.scenarios import scenario_names

        main(["scenarios", "list"])
        out = capsys.readouterr().out
        listed = [n for n in scenario_names() if n in out]
        assert len(listed) >= 8

    def test_show_builds_the_scenario(self, capsys):
        assert main(["scenarios", "show", "incident-4x4"]) == 0
        out = capsys.readouterr().out
        assert "16 intersections" in out
        assert "road capacities" in out

    def test_show_accepts_dynamic_names(self, capsys):
        assert main(["scenarios", "show", "steady-2x2"]) == 0
        assert "4 intersections" in capsys.readouterr().out

    def test_sweep_scenario_flag_parses(self):
        args = build_parser().parse_args(
            ["sweep", "--scenario", "surge-4x4", "--load", "1.2"]
        )
        assert args.scenarios == ["surge-4x4"]
        assert args.load == 1.2
        assert args.patterns is None

    def test_sweep_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scenario", "magic-grid"])

    def test_sweep_load_without_scenario_errors(self, capsys):
        code = main(["sweep", "--patterns", "I", "--load", "1.4"])
        assert code == 2
        assert "--load" in capsys.readouterr().err

    def test_sweep_runs_scenario_end_to_end(self, capsys):
        code = main(
            ["sweep", "--scenario", "surge-3x3", "--duration", "60"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "surge-3x3" in out
        assert "executed 1" in out

    def test_sweep_command_runs(self, capsys):
        code = main(
            [
                "sweep",
                "--patterns", "I",
                "--controllers", "util-bp",
                "--duration", "120",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Sweep — 1 cells" in out
        assert "executed 1" in out


class TestCliStoreOptions:
    """--store is canonical; --cache-dir is a deprecated alias."""

    def _sweep(self, *extra):
        return [
            "sweep", "--patterns", "I", "--controllers", "util-bp",
            "--duration", "60", *extra,
        ]

    def test_store_flag_is_canonical(self, tmp_path, capsys):
        import warnings

        store = tmp_path / "cells.sqlite"
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(self._sweep("--store", str(store))) == 0
        assert store.is_file()
        capsys.readouterr()
        assert main(self._sweep("--store", str(store))) == 0
        assert "cache hits 1" in capsys.readouterr().out

    def test_cache_dir_warns_and_still_works(self, tmp_path, capsys):
        import warnings

        with pytest.warns(DeprecationWarning, match="--cache-dir"):
            assert main(self._sweep("--cache-dir", str(tmp_path))) == 0
        assert (tmp_path / "results.sqlite").is_file()
        capsys.readouterr()
        # The alias resolves to the same store file as --store.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            code = main(
                self._sweep("--store", str(tmp_path / "results.sqlite"))
            )
        assert code == 0
        assert "cache hits 1" in capsys.readouterr().out

    def test_shard_and_fleet_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(["sweep", "--shard", "2/4"])
        assert args.shard == "2/4"
        args = parser.parse_args(["sweep", "--fleet", "3"])
        assert args.fleet == 3
        args = parser.parse_args(
            ["submit", "--scenario", "steady-4x4", "--shard", "0/2"]
        )
        assert args.shard == "0/2"
        for bad in (["--shard", "4/4"], ["--shard", "nope"]):
            with pytest.raises(SystemExit):
                parser.parse_args(["sweep", *bad])
        with pytest.raises(SystemExit):  # mutually exclusive
            parser.parse_args(["sweep", "--shard", "0/2", "--fleet", "2"])

    def test_fleet_requires_store(self, capsys):
        code = main(
            ["sweep", "--patterns", "I", "--duration", "60", "--fleet", "2"]
        )
        assert code == 2
        assert "--store" in capsys.readouterr().err

    def _shard_sweep(self, seeds, *extra):
        return [
            "sweep", "--patterns", "I", "--controllers", "util-bp",
            "--duration", "60", "--seeds", *map(str, seeds), *extra,
        ]

    def test_sharded_sweeps_merge_to_complete_store(self, tmp_path, capsys):
        seeds = [1, 2, 3, 4]
        for index in range(2):
            shard_store = tmp_path / f"shard-{index}.sqlite"
            code = main(
                self._shard_sweep(
                    seeds, "--shard", f"{index}/2",
                    "--store", str(shard_store),
                )
            )
            assert code == 0
            assert f"shard {index}/2" in capsys.readouterr().out
        merged = tmp_path / "merged.sqlite"
        code = main(
            [
                "results", "merge", str(merged),
                str(tmp_path / "shard-0.sqlite"),
                str(tmp_path / "shard-1.sqlite"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 inserted" in out or "rows total" in out
        # Resume against the merged store: nothing left to compute.
        code = main(self._shard_sweep(seeds, "--store", str(merged)))
        assert code == 0
        out = capsys.readouterr().out
        assert "executed 0" in out
        assert "cache hits 4" in out

    def test_results_merge_reports_bad_source(self, tmp_path, capsys):
        code = main(
            [
                "results", "merge", str(tmp_path / "out.sqlite"),
                str(tmp_path / "missing.sqlite"),
            ]
        )
        assert code == 2
        assert "no result store" in capsys.readouterr().err

    def test_fleet_sweep_end_to_end(self, tmp_path, capsys):
        store = tmp_path / "fleet.sqlite"
        code = main(
            self._shard_sweep([1, 2], "--fleet", "2", "--store", str(store))
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet: 2 shards" in out
        # The table pass after the merge is pure cache hits.
        assert "executed 0" in out
        assert "cache hits 2" in out
        assert store.is_file()

    def test_serve_and_submit_commands_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--store", "s.sqlite", "--port", "0"]
        )
        assert args.command == "serve"
        assert args.port == 0
        args = parser.parse_args(
            [
                "submit", "--url", "http://127.0.0.1:9", "--scenario",
                "steady-4x4", "--wait", "5",
            ]
        )
        assert args.command == "submit"
        assert args.wait == 5.0
        args = parser.parse_args(["jobs", "job-000001", "--events"])
        assert args.command == "jobs"
        assert args.events

    def test_submit_unreachable_service_fails_cleanly(self, capsys):
        code = main(
            [
                "submit", "--url", "http://127.0.0.1:9",
                "--scenario", "steady-4x4",
            ]
        )
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_jobs_unreachable_service_fails_cleanly(self, capsys):
        code = main(["jobs", "--url", "http://127.0.0.1:9"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err
