"""Tests for the mixed-lane (shared FIFO) mode — Sec. IV-Q4."""

import pytest

from repro.control.factory import make_network_controller
from repro.experiments.patterns import TURNING
from repro.meso.road_state import RoadState
from repro.meso.simulator import MesoSimulator
from repro.meso.vehicle import MesoVehicle
from repro.model.arrivals import ArrivalSchedule
from repro.model.grid import build_grid_network
from repro.model.roads import Road


def make_sim(lane_policy, rate=0.3, seed=0):
    network = build_grid_network(1, 1)
    demand = {
        entry: ArrivalSchedule.constant(rate)
        for entry in network.entry_roads()
    }
    return MesoSimulator(
        network, demand, TURNING, seed=seed, lane_policy=lane_policy
    )


class TestRoadStateMixed:
    def test_make_mixed(self):
        state = RoadState(Road("r"))
        state.make_mixed()
        assert state.mixed
        assert len(state.mixed_queue) == 0

    def test_cannot_mix_after_dedicated(self):
        state = RoadState(Road("r"))
        state.add_movement_lane("out")
        with pytest.raises(ValueError):
            state.make_mixed()

    def test_cannot_dedicate_after_mixed(self):
        state = RoadState(Road("r"))
        state.make_mixed()
        with pytest.raises(ValueError):
            state.add_movement_lane("out")

    def test_mixed_queue_requires_mixed(self):
        state = RoadState(Road("r"))
        with pytest.raises(ValueError):
            state.mixed_queue

    def test_promotion_goes_to_shared_queue(self):
        state = RoadState(Road("r"))
        state.make_mixed()
        state.enter_transit(MesoVehicle(1, ["r", "a"]), ready_time=0.0)
        state.enter_transit(MesoVehicle(2, ["r", "b"]), ready_time=0.0)
        state.promote_arrivals(0.0)
        assert len(state.mixed_queue) == 2
        assert state.mixed_counts() == {"a": 1, "b": 1}


class TestMixedLaneSimulation:
    def test_conservation_in_mixed_mode(self):
        sim = make_sim("mixed", rate=0.2, seed=3)
        for k in range(300):
            sim.step(1.0, {"J00": (k // 20) % 4 + 1})
        sim.finalize()
        summary = sim.collector.summary(300.0)
        assert (
            summary.vehicles_entered
            == summary.vehicles_left
            + sim.vehicles_in_network()
            + sim.backlog_size()
        )

    def test_hol_blocking_reduces_throughput(self):
        """Same demand and phase schedule: the shared lane serves fewer
        vehicles because blocked heads block everyone behind."""
        results = {}
        for policy in ("dedicated", "mixed"):
            sim = make_sim(policy, rate=0.3, seed=4)
            controller = make_network_controller("util-bp", sim.network)
            for _ in range(600):
                sim.step(1.0, controller.decide(sim.observations()))
            sim.finalize()
            results[policy] = sim.collector.summary(600.0)
        assert (
            results["mixed"].vehicles_left
            < results["dedicated"].vehicles_left
        )
        assert (
            results["mixed"].average_queuing_time
            > results["dedicated"].average_queuing_time
        )

    def test_head_movement_red_blocks_queue(self):
        """Direct HOL check: a red head blocks a green follower."""
        sim = make_sim("mixed", rate=0.0, seed=0)
        state = sim._roads["IN:N@J00"]
        # Head wants to turn right (phase 2); follower goes straight
        # (phase 1).  Apply phase 1: the follower must stay blocked.
        head = MesoVehicle(100, ["IN:N@J00", "OUT:W@J00"])
        follower = MesoVehicle(101, ["IN:N@J00", "OUT:S@J00"])
        for vehicle in (head, follower):
            vehicle.queued_since = 0.0
            sim.collector.vehicle_entered(vehicle.vehicle_id, 0.0)
            state.mixed_queue.append(vehicle)
        for _ in range(30):
            sim.step(1.0, {"J00": 1})  # straight+left green, right red
        assert len(state.mixed_queue) == 2  # nobody served
        sim.step(1.0, {"J00": 0})
        for _ in range(30):
            sim.step(1.0, {"J00": 2})  # right turns green: head leaves
        assert all(v.vehicle_id != 100 for v in state.mixed_queue)

    def test_observation_counts_per_movement(self):
        sim = make_sim("mixed", rate=0.0, seed=0)
        state = sim._roads["IN:N@J00"]
        for vid, out in ((1, "OUT:S@J00"), (2, "OUT:S@J00"), (3, "OUT:E@J00")):
            state.mixed_queue.append(MesoVehicle(vid, ["IN:N@J00", out]))
        obs = sim.observations()["J00"]
        assert obs.movement_queue("IN:N@J00", "OUT:S@J00") == 2
        assert obs.movement_queue("IN:N@J00", "OUT:E@J00") == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_sim("carpool")
