"""Tests for repro.traci.session — the TraCI-style facade."""

import pytest

from repro.scenarios.core import build_scenario
from repro.traci.session import TraciSession


@pytest.fixture
def session():
    return TraciSession(
        build_scenario("II", seed=3, rows=1, cols=1), engine="meso"
    )


class TestTraciSession:
    def test_step_advances_time(self, session):
        assert session.getTime() == 0.0
        session.simulationStep()
        assert session.getTime() == 1.0

    def test_set_and_get_phase(self, session):
        session.setPhase("J00", 2)
        assert session.getPhase("J00") == 2

    def test_phase_zero_is_transition(self, session):
        session.setPhase("J00", 0)
        assert session.getPhase("J00") == 0

    def test_unknown_light_rejected(self, session):
        with pytest.raises(KeyError):
            session.setPhase("J99", 1)
        with pytest.raises(KeyError):
            session.getPhase("J99")

    def test_unknown_phase_rejected(self, session):
        with pytest.raises(KeyError):
            session.setPhase("J00", 17)

    def test_phase_count(self, session):
        assert session.getPhaseCount("J00") == 4

    def test_queue_observation(self, session):
        for _ in range(30):
            session.simulationStep()
        obs = session.getQueueObservation("J00")
        assert len(obs.movement_queues) == 12

    def test_lane_area_detector(self, session):
        for _ in range(30):
            session.simulationStep()  # amber: queues build
        total = sum(
            session.getLaneAreaJamVehicles(in_road, out_road)
            for (in_road, out_road) in session.scenario.network.intersections[
                "J00"
            ].movements
        )
        assert total > 0

    def test_halting_number(self, session):
        for _ in range(30):
            session.simulationStep()
        halting = sum(
            session.getLastStepHaltingNumber(road)
            for road in session.scenario.network.intersections["J00"].in_roads
        )
        assert halting >= 0

    def test_min_expected_number(self, session):
        for _ in range(30):
            session.simulationStep()
        assert session.getMinExpectedNumber() > 0

    def test_subscriptions(self, session):
        session.subscribeJunction("J00")
        session.simulationStep()
        results = session.getSubscriptionResults()
        assert set(results) == {"J00"}

    def test_subscribe_unknown_rejected(self, session):
        with pytest.raises(KeyError):
            session.subscribeJunction("J99")

    def test_close_returns_summary_and_blocks_stepping(self, session):
        for _ in range(10):
            session.simulationStep()
        summary = session.close()
        assert summary.duration == pytest.approx(10.0)
        with pytest.raises(RuntimeError):
            session.simulationStep()

    def test_close_idempotent(self, session):
        session.simulationStep()
        first = session.close()
        second = session.close()
        assert first.vehicles_entered == second.vehicles_entered

    def test_micro_engine_session(self):
        session = TraciSession(
            build_scenario("II", seed=3, rows=1, cols=1), engine="micro"
        )
        session.setPhase("J00", 1)
        for _ in range(5):
            session.simulationStep()
        assert session.getTime() == pytest.approx(5.0)


class TestClosedLoopViaTraci:
    def test_manual_controller_loop(self):
        """A full closed loop written the way a TraCI client would."""
        from repro.core.util_bp import UtilBpController

        scenario = build_scenario("I", seed=5, rows=1, cols=1)
        session = TraciSession(scenario, engine="meso")
        controller = UtilBpController(
            scenario.network.intersections["J00"]
        )
        for _ in range(200):
            obs = session.getQueueObservation("J00")
            session.setPhase("J00", controller.decide(obs))
            session.simulationStep()
        summary = session.close()
        assert summary.vehicles_left > 0
