"""``SweepGrid.shard``: the deterministic partition behind scale-out.

The fleet runner, ``repro sweep --shard i/N`` and sharded service
submissions all rely on the same contract: for any shard count N the
shards are pairwise disjoint, their union is the full grid, and the
assignment depends only on spec *content* — not on axis ordering,
expansion order, or which process computes it.
"""

import pytest

from repro.orchestration import SweepGrid
from repro.orchestration.spec import parse_shard, shard_index_of


def make_grid(**overrides) -> SweepGrid:
    base = dict(
        scenarios=("steady-3x3", "surge-4x4"),
        controllers=(("util-bp", ()), ("cap-bp", ())),
        engines=("meso", "meso-counts"),
        seeds=(1, 2, 3),
    )
    base.update(overrides)
    return SweepGrid(**base)


def hashes(specs):
    return {spec.spec_hash() for spec in specs}


class TestShardPartition:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_disjoint_and_complete(self, count):
        grid = make_grid()
        shards = [grid.shard(index, count) for index in range(count)]
        assert sum(len(shard) for shard in shards) == len(grid)
        union = set()
        for shard in shards:
            shard_hashes = hashes(shard)
            assert not union & shard_hashes  # pairwise disjoint
            union |= shard_hashes
        assert union == hashes(grid.specs())

    def test_more_shards_than_cells(self):
        grid = make_grid()
        count = len(grid) + 20
        shards = [grid.shard(index, count) for index in range(count)]
        assert sum(len(shard) for shard in shards) == len(grid)
        assert any(len(shard) == 0 for shard in shards)
        assert set().union(*(hashes(s) for s in shards)) == hashes(
            grid.specs()
        )

    def test_single_shard_is_whole_grid(self):
        grid = make_grid()
        assert grid.shard(0, 1) == grid.specs()

    def test_assignment_ignores_axis_ordering(self):
        # Same cells, axes permuted: expansion order changes, but the
        # content-hash partition must not.
        grid = make_grid()
        permuted = make_grid(
            scenarios=("surge-4x4", "steady-3x3"),
            controllers=(("cap-bp", ()), ("util-bp", ())),
            engines=("meso-counts", "meso"),
            seeds=(3, 1, 2),
        )
        assert hashes(grid.specs()) == hashes(permuted.specs())
        for index in range(3):
            assert hashes(grid.shard(index, 3)) == hashes(
                permuted.shard(index, 3)
            )

    def test_stable_across_invocations(self):
        grid = make_grid()
        assert grid.shard(1, 4) == grid.shard(1, 4)
        # A structurally equal grid built separately agrees too.
        assert make_grid().shard(1, 4) == grid.shard(1, 4)

    def test_shard_index_of_matches_membership(self):
        grid = make_grid()
        for spec in grid.specs():
            index = shard_index_of(spec, 5)
            assert 0 <= index < 5
            assert spec in grid.shard(index, 5)

    @pytest.mark.parametrize(
        "index,count", [(-1, 2), (2, 2), (0, 0), (0, -3)]
    )
    def test_invalid_designators_rejected(self, index, count):
        with pytest.raises(ValueError):
            make_grid().shard(index, count)

    def test_shard_index_of_rejects_bad_count(self):
        spec = make_grid().specs()[0]
        with pytest.raises(ValueError):
            shard_index_of(spec, 0)


class TestParseShard:
    @pytest.mark.parametrize(
        "text,expected", [("0/1", (0, 1)), ("0/4", (0, 4)), ("3/4", (3, 4))]
    )
    def test_valid(self, text, expected):
        assert parse_shard(text) == expected

    @pytest.mark.parametrize(
        "text",
        ["", "3", "a/4", "1/b", "1/0", "4/4", "-1/4", "1/-2", "1/2/3"],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(ValueError):
            parse_shard(text)
