"""Tests for repro.model.roads."""

import pytest

from repro.model.roads import Road


class TestRoad:
    def test_defaults_match_paper(self):
        road = Road("r")
        assert road.capacity == 120

    def test_free_flow_time(self):
        road = Road("r", capacity=10, length=100.0, speed_limit=10.0)
        assert road.free_flow_time == pytest.approx(10.0)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Road("")

    @pytest.mark.parametrize("capacity", [0, -5])
    def test_bad_capacity_rejected(self, capacity):
        with pytest.raises(ValueError):
            Road("r", capacity=capacity)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Road("r", length=0.0)

    def test_bad_speed_rejected(self):
        with pytest.raises(ValueError):
            Road("r", speed_limit=-1.0)

    def test_frozen(self):
        road = Road("r")
        with pytest.raises(AttributeError):
            road.capacity = 10
