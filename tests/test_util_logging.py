"""Structured JSON-lines logging (repro.util.logging)."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.util.logging import (
    LEVELS,
    configure,
    context_fields,
    get_logger,
    log_context,
)


@pytest.fixture(autouse=True)
def reset_logging():
    """Every test starts from the default (stderr, info) configuration."""
    yield
    configure(stream=None, level="info")


def capture():
    stream = io.StringIO()
    configure(stream=stream)
    return stream


def lines(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestStructuredLogger:
    def test_lines_are_json_with_standard_fields(self):
        stream = capture()
        get_logger("t").info("thing_happened", message="hi", n=3)
        (record,) = lines(stream)
        assert record["level"] == "info"
        assert record["component"] == "t"
        assert record["event"] == "thing_happened"
        assert record["message"] == "hi"
        assert record["n"] == 3
        assert isinstance(record["ts"], float)

    def test_level_threshold_filters(self):
        stream = capture()
        configure(stream=stream, level="warning")
        log = get_logger("t")
        log.debug("d")
        log.info("i")
        log.warning("w")
        log.error("e")
        assert [r["level"] for r in lines(stream)] == ["warning", "error"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure(level="loud")
        assert "info" in LEVELS

    def test_context_fields_appear_on_every_line(self):
        stream = capture()
        log = get_logger("t")
        with log_context(request_id="req-1", job_id="job-9"):
            log.info("inside")
            assert context_fields() == {
                "request_id": "req-1",
                "job_id": "job-9",
            }
        log.info("outside")
        inside, outside = lines(stream)
        assert inside["request_id"] == "req-1"
        assert inside["job_id"] == "job-9"
        assert "request_id" not in outside
        assert context_fields() == {}

    def test_contexts_nest_and_restore(self):
        stream = capture()
        log = get_logger("t")
        with log_context(request_id="outer"):
            with log_context(job_id="j"):
                log.info("deep")
            log.info("shallow")
        deep, shallow = lines(stream)
        assert deep["request_id"] == "outer" and deep["job_id"] == "j"
        assert shallow["request_id"] == "outer"
        assert "job_id" not in shallow

    def test_context_is_thread_local(self):
        stream = capture()
        log = get_logger("t")
        seen = {}

        def worker():
            seen["fields"] = dict(context_fields())
            log.info("from_thread")

        with log_context(request_id="main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["fields"] == {}  # context does not leak across threads
        (record,) = lines(stream)
        assert "request_id" not in record

    def test_get_logger_caches_by_component(self):
        assert get_logger("same") is get_logger("same")
        assert get_logger("same") is not get_logger("other")

    def test_non_json_safe_fields_are_stringified(self):
        stream = capture()
        get_logger("t").info("odd", payload={1, 2})
        (record,) = lines(stream)  # the line itself must stay valid JSON
        assert "payload" in record
