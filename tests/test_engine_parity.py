"""Equivalence suite: ``meso-counts`` against the reference ``meso``.

The counts-based engine claims *step-for-step identical* Eq.-2
dynamics under a shared seed, not statistical similarity.  This suite
drives both engines in lockstep over steady/tidal/surge catalog
scenarios and asserts, at every mini-slot:

* identical queue observations (per-movement queues, outgoing queues,
  capacities) — the controller-visible state ``Q(k)``;
* identical occupancy introspection (vehicles in network, backlog,
  per-road stop-line totals);

and, at the end of the run:

* identical utilization books per intersection;
* identical entered/left counts and total queuing time (the counts
  engine's waiting-time integral must equal the per-vehicle sum);
* a flagged aggregate summary (``delay_mode``) whose exact fields
  match the reference.

Both closed-loop (util-bp, each engine fed its own observations) and
open-loop (fixed phase schedule) drives are covered: closed-loop
proves the engines are interchangeable inside the real control loop,
open-loop proves the parity does not depend on the controller masking
differences.
"""

import pytest

from repro.control.factory import make_network_controller
from repro.core.engine import build_engine
from repro.scenarios import build_named_scenario

#: The catalog entries the parity claim is asserted on (the demand
#: shapes differ: constant, piecewise tidal swap, load spike).
SCENARIOS = ("steady-3x3", "tidal-3x3", "surge-4x4")

STEPS = 300


def _lockstep(name, decide_a, decide_b, steps=STEPS):
    """Drive both engines in lockstep; assert per-step equivalence."""
    reference = build_engine(build_named_scenario(name, seed=11), "meso")
    counts = build_engine(build_named_scenario(name, seed=11), "meso-counts")
    roads = list(reference.network.roads)
    for step in range(steps):
        obs_ref = reference.observations()
        obs_cnt = counts.observations()
        assert set(obs_ref) == set(obs_cnt)
        for node_id in obs_ref:
            a, b = obs_ref[node_id], obs_cnt[node_id]
            assert a.movement_queues == b.movement_queues, (name, step, node_id)
            assert a.out_queues == b.out_queues, (name, step, node_id)
            assert a.out_capacities == b.out_capacities, (name, step, node_id)
        assert reference.vehicles_in_network() == counts.vehicles_in_network()
        assert reference.backlog_size() == counts.backlog_size()
        if step % 25 == 0:  # spot-check the per-road introspection
            for road in roads:
                assert reference.incoming_queue_total(
                    road
                ) == counts.incoming_queue_total(road), (name, step, road)
        phases_ref = decide_a(obs_ref, step)
        phases_cnt = decide_b(obs_cnt, step)
        assert phases_ref == phases_cnt, (name, step)
        reference.step(1.0, phases_ref)
        counts.step(1.0, phases_cnt)
    reference.finalize()
    counts.finalize()
    return reference, counts


def _assert_books_match(reference, counts, horizon=float(STEPS)):
    ref_util = {n: t.to_dict() for n, t in reference.utilization.items()}
    cnt_util = {n: t.to_dict() for n, t in counts.utilization.items()}
    assert ref_util == cnt_util
    ref = reference.collector.summary(horizon)
    cnt = counts.collector.summary(horizon)
    assert ref.delay_mode == "per-vehicle"
    assert cnt.delay_mode == "aggregate"
    assert cnt.vehicles_entered == ref.vehicles_entered
    assert cnt.vehicles_left == ref.vehicles_left
    # The waiting-count integral equals the per-vehicle waiting sum
    # exactly — joins and services land on mini-slot boundaries.
    assert cnt.total_queuing_time == ref.total_queuing_time
    assert cnt.average_queuing_time == pytest.approx(ref.average_queuing_time)
    assert cnt.throughput_per_hour == pytest.approx(ref.throughput_per_hour)


@pytest.mark.parametrize("name", SCENARIOS)
class TestTrajectoryParity:
    def test_closed_loop_util_bp(self, name):
        scenario = build_named_scenario(name, seed=11)
        controllers = [
            make_network_controller("util-bp", scenario.network)
            for _ in range(2)
        ]
        reference, counts = _lockstep(
            name,
            lambda obs, step: controllers[0].decide(obs),
            lambda obs, step: controllers[1].decide(obs),
        )
        _assert_books_match(reference, counts)

    def test_open_loop_fixed_phases(self, name):
        scenario = build_named_scenario(name, seed=11)
        nodes = list(scenario.network.intersections)

        def fixed(obs, step):
            # 12 s green dwells cycling all four phases, with an amber
            # step at every switch (phase 0), like a real signal plan.
            slot, offset = divmod(step, 13)
            phase = 0 if offset == 12 else 1 + slot % 4
            return {node: phase for node in nodes}

        reference, counts = _lockstep(name, fixed, fixed)
        _assert_books_match(reference, counts)


class TestAggregateSummary:
    def test_travel_time_is_littles_law_estimate(self):
        """The flagged field differs from per-vehicle (it is an estimate)."""
        scenario = build_named_scenario("steady-3x3", seed=11)
        controllers = [
            make_network_controller("util-bp", scenario.network)
            for _ in range(2)
        ]
        reference, counts = _lockstep(
            "steady-3x3",
            lambda obs, step: controllers[0].decide(obs),
            lambda obs, step: controllers[1].decide(obs),
        )
        ref = reference.collector.summary(float(STEPS))
        cnt = counts.collector.summary(float(STEPS))
        # Little's law bounds sanity: positive whenever trips completed,
        # and within the same order of magnitude as the exact average.
        assert cnt.average_travel_time > 0
        assert cnt.average_travel_time == pytest.approx(
            ref.average_travel_time, rel=1.0
        )
        # Unavailable per-vehicle extreme is reported as 0 and the mode
        # flag warns the consumer.
        assert cnt.max_queuing_time == 0.0
        assert "Little's-law" in str(cnt)