"""Equivalence suite: ``meso-counts`` against the reference ``meso``,
and ``meso-vec`` / ``meso-events`` against ``meso-counts``.

The counts-based engine claims *step-for-step identical* Eq.-2
dynamics under a shared seed, not statistical similarity.  This suite
drives both engines in lockstep over steady/tidal/surge catalog
scenarios and asserts, at every mini-slot:

* identical queue observations (per-movement queues, outgoing queues,
  capacities) — the controller-visible state ``Q(k)``;
* identical occupancy introspection (vehicles in network, backlog,
  per-road stop-line totals);

and, at the end of the run:

* identical utilization books per intersection;
* identical entered/left counts and total queuing time (the counts
  engine's waiting-time integral must equal the per-vehicle sum);
* a flagged aggregate summary (``delay_mode``) whose exact fields
  match the reference.

Both closed-loop (util-bp, each engine fed its own observations) and
open-loop (fixed phase schedule) drives are covered: closed-loop
proves the engines are interchangeable inside the real control loop,
open-loop proves the parity does not depend on the controller masking
differences.

The ``meso-events`` calendar-queue engine claims the same bit-exact
trajectory as ``meso-counts`` under a shared seed — the event loop only
reschedules *when* work happens, never *what* happens — so it runs the
identical closed- and open-loop lockstep matrices.

The ``meso-vec`` batch engine extends the chain: at ``B=1`` it must be
*exactly* equal to ``meso-counts`` under the same seed (same lockstep
checks), and every replication's results must be independent of the
batch size — together those two pin each replication of any batch to
the serial trajectory of its seed.
"""

import pytest

from repro.control.factory import make_network_controller
from repro.core.engine import (
    build_batch_controller,
    build_batch_engine,
    build_engine,
)
from repro.scenarios import build_named_scenario

#: The catalog entries the parity claim is asserted on (the demand
#: shapes differ: constant, piecewise tidal swap, load spike).
SCENARIOS = ("steady-3x3", "tidal-3x3", "surge-4x4")

STEPS = 300


def _lockstep(
    name,
    decide_a,
    decide_b,
    steps=STEPS,
    engines=("meso", "meso-counts"),
):
    """Drive two engines in lockstep; assert per-step equivalence."""
    reference = build_engine(build_named_scenario(name, seed=11), engines[0])
    counts = build_engine(build_named_scenario(name, seed=11), engines[1])
    roads = list(reference.network.roads)
    for step in range(steps):
        obs_ref = reference.observations()
        obs_cnt = counts.observations()
        assert set(obs_ref) == set(obs_cnt)
        for node_id in obs_ref:
            a, b = obs_ref[node_id], obs_cnt[node_id]
            assert a.movement_queues == b.movement_queues, (name, step, node_id)
            assert a.out_queues == b.out_queues, (name, step, node_id)
            assert a.out_capacities == b.out_capacities, (name, step, node_id)
        assert reference.vehicles_in_network() == counts.vehicles_in_network()
        assert reference.backlog_size() == counts.backlog_size()
        if step % 25 == 0:  # spot-check the per-road introspection
            for road in roads:
                assert reference.incoming_queue_total(
                    road
                ) == counts.incoming_queue_total(road), (name, step, road)
        phases_ref = decide_a(obs_ref, step)
        phases_cnt = decide_b(obs_cnt, step)
        assert phases_ref == phases_cnt, (name, step)
        reference.step(1.0, phases_ref)
        counts.step(1.0, phases_cnt)
    reference.finalize()
    counts.finalize()
    return reference, counts


def _assert_books_match(reference, counts, horizon=float(STEPS)):
    ref_util = {n: t.to_dict() for n, t in reference.utilization.items()}
    cnt_util = {n: t.to_dict() for n, t in counts.utilization.items()}
    assert ref_util == cnt_util
    ref = reference.collector.summary(horizon)
    cnt = counts.collector.summary(horizon)
    assert ref.delay_mode == "per-vehicle"
    assert cnt.delay_mode == "aggregate"
    assert cnt.vehicles_entered == ref.vehicles_entered
    assert cnt.vehicles_left == ref.vehicles_left
    # The waiting-count integral equals the per-vehicle waiting sum
    # exactly — joins and services land on mini-slot boundaries.
    assert cnt.total_queuing_time == ref.total_queuing_time
    assert cnt.average_queuing_time == pytest.approx(ref.average_queuing_time)
    assert cnt.throughput_per_hour == pytest.approx(ref.throughput_per_hour)


@pytest.mark.parametrize("name", SCENARIOS)
class TestTrajectoryParity:
    def test_closed_loop_util_bp(self, name):
        scenario = build_named_scenario(name, seed=11)
        controllers = [
            make_network_controller("util-bp", scenario.network)
            for _ in range(2)
        ]
        reference, counts = _lockstep(
            name,
            lambda obs, step: controllers[0].decide(obs),
            lambda obs, step: controllers[1].decide(obs),
        )
        _assert_books_match(reference, counts)

    def test_open_loop_fixed_phases(self, name):
        scenario = build_named_scenario(name, seed=11)
        nodes = list(scenario.network.intersections)

        def fixed(obs, step):
            # 12 s green dwells cycling all four phases, with an amber
            # step at every switch (phase 0), like a real signal plan.
            slot, offset = divmod(step, 13)
            phase = 0 if offset == 12 else 1 + slot % 4
            return {node: phase for node in nodes}

        reference, counts = _lockstep(name, fixed, fixed)
        _assert_books_match(reference, counts)


@pytest.mark.parametrize("name", SCENARIOS)
class TestEventsTrajectoryParity:
    """``meso-events`` against ``meso-counts``: exact, per step.

    Both engines keep aggregate books, so beyond the lockstep state
    checks the whole final summary must be bit-for-bit equal — and so
    must the banked service credits, which the event engine defers and
    replays lazily (finalize settles them).
    """

    ENGINES = ("meso-counts", "meso-events")

    def _assert_aggregate_books_match(self, counts, events):
        horizon = float(STEPS)
        cnt_util = {n: t.to_dict() for n, t in counts.utilization.items()}
        evt_util = {n: t.to_dict() for n, t in events.utilization.items()}
        assert cnt_util == evt_util
        cnt = counts.collector.summary(horizon)
        evt = events.collector.summary(horizon)
        assert cnt.delay_mode == evt.delay_mode == "aggregate"
        assert cnt == evt
        assert counts._credit == events._credit

    def test_closed_loop_util_bp(self, name):
        scenario = build_named_scenario(name, seed=11)
        controllers = [
            make_network_controller("util-bp", scenario.network)
            for _ in range(2)
        ]
        counts, events = _lockstep(
            name,
            lambda obs, step: controllers[0].decide(obs),
            lambda obs, step: controllers[1].decide(obs),
            engines=self.ENGINES,
        )
        self._assert_aggregate_books_match(counts, events)

    def test_open_loop_fixed_phases(self, name):
        scenario = build_named_scenario(name, seed=11)
        nodes = list(scenario.network.intersections)

        def fixed(obs, step):
            slot, offset = divmod(step, 13)
            phase = 0 if offset == 12 else 1 + slot % 4
            return {node: phase for node in nodes}

        counts, events = _lockstep(name, fixed, fixed, engines=self.ENGINES)
        self._assert_aggregate_books_match(counts, events)


@pytest.mark.parametrize("name", SCENARIOS)
class TestVectorizedTrajectoryParity:
    """``meso-vec`` at B=1 against ``meso-counts``: exact, per step."""

    ENGINES = ("meso-counts", "meso-vec")

    def _assert_aggregate_books_match(self, counts, vectorized):
        horizon = float(STEPS)
        cnt_util = {n: t.to_dict() for n, t in counts.utilization.items()}
        vec_util = {n: t.to_dict() for n, t in vectorized.utilization.items()}
        assert cnt_util == vec_util
        # Both report aggregate books, so the whole summary — travel
        # time estimate included — must be bit-for-bit equal.
        cnt = counts.collector.summary(horizon)
        vec = vectorized.collector.summary(horizon)
        assert cnt.delay_mode == vec.delay_mode == "aggregate"
        assert cnt == vec

    def test_closed_loop_util_bp(self, name):
        scenario = build_named_scenario(name, seed=11)
        controllers = [
            make_network_controller("util-bp", scenario.network)
            for _ in range(2)
        ]
        counts, vectorized = _lockstep(
            name,
            lambda obs, step: controllers[0].decide(obs),
            lambda obs, step: controllers[1].decide(obs),
            engines=self.ENGINES,
        )
        self._assert_aggregate_books_match(counts, vectorized)

    def test_open_loop_fixed_phases(self, name):
        scenario = build_named_scenario(name, seed=11)
        nodes = list(scenario.network.intersections)

        def fixed(obs, step):
            slot, offset = divmod(step, 13)
            phase = 0 if offset == 12 else 1 + slot % 4
            return {node: phase for node in nodes}

        counts, vectorized = _lockstep(
            name, fixed, fixed, engines=self.ENGINES
        )
        self._assert_aggregate_books_match(counts, vectorized)


class TestBatchIndependence:
    """Replication results must not depend on the batch size."""

    STEPS = 200
    NAME = "surge-4x4"  # congested: exercises the staged serve path

    def _run(self, seeds):
        scenarios = [build_named_scenario(self.NAME, seed=s) for s in seeds]
        sim = build_batch_engine(scenarios, "meso-vec")
        controllers = [
            make_network_controller("util-bp", scenarios[0].network)
            for _ in seeds
        ]
        for _ in range(self.STEPS):
            observations = sim.observations()
            sim.step(
                1.0,
                [
                    controller.decide(obs)
                    for controller, obs in zip(controllers, observations)
                ],
            )
        sim.finalize()
        return {
            seed: (
                sim.collector.summary_of(b, float(self.STEPS)),
                {n: t.to_dict() for n, t in sim.utilization_of(b).items()},
            )
            for b, seed in enumerate(seeds)
        }

    def test_b16_b4_b1_agree(self):
        seeds = tuple(range(21, 37))
        b16 = self._run(seeds)
        b4 = self._run(seeds[:4])
        b1 = self._run(seeds[:1])
        for seed in seeds[:4]:
            assert b16[seed] == b4[seed], seed
        assert b16[seeds[0]] == b1[seeds[0]]

    def test_batch_replication_equals_serial_counts_engine(self):
        """Any batch member equals the serial meso-counts run of its seed."""
        seeds = (21, 22, 23, 24)
        batch = self._run(seeds)
        scenario = build_named_scenario(self.NAME, seed=22)
        sim = build_engine(scenario, "meso-counts")
        controller = make_network_controller("util-bp", scenario.network)
        for _ in range(self.STEPS):
            sim.step(1.0, controller.decide(sim.observations()))
        sim.finalize()
        summary, util = batch[22]
        assert summary == sim.collector.summary(float(self.STEPS))
        assert util == {n: t.to_dict() for n, t in sim.utilization.items()}


class TestBatchedControllerParity:
    """The batched closed loop against the serial one: exact parity.

    The serial side is a meso-counts engine fed to a per-replication
    ``util-bp`` controller through ``QueueObservation`` dicts; the
    batched side is a meso-vec engine whose internal arrays feed the
    vectorized util-bp kernel (``decide_batch``).  Beyond the steady
    family the loop is pinned on the incident (capacity drop mid-run)
    and asymmetric (direction-skewed demand) families — the shapes
    where spillback/beta and empty-movement/alpha branches actually
    fire.
    """

    SCENARIOS = ("steady-3x3", "incident-3x3", "asymmetric-3x3")
    STEPS = 250

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_b1_lockstep_equals_serial(self, name):
        """Decision-for-decision identity at B=1, every mini-slot."""
        scenario = build_named_scenario(name, seed=11)
        serial = build_engine(
            build_named_scenario(name, seed=11), "meso-counts"
        )
        controller = make_network_controller("util-bp", scenario.network)
        batch = build_batch_engine(
            [build_named_scenario(name, seed=11)], "meso-vec"
        )
        batched = build_batch_controller("util-bp", scenario.network, 1)
        node_ids = batched.node_ids
        for step in range(self.STEPS):
            serial_decisions = controller.decide(serial.observations())
            array = batched.decide_batch(batch.controller_arrays())
            batched_decisions = {
                node: int(array[0, i]) for i, node in enumerate(node_ids)
            }
            assert serial_decisions == batched_decisions, (name, step)
            serial.step(1.0, serial_decisions)
            batch.step(1.0, array)
        serial.finalize()
        batch.finalize()
        horizon = float(self.STEPS)
        assert (
            batch.collector.summary_of(0, horizon)
            == serial.collector.summary(horizon)
        )
        assert {
            n: t.to_dict() for n, t in batch.utilization_of(0).items()
        } == {n: t.to_dict() for n, t in serial.utilization.items()}

    def _run_batched(self, name, seeds):
        scenarios = [build_named_scenario(name, seed=s) for s in seeds]
        sim = build_batch_engine(scenarios, "meso-vec")
        controller = build_batch_controller(
            "util-bp", scenarios[0].network, len(seeds)
        )
        for _ in range(self.STEPS):
            sim.step(
                1.0, controller.decide_batch(sim.controller_arrays())
            )
        sim.finalize()
        return {
            seed: (
                sim.collector.summary_of(b, float(self.STEPS)),
                {n: t.to_dict() for n, t in sim.utilization_of(b).items()},
            )
            for b, seed in enumerate(seeds)
        }

    @pytest.mark.parametrize("name", ("incident-3x3", "asymmetric-3x3"))
    def test_batched_controller_is_batch_width_independent(self, name):
        """B in {1, 4, 16}: each seed's results never depend on B."""
        seeds = tuple(range(41, 57))
        b16 = self._run_batched(name, seeds)
        b4 = self._run_batched(name, seeds[:4])
        b1 = self._run_batched(name, seeds[:1])
        for seed in seeds[:4]:
            assert b16[seed] == b4[seed], (name, seed)
        assert b16[seeds[0]] == b1[seeds[0]], name


class TestBatchRunner:
    def test_batch_results_equal_single_runs(self):
        """run_scenario_batch fans out to exactly the single-run results."""
        from repro.experiments.runner import run_scenario, run_scenario_batch

        record = dict(
            record_phases=("J00",), record_queues=(("J00", "IN:N@J00"),)
        )
        scenarios = [
            build_named_scenario("steady-3x3", seed=s) for s in (5, 6, 7)
        ]
        batch = run_scenario_batch(
            scenarios, controller="util-bp", duration=150.0, **record
        )
        for scenario, result in zip(scenarios, batch):
            single = run_scenario(
                build_named_scenario("steady-3x3", seed=scenario.seed),
                controller="util-bp",
                duration=150.0,
                engine="meso-vec",
                **record,
            )
            assert result == single

    def test_mixed_lane_policy_rejected(self):
        from repro.meso.vectorized import BatchCountsSimulator

        scenario = build_named_scenario("steady-3x3", seed=1)
        with pytest.raises(ValueError, match="mixed"):
            BatchCountsSimulator(
                network=scenario.network,
                demand=scenario.demand,
                turning=scenario.turning,
                seeds=(1,),
                lane_policy="mixed",
            )

    def test_constant_mini_slot_contract(self):
        from repro.meso.vectorized import BatchCountsSimulator

        scenario = build_named_scenario("steady-3x3", seed=1)
        sim = BatchCountsSimulator(
            network=scenario.network,
            demand=scenario.demand,
            turning=scenario.turning,
            seeds=(1, 2),
        )
        sim.step(1.0, [{}, {}])
        with pytest.raises(ValueError, match="constant mini-slot"):
            sim.step(0.5, [{}, {}])


class TestAggregateSummary:
    def test_travel_time_is_littles_law_estimate(self):
        """The flagged field differs from per-vehicle (it is an estimate)."""
        scenario = build_named_scenario("steady-3x3", seed=11)
        controllers = [
            make_network_controller("util-bp", scenario.network)
            for _ in range(2)
        ]
        reference, counts = _lockstep(
            "steady-3x3",
            lambda obs, step: controllers[0].decide(obs),
            lambda obs, step: controllers[1].decide(obs),
        )
        ref = reference.collector.summary(float(STEPS))
        cnt = counts.collector.summary(float(STEPS))
        # Little's law bounds sanity: positive whenever trips completed,
        # and within the same order of magnitude as the exact average.
        assert cnt.average_travel_time > 0
        assert cnt.average_travel_time == pytest.approx(
            ref.average_travel_time, rel=1.0
        )
        # Unavailable per-vehicle extreme is reported as 0 and the mode
        # flag warns the consumer.
        assert cnt.max_queuing_time == 0.0
        assert "Little's-law" in str(cnt)