"""Stability verdicts: cell grouping, edge cases, frontier, determinism."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.stability import (
    STATUS_BREAKDOWN,
    STATUS_INSUFFICIENT,
    STATUS_STABLE,
    AnalysisOptions,
    StabilityVerdict,
    analyze_records,
    breakdown_frontier,
    queue_total_series,
    render_verdicts,
    verdict_rows,
)
from repro.metrics.traces import QueueTrace

N_SAMPLES = 200
DT = 5.0


class FakeSummary:
    def __init__(self, delay_mode="aggregate"):
        self.delay_mode = delay_mode


class FakeResult:
    """Traces + summary: all the analyzer reads from a run result."""

    def __init__(self, queue_traces, delay_mode="aggregate"):
        self.queue_traces = queue_traces
        self.summary = FakeSummary(delay_mode)


class FakeSpec:
    """The spec axes the analyzer groups on."""

    def __init__(
        self,
        pattern="steady-3x3",
        controller="util-bp",
        controller_params=(),
        engine="meso-counts",
        scenario_params=(),
        seed=1,
    ):
        self.pattern = pattern
        self.controller = controller
        self.controller_params = controller_params
        self.engine = engine
        self.scenario_params = scenario_params
        self.seed = seed


def make_traces(values_per_road):
    """Queue traces on the shared 5 s grid from per-road value lists."""
    traces = {}
    for road, values in enumerate(values_per_road):
        trace = QueueTrace(road_id=f"IN:{road}")
        for i, value in enumerate(values):
            trace.sample(float(i) * DT, int(value))
        traces[(f"J{road}", f"IN:{road}")] = trace
    return traces


def breakdown_traces(seed, n_roads=3, shift_at=120, magnitude=15):
    """Per-road noisy queues that jump up at ``shift_at`` samples."""
    rng = np.random.default_rng(seed)
    roads = []
    for _ in range(n_roads):
        base = rng.integers(0, 4, size=N_SAMPLES)
        base[shift_at:] += magnitude
        roads.append(base.tolist())
    return make_traces(roads)


def stable_traces(seed, n_roads=3):
    rng = np.random.default_rng(seed)
    return make_traces(
        [rng.integers(0, 4, size=N_SAMPLES).tolist() for _ in range(n_roads)]
    )


class TestQueueTotalSeries:
    def test_sums_across_roads(self):
        traces = make_traces([[1, 2, 3], [10, 10, 10]])
        total = queue_total_series(FakeResult(traces))
        assert total.values == [11.0, 12.0, 13.0]
        assert total.times == [0.0, DT, 2 * DT]

    def test_ragged_traces_truncate_to_shortest(self):
        traces = make_traces([[1, 2, 3, 4], [5, 6]])
        total = queue_total_series(FakeResult(traces))
        assert total.values == [6.0, 8.0]

    def test_no_traces_is_none(self):
        assert queue_total_series(FakeResult({})) is None
        assert queue_total_series(FakeResult(None)) is None

    def test_empty_traces_is_none(self):
        trace = QueueTrace(road_id="IN:0")
        assert queue_total_series(FakeResult({("J", "IN:0"): trace})) is None


class TestEdgeCases:
    """The analyzer must classify, never raise, on degenerate stores."""

    def test_constant_series_is_stable(self):
        records = [
            (FakeSpec(seed=s), FakeResult(make_traces([[5] * N_SAMPLES])))
            for s in (1, 2)
        ]
        [verdict] = analyze_records(records)
        assert verdict.status == STATUS_STABLE
        assert verdict.n_analyzed == 2
        assert verdict.onset is None

    def test_all_zero_traces_are_stable(self):
        records = [
            (
                FakeSpec(seed=1),
                FakeResult(make_traces([[0] * N_SAMPLES, [0] * N_SAMPLES])),
            )
        ]
        [verdict] = analyze_records(records)
        assert verdict.status == STATUS_STABLE

    def test_short_series_is_insufficient(self):
        records = [(FakeSpec(seed=1), FakeResult(make_traces([[1, 2, 3]])))]
        [verdict] = analyze_records(records)
        assert verdict.status == STATUS_INSUFFICIENT
        assert verdict.n_analyzed == 0
        assert verdict.label() == "insufficient-data"

    def test_missing_traces_are_insufficient(self):
        records = [(FakeSpec(seed=1), FakeResult({}))]
        [verdict] = analyze_records(records)
        assert verdict.status == STATUS_INSUFFICIENT

    def test_aggregate_delay_mode_passes_through(self):
        records = [
            (FakeSpec(seed=1), FakeResult(stable_traces(1), "aggregate"))
        ]
        [verdict] = analyze_records(records)
        assert verdict.delay_mode == "aggregate"
        assert verdict.status == STATUS_STABLE

    def test_empty_input_is_empty_output(self):
        assert analyze_records([]) == []


class TestVerdicts:
    def test_breakdown_with_onset_and_interval(self):
        records = [
            (FakeSpec(seed=s), FakeResult(breakdown_traces(s)))
            for s in (1, 2, 3)
        ]
        [verdict] = analyze_records(records)
        assert verdict.status == STATUS_BREAKDOWN
        assert verdict.n_flagged == 3
        # Onset near sample 120 on the 5 s grid, CI bracketing it.
        assert 500.0 <= verdict.onset <= 700.0
        assert verdict.onset_lo <= verdict.onset <= verdict.onset_hi
        assert verdict.mean_shift > 30.0
        assert verdict.label().startswith("breakdown@")
        assert "[" in verdict.label()

    def test_effect_size_floor_downgrades_small_shifts(self):
        # A clear but tiny shift: significant, yet under the floor of
        # min_shift_per_series x n_series vehicles.
        records = [
            (
                FakeSpec(seed=s),
                FakeResult(breakdown_traces(s, n_roads=3, magnitude=1)),
            )
            for s in (1, 2)
        ]
        [verdict] = analyze_records(
            records, AnalysisOptions(min_shift_per_series=5.0)
        )
        assert verdict.status == STATUS_STABLE

    def test_majority_rule(self):
        # 1 of 2 analyzed flagged: not a strict majority -> stable.
        records = [
            (FakeSpec(seed=1), FakeResult(breakdown_traces(1))),
            (FakeSpec(seed=2), FakeResult(stable_traces(2))),
        ]
        [verdict] = analyze_records(records)
        assert verdict.status == STATUS_STABLE
        assert (verdict.n_flagged, verdict.n_analyzed) == (1, 2)

    def test_cells_group_and_sort_by_axes(self):
        records = [
            (FakeSpec(pattern="b", seed=1), FakeResult(stable_traces(1))),
            (FakeSpec(pattern="a", seed=1), FakeResult(stable_traces(2))),
            (FakeSpec(pattern="b", seed=2), FakeResult(stable_traces(3))),
        ]
        verdicts = analyze_records(records)
        assert [v.pattern for v in verdicts] == ["a", "b"]
        assert [v.n_runs for v in verdicts] == [1, 2]

    def test_load_splits_cells(self):
        records = [
            (
                FakeSpec(scenario_params=(("load", load),), seed=1),
                FakeResult(stable_traces(1)),
            )
            for load in (0.8, 1.6)
        ]
        verdicts = analyze_records(records)
        assert [v.load for v in verdicts] == [0.8, 1.6]

    def test_rows_schema_and_render(self):
        records = [(FakeSpec(seed=1), FakeResult(breakdown_traces(1)))]
        verdicts = analyze_records(records)
        [row] = verdict_rows(verdicts)
        assert set(row) == {
            "pattern",
            "controller",
            "controller_params",
            "engine",
            "delay_mode",
            "load",
            "status",
            "verdict",
            "n_runs",
            "n_analyzed",
            "n_flagged",
            "onset",
            "onset_lo",
            "onset_hi",
            "mean_shift",
        }
        json.dumps(row)  # plain-JSON payload, no numpy scalars
        table = render_verdicts(verdicts)
        assert "breakdown@" in table
        assert "workload" in table

    def test_byte_deterministic_across_analyses(self):
        records = [
            (FakeSpec(seed=s), FakeResult(breakdown_traces(s)))
            for s in (1, 2)
        ]
        first = json.dumps(verdict_rows(analyze_records(records)))
        second = json.dumps(verdict_rows(analyze_records(records)))
        assert first == second


class TestOptions:
    def test_defaults_are_valid(self):
        AnalysisOptions()

    def test_validation(self):
        with pytest.raises(ValueError, match="warmup_fraction"):
            AnalysisOptions(warmup_fraction=1.0)
        with pytest.raises(ValueError, match="min_points"):
            AnalysisOptions(min_points=1)
        with pytest.raises(ValueError, match="min_shift_per_series"):
            AnalysisOptions(min_shift_per_series=-0.1)

    def test_warmup_discard_can_hide_an_early_shift(self):
        # Shift inside the warm-up window: discarded, hence stable.
        records = [
            (
                FakeSpec(seed=1),
                FakeResult(breakdown_traces(1, shift_at=20)),
            )
        ]
        [early] = analyze_records(
            records, AnalysisOptions(warmup_fraction=0.5)
        )
        assert early.status == STATUS_STABLE


class TestFrontier:
    def _verdict(self, load, status, controller="util-bp"):
        return StabilityVerdict(
            pattern="steady-3x3",
            controller=controller,
            controller_params="-",
            engine="meso-counts",
            delay_mode="aggregate",
            load=load,
            status=status,
            n_runs=2,
            n_analyzed=2,
            n_flagged=2 if status == STATUS_BREAKDOWN else 0,
        )

    def test_frontier_brackets_the_crossing(self):
        verdicts = [
            self._verdict(0.8, STATUS_STABLE),
            self._verdict(1.2, STATUS_STABLE),
            self._verdict(1.6, STATUS_BREAKDOWN),
        ]
        [row] = breakdown_frontier(verdicts)
        assert row["max_stable_load"] == 1.2
        assert row["min_breakdown_load"] == 1.6

    def test_uncrossed_frontier_has_none_side(self):
        [row] = breakdown_frontier([self._verdict(0.8, STATUS_STABLE)])
        assert row["max_stable_load"] == 0.8
        assert row["min_breakdown_load"] is None

    def test_loadless_and_insufficient_cells_ignored(self):
        verdicts = [
            self._verdict(None, STATUS_STABLE),
            self._verdict(1.0, STATUS_INSUFFICIENT),
        ]
        assert breakdown_frontier(verdicts) == []

    def test_controllers_split_rows(self):
        verdicts = [
            self._verdict(1.6, STATUS_BREAKDOWN, controller="cap-bp"),
            self._verdict(1.6, STATUS_STABLE, controller="util-bp"),
        ]
        rows = breakdown_frontier(verdicts)
        assert [row["controller"] for row in rows] == ["cap-bp", "util-bp"]
