"""Tests for repro.control.base — the fixed-slot driver and fan-out."""

import pytest

from repro.control.base import (
    TRANSITION,
    FixedSlotController,
    NetworkController,
)
from tests.conftest import make_observation


class ScriptedController(FixedSlotController):
    """Fixed-slot controller whose selections are scripted."""

    def __init__(self, intersection, period, selections, transition_duration=4.0):
        super().__init__(intersection, period, transition_duration)
        self.selections = list(selections)
        self.calls = 0

    def select_phase(self, obs):
        self.calls += 1
        return self.selections.pop(0)


class TestFixedSlotDriver:
    def test_first_decision_starts_immediately(self, intersection):
        ctrl = ScriptedController(intersection, period=10, selections=[1])
        obs = make_observation(intersection, time=0.0)
        assert ctrl.decide(obs) == 1

    def test_phase_held_for_period(self, intersection):
        ctrl = ScriptedController(intersection, period=10, selections=[1, 1])
        for t in range(10):
            obs = make_observation(intersection, time=float(t))
            assert ctrl.decide(obs) == 1
        assert ctrl.calls == 1  # no re-selection mid-slot

    def test_reselection_at_slot_boundary(self, intersection):
        ctrl = ScriptedController(intersection, period=5, selections=[1, 1, 1])
        for t in range(11):
            ctrl.decide(make_observation(intersection, time=float(t)))
        assert ctrl.calls == 3  # selections at t = 0, 5, 10

    def test_phase_change_inserts_amber(self, intersection):
        ctrl = ScriptedController(intersection, period=5, selections=[1, 3])
        decisions = [
            ctrl.decide(make_observation(intersection, time=float(t)))
            for t in range(12)
        ]
        assert decisions[:5] == [1] * 5
        assert decisions[5:9] == [TRANSITION] * 4  # 4 s amber
        assert decisions[9] == 3

    def test_same_phase_extends_without_amber(self, intersection):
        ctrl = ScriptedController(intersection, period=5, selections=[1, 1, 1])
        decisions = [
            ctrl.decide(make_observation(intersection, time=float(t)))
            for t in range(15)
        ]
        assert TRANSITION not in decisions

    def test_slot_restarts_after_amber(self, intersection):
        ctrl = ScriptedController(intersection, period=5, selections=[1, 3, 3])
        decisions = [
            ctrl.decide(make_observation(intersection, time=float(t)))
            for t in range(14)
        ]
        # Phase 3 runs t=9..13 inclusive (its own full slot).
        assert decisions[9:14] == [3] * 5

    def test_select_phase_may_not_return_transition(self, intersection):
        ctrl = ScriptedController(intersection, period=5, selections=[TRANSITION])
        with pytest.raises(ValueError):
            ctrl.decide(make_observation(intersection, time=0.0))

    def test_unknown_phase_rejected(self, intersection):
        ctrl = ScriptedController(intersection, period=5, selections=[42])
        with pytest.raises(KeyError):
            ctrl.decide(make_observation(intersection, time=0.0))

    def test_reset(self, intersection):
        ctrl = ScriptedController(intersection, period=5, selections=[1, 3])
        ctrl.decide(make_observation(intersection, time=0.0))
        ctrl.reset()
        assert ctrl.current_phase == TRANSITION

    def test_bad_period_rejected(self, intersection):
        with pytest.raises(ValueError):
            ScriptedController(intersection, period=0, selections=[])


class TestNetworkController:
    def test_fans_out(self, grid3x3):
        controllers = {
            node_id: ScriptedController(inter, period=5, selections=[1] * 10)
            for node_id, inter in grid3x3.intersections.items()
        }
        net_ctrl = NetworkController(controllers)
        observations = {
            node_id: make_observation(inter)
            for node_id, inter in grid3x3.intersections.items()
        }
        decisions = net_ctrl.decide(observations)
        assert set(decisions) == set(grid3x3.intersections)
        assert all(d == 1 for d in decisions.values())

    def test_missing_controller_raises(self, grid3x3, intersection):
        net_ctrl = NetworkController(
            {"J00": ScriptedController(
                grid3x3.intersections["J00"], period=5, selections=[1]
            )}
        )
        observations = {"J99": make_observation(intersection)}
        with pytest.raises(KeyError):
            net_ctrl.decide(observations)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NetworkController({})
