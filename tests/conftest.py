"""Shared fixtures: a single-intersection network and observation builders."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import pytest

from repro.model.grid import build_grid_network
from repro.model.queues import QueueObservation


@pytest.fixture
def single_network():
    """A 1x1 grid: one Fig.-1 intersection, all roads boundary roads."""
    return build_grid_network(1, 1)


@pytest.fixture
def intersection(single_network):
    """The single intersection of the 1x1 grid."""
    return single_network.intersections["J00"]


@pytest.fixture
def grid3x3():
    """The paper's 3x3 evaluation network."""
    return build_grid_network(3, 3)


def make_observation(
    intersection,
    time: float = 0.0,
    movement_queues: Optional[Dict[Tuple[str, str], int]] = None,
    out_queues: Optional[Dict[str, int]] = None,
) -> QueueObservation:
    """Build a ``Q(k)`` for an intersection with sparse overrides.

    Unspecified movement queues default to 0; unspecified outgoing
    queues default to 0; capacities come from the intersection's roads.
    """
    queues = {key: 0 for key in intersection.movements}
    if movement_queues:
        for key, value in movement_queues.items():
            if key not in queues:
                raise KeyError(f"unknown movement {key}")
            queues[key] = value
    outs = {road_id: 0 for road_id in intersection.out_roads}
    if out_queues:
        for road_id, value in out_queues.items():
            if road_id not in outs:
                raise KeyError(f"unknown outgoing road {road_id}")
            outs[road_id] = value
    capacities = {
        road_id: road.capacity
        for road_id, road in intersection.out_roads.items()
    }
    return QueueObservation(
        time=time,
        movement_queues=queues,
        out_queues=outs,
        out_capacities=capacities,
    )


@pytest.fixture
def observe():
    """The :func:`make_observation` helper as a fixture."""
    return make_observation
