"""Engine-contract conformance suite (repro.core.engine).

One parametrized set of checks run against every registered backend:
the protocol surface, observation shape, determinism under a fixed
seed, and finalize idempotence.  A new engine passes this suite or it
is not an engine.
"""

import pytest

from repro.core.engine import (
    ENGINE_NAMES,
    SimulationEngine,
    build_engine,
    engine_names,
    provider_module,
    register_engine,
)
from repro.experiments.runner import run_scenario
from repro.scenarios.core import build_scenario
from repro.model.phases import TRANSITION_PHASE_INDEX

ENGINES = ("meso", "meso-counts", "meso-events", "meso-vec", "micro")

#: Short horizons keep the micro engine affordable in CI.
HORIZON = {
    "meso": 90.0,
    "meso-counts": 90.0,
    "meso-events": 90.0,
    "meso-vec": 90.0,
    "micro": 30.0,
}


def _make(engine: str):
    return build_engine(build_scenario("I", seed=7), engine)


def _drive(sim, steps: int, phase: int = 1) -> None:
    decisions = {node_id: phase for node_id in sim.network.intersections}
    for _ in range(steps):
        sim.step(1.0, decisions)


class TestRegistry:
    def test_builtin_names_exposed(self):
        assert ENGINE_NAMES == (
            "meso",
            "meso-counts",
            "meso-events",
            "meso-vec",
            "micro",
        )
        for name in ENGINE_NAMES:
            assert name in engine_names()

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            build_engine(build_scenario("I"), "warp-drive")

    def test_provider_module(self):
        assert provider_module("meso") == "repro.meso.simulator"
        assert provider_module("meso-counts") == "repro.meso.counts"
        assert provider_module("meso-events") == "repro.meso.events"
        assert provider_module("meso-vec") == "repro.meso.vectorized"
        assert provider_module("micro") == "repro.micro.simulator"
        assert provider_module("nonexistent") is None

        def builder(scenario):  # registered from this test module
            return build_engine(scenario, "meso")

        register_engine("test-provider", builder)
        try:
            assert provider_module("test-provider") == builder.__module__
        finally:
            from repro.core.engine import _ENGINE_BUILDERS

            _ENGINE_BUILDERS.pop("test-provider", None)

    def test_custom_registration(self):
        calls = []

        def builder(scenario):
            calls.append(scenario.name)
            return build_engine(scenario, "meso")

        register_engine("test-custom", builder)
        try:
            sim = build_engine(build_scenario("I", seed=3), "test-custom")
            assert calls and isinstance(sim, SimulationEngine)
            assert "test-custom" in engine_names()
        finally:
            from repro.core.engine import _ENGINE_BUILDERS

            _ENGINE_BUILDERS.pop("test-custom", None)


class TestBatchRegistry:
    def test_batch_engine_registered(self):
        from repro.core.engine import (
            BatchEngine,
            batch_engine_names,
            batch_provider_module,
            build_batch_engine,
            has_batch_engine,
        )

        assert has_batch_engine("meso-vec")
        assert not has_batch_engine("meso")
        assert "meso-vec" in batch_engine_names()
        assert batch_provider_module("meso-vec") == "repro.meso.vectorized"
        scenarios = [build_scenario("I", seed=s) for s in (1, 2, 3)]
        sim = build_batch_engine(scenarios, "meso-vec")
        assert isinstance(sim, BatchEngine)
        assert sim.batch_size == 3
        assert sim.seeds == (1, 2, 3)

    def test_unknown_batch_engine_raises(self):
        from repro.core.engine import build_batch_engine

        with pytest.raises(ValueError, match="unknown batch engine"):
            build_batch_engine([build_scenario("I")], "meso")

    def test_empty_batch_rejected(self):
        from repro.core.engine import build_batch_engine

        with pytest.raises(ValueError, match="at least one"):
            build_batch_engine([], "meso-vec")


@pytest.mark.parametrize("engine", ENGINES)
class TestEngineContract:
    def test_satisfies_protocol(self, engine):
        sim = _make(engine)
        assert isinstance(sim, SimulationEngine)
        assert sim.time == 0.0
        assert sim.vehicles_in_network() == 0
        assert sim.backlog_size() == 0

    def test_observation_shape(self, engine):
        sim = _make(engine)
        _drive(sim, 5)
        observations = sim.observations()
        network = sim.network
        assert set(observations) == set(network.intersections)
        for node_id, observation in observations.items():
            intersection = network.intersections[node_id]
            assert observation.time == sim.time
            assert set(observation.movement_queues) == set(
                intersection.movements
            )
            assert set(observation.out_queues) == set(intersection.out_roads)
            assert set(observation.out_capacities) == set(
                intersection.out_roads
            )
            assert all(q >= 0 for q in observation.movement_queues.values())

    def test_determinism_under_fixed_seed(self, engine):
        results = [
            run_scenario(
                build_scenario("I", seed=11),
                controller="util-bp",
                duration=HORIZON[engine],
                engine=engine,
                record_phases=("J00",),
                record_queues=(("J00", "IN:N@J00"),),
            )
            for _ in range(2)
        ]
        assert results[0].summary == results[1].summary
        assert results[0].phase_traces == results[1].phase_traces
        assert results[0].queue_traces == results[1].queue_traces
        assert results[0].utilization == results[1].utilization
        assert (
            results[0].vehicles_in_network == results[1].vehicles_in_network
        )

    def test_finalize_idempotent(self, engine):
        sim = _make(engine)
        _drive(sim, int(HORIZON[engine]))
        sim.finalize()
        first = sim.collector.summary(HORIZON[engine])
        sim.finalize()  # must be a no-op
        assert sim.collector.summary(HORIZON[engine]) == first

    def test_step_after_finalize_rejected(self, engine):
        sim = _make(engine)
        _drive(sim, 3)
        sim.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            sim.step(1.0, {})

    def test_amber_serves_nothing(self, engine):
        sim = _make(engine)
        decisions = {
            node_id: TRANSITION_PHASE_INDEX
            for node_id in sim.network.intersections
        }
        for _ in range(20):
            sim.step(1.0, decisions)
        assert sim.collector.vehicles_left == 0
        assert all(
            tracker.green_time == 0.0 for tracker in sim.utilization.values()
        )
