"""The SQLite result store: round trips, resume, migration, isolation."""

import json
import sqlite3

import pytest

from repro.experiments.runner import RunResult, run_scenario
from repro.scenarios.core import build_scenario
from repro.orchestration import ExperimentPool, RunSpec, SweepGrid
from repro.orchestration.spec import SPEC_SCHEMA_VERSION
from repro.results import STORE_FILENAME, ResultStore

#: A cheap cell reused across tests (90 s meso run).
QUICK = dict(pattern="I", controller="util-bp", engine="meso", duration=90.0)


def quick_result(seed: int = 1) -> RunResult:
    return run_scenario(
        build_scenario("I", seed=seed),
        controller="util-bp",
        duration=90.0,
        engine="meso",
    )


class TestStoreCore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        spec = RunSpec(**QUICK)
        result = quick_result()
        store.put(spec, result)
        assert store.contains(spec)
        assert store.get(spec) == result
        assert len(store) == 1

    def test_get_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        assert store.get(RunSpec(**QUICK)) is None
        assert not store.contains(RunSpec(**QUICK))

    def test_put_accepts_payload_dicts(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        spec = RunSpec(**QUICK)
        result = quick_result()
        store.put(spec, result.to_dict())
        assert store.get(spec) == result

    def test_put_overwrites(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        spec = RunSpec(**QUICK)
        store.put(spec, quick_result(seed=1))
        newer = quick_result(seed=2)  # different numbers, same cell key
        store.put(spec, newer)
        assert store.get(spec) == newer
        assert len(store) == 1

    def test_persists_across_opens(self, tmp_path):
        spec = RunSpec(**QUICK)
        result = quick_result()
        ResultStore(tmp_path / "s.sqlite").put(spec, result)
        reopened = ResultStore(tmp_path / "s.sqlite")
        assert reopened.get(spec) == result

    def test_traces_roundtrip_through_store(self, tmp_path):
        spec = RunSpec(
            **{**QUICK, "record_phases": ("J00",)},
            record_queues=(("J00", "IN:N@J00"),),
        )
        result = spec.execute()
        store = ResultStore(tmp_path / "s.sqlite")
        store.put(spec, result)
        rebuilt = store.get(spec)
        assert rebuilt == result
        assert rebuilt.phase_traces.keys() == {"J00"}

    def test_stale_spec_version_not_served(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        spec = RunSpec(**QUICK)
        store.put(spec, quick_result())
        with sqlite3.connect(tmp_path / "s.sqlite") as conn:
            conn.execute("UPDATE results SET spec_version = spec_version - 1")
        assert store.get(spec) is None
        assert not store.contains(spec)
        assert len(store) == 0

    def test_memory_store(self):
        store = ResultStore(":memory:")
        spec = RunSpec(**QUICK)
        store.put(spec, quick_result())
        assert store.contains(spec)


class TestStoreQuery:
    def _fill(self, store):
        for seed in (1, 2):
            for engine in ("meso", "meso-counts"):
                spec = RunSpec(**{**QUICK, "seed": seed, "engine": engine})
                store.put(spec, spec.execute())

    def test_query_filters_on_axes(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        self._fill(store)
        assert len(store.query()) == 4
        assert len(store.query(engine="meso")) == 2
        assert len(store.query(seed=1)) == 2
        only = store.query(engine="meso-counts", seed=2)
        assert len(only) == 1
        assert only[0].spec.engine == "meso-counts"
        assert only[0].summary.delay_mode == "aggregate"

    def test_query_on_delay_mode(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        self._fill(store)
        aggregate_rows = store.query(delay_mode="aggregate")
        assert len(aggregate_rows) == 2
        assert all(
            record.spec.engine == "meso-counts" for record in aggregate_rows
        )

    def test_query_duration_filter(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        spec = RunSpec(**QUICK)
        store.put(spec, quick_result())
        assert len(store.query(duration=90.0)) == 1
        assert len(store.query(duration=120.0)) == 0

    def test_find_by_hash_prefix(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        spec = RunSpec(**QUICK)
        store.put(spec, quick_result())
        matches = store.find(spec.spec_hash()[:10])
        assert len(matches) == 1
        assert matches[0].spec == spec

    def test_overview_and_export(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        self._fill(store)
        overview = store.overview()
        assert {entry["engine"] for entry in overview} == {
            "meso",
            "meso-counts",
        }
        assert all(entry["cells"] == 2 for entry in overview)
        rows = store.export_rows()
        assert len(rows) == 4
        assert {"spec_hash", "pattern", "average_queuing_time"} <= set(rows[0])

    def test_export_keeps_duration_axis_and_horizon_separate(self, tmp_path):
        """The spec's duration axis (None = scenario default) must not
        be shadowed by the summary's resolved horizon."""
        store = ResultStore(tmp_path / "s.sqlite")
        explicit = RunSpec(**QUICK)  # duration=90.0
        store.put(explicit, quick_result())
        default_horizon = RunSpec(
            pattern="steady-3x3", scenario_params={"duration": 60.0}
        )  # spec duration None, scenario default horizon
        store.put(default_horizon, default_horizon.execute())
        by_pattern = {row["pattern"]: row for row in store.export_rows()}
        assert by_pattern["I"]["duration"] == 90.0
        assert by_pattern["I"]["horizon"] == 90.0
        assert by_pattern["steady-3x3"]["duration"] is None
        assert by_pattern["steady-3x3"]["horizon"] == 60.0

    def test_undecodable_row_skipped_not_fatal(self, tmp_path):
        """One row whose spec no longer constructs must not make the
        whole store unreadable (query/find/export all degrade to
        omission, like get() treats it as a miss)."""
        store = ResultStore(tmp_path / "s.sqlite")
        good = RunSpec(**QUICK)
        store.put(good, quick_result())
        bad = RunSpec(**{**QUICK, "seed": 2})
        store.put(bad, quick_result(seed=2))
        # Corrupt the stored spec so from_dict raises (e.g. a builder
        # param a later release dropped): rewrite its engine in place.
        with sqlite3.connect(tmp_path / "s.sqlite") as conn:
            conn.execute(
                "UPDATE results SET spec_json = ? WHERE spec_hash = ?",
                (
                    json.dumps(
                        {**bad.to_dict(), "engine": "gone-engine"},
                        sort_keys=True,
                    ),
                    bad.spec_hash(),
                ),
            )
        assert [record.spec for record in store.query()] == [good]
        assert len(store.find(bad.spec_hash()[:8])) == 0
        assert len(store.export_rows()) == 2  # export needs no RunSpec


class TestResume:
    def _grid(self):
        return SweepGrid(
            patterns=("I", "II"),
            controllers=["util-bp", ("cap-bp", {"period": 18.0})],
            durations=(90.0,),
        ).specs()

    def test_killed_sweep_resumes_with_only_missing_cells(self, tmp_path):
        """A partial store (as a kill mid-sweep leaves) must resume by
        computing only the missing cells — verified by PoolStats."""
        specs = self._grid()
        # Simulate the kill: only half the sweep made it into the store.
        interrupted = ExperimentPool(store=tmp_path / "s.sqlite")
        interrupted.run(specs[: len(specs) // 2])
        assert interrupted.stats.executed == len(specs) // 2

        resumed = ExperimentPool(store=tmp_path / "s.sqlite")
        results = resumed.run(specs)
        assert resumed.stats.cache_hits == len(specs) // 2
        assert resumed.stats.executed == len(specs) - len(specs) // 2
        assert len(results) == len(specs)

        # Third pass: everything is served, nothing executes.
        warm = ExperimentPool(store=tmp_path / "s.sqlite")
        assert warm.run(specs) == results
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(specs)

    def test_parallel_failure_keeps_completed_cells(self, tmp_path):
        """An erroring parallel sweep still commits finished cells."""
        good = [RunSpec(**QUICK), RunSpec(**{**QUICK, "seed": 9})]
        bad = RunSpec(**{**QUICK, "controller": "cap-bp"})  # missing period
        pool = ExperimentPool(workers=2, store=tmp_path / "s.sqlite")
        with pytest.raises(TypeError, match="period"):
            pool.run([good[0], bad, good[1]])

        resumed = ExperimentPool(workers=2, store=tmp_path / "s.sqlite")
        resumed.run(good)
        assert resumed.stats.executed == 0
        assert resumed.stats.cache_hits == len(good)

    def test_engine_isolation_meso_counts_never_served_meso(self, tmp_path):
        """A stored ``meso`` result must never satisfy a ``meso-counts``
        spec (or vice versa): the engines report different metric modes,
        so serving one for the other would silently mislabel results.
        (Ported from the JSON-cache regression test.)"""
        meso_spec = RunSpec(**QUICK)
        counts_spec = RunSpec(**{**QUICK, "engine": "meso-counts"})
        pool = ExperimentPool(store=tmp_path / "s.sqlite")
        meso_result = pool.run_one(meso_spec)
        counts_result = pool.run_one(counts_spec)
        assert pool.stats.executed == 2  # second run was NOT a store hit
        assert pool.stats.cache_hits == 0
        assert meso_result.summary.delay_mode == "per-vehicle"
        assert counts_result.summary.delay_mode == "aggregate"
        # Same seed, same dynamics: the trajectories agree even though
        # the store rightly keeps the cells separate.
        assert (
            counts_result.summary.vehicles_left
            == meso_result.summary.vehicles_left
        )
        # Warm re-reads resolve each spec to its own entry.
        warm = ExperimentPool(store=tmp_path / "s.sqlite")
        assert warm.run_one(meso_spec).summary.delay_mode == "per-vehicle"
        assert warm.run_one(counts_spec).summary.delay_mode == "aggregate"
        assert warm.stats.cache_hits == 2
        assert warm.stats.executed == 0


def write_legacy_entry(directory, spec, result) -> None:
    """One per-spec JSON blob exactly as the old pool cache wrote it."""
    entry = {
        "version": SPEC_SCHEMA_VERSION,
        "spec": spec.to_dict(),
        "result": result.to_dict(),
    }
    (directory / f"{spec.spec_hash()}.json").write_text(
        json.dumps(entry), encoding="utf-8"
    )


class TestJsonMigration:
    def test_legacy_dir_imported_on_first_open(self, tmp_path):
        spec = RunSpec(**QUICK)
        result = quick_result()
        write_legacy_entry(tmp_path, spec, result)

        store = ResultStore.at_directory(tmp_path)
        assert store.imported == 1
        assert store.get(spec) == result

    def test_pool_cache_dir_serves_imported_entries(self, tmp_path):
        """``cache_dir`` still works during its deprecation window."""
        spec = RunSpec(**QUICK)
        write_legacy_entry(tmp_path, spec, quick_result())
        with pytest.warns(DeprecationWarning, match="cache_dir"):
            pool = ExperimentPool(cache_dir=tmp_path)
        pool.run_one(spec)
        assert pool.stats.cache_hits == 1
        assert pool.stats.executed == 0

    def test_import_happens_once_and_dir_never_consulted_again(self, tmp_path):
        spec = RunSpec(**QUICK)
        result = quick_result()
        write_legacy_entry(tmp_path, spec, result)
        first = ResultStore.at_directory(tmp_path)
        assert first.imported == 1
        first.close()

        # Corrupt the legacy file AND drop a brand-new legacy entry:
        # neither may matter — the directory is never read again.
        for path in tmp_path.glob("*.json"):
            path.write_text("{corrupt", encoding="utf-8")
        other_spec = RunSpec(**{**QUICK, "seed": 7})
        write_legacy_entry(tmp_path, other_spec, quick_result(seed=7))

        second = ResultStore.at_directory(tmp_path)
        assert second.imported == 0
        assert second.get(spec) == result  # from the store, not the file
        assert not second.contains(other_spec)  # file ignored post-import

    def test_legacy_cache_copied_in_after_first_open_still_imports(
        self, tmp_path
    ):
        """Opening a store over a still-empty directory must not burn
        the one-time import: a legacy cache moved in afterwards (set
        up the store location first, migrate the files second) is
        imported on the next open."""
        fresh = ResultStore.at_directory(tmp_path)
        assert fresh.imported == 0
        fresh.close()
        spec = RunSpec(**QUICK)
        result = quick_result()
        write_legacy_entry(tmp_path, spec, result)
        later = ResultStore.at_directory(tmp_path)
        assert later.imported == 1
        assert later.get(spec) == result

    def test_store_entry_wins_over_legacy_file(self, tmp_path):
        spec = RunSpec(**QUICK)
        stored = quick_result(seed=1)
        store = ResultStore.at_directory(tmp_path)
        store.put(spec, stored)
        store.close()
        write_legacy_entry(tmp_path, spec, quick_result(seed=2))
        again = ResultStore.at_directory(tmp_path)
        assert again.get(spec) == stored

    def test_unreadable_legacy_entries_skipped(self, tmp_path):
        (tmp_path / "garbage.json").write_text("{not json", encoding="utf-8")
        (tmp_path / "wrong-schema.json").write_text(
            json.dumps({"version": -1, "spec": {}, "result": {}}),
            encoding="utf-8",
        )
        store = ResultStore.at_directory(tmp_path)
        assert store.imported == 0
        assert len(store) == 0

    def test_store_file_named_results_sqlite(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="cache_dir"):
            pool = ExperimentPool(cache_dir=tmp_path)
        pool.run_one(RunSpec(**QUICK))
        assert (tmp_path / STORE_FILENAME).is_file()
