"""Tests for repro.model.phases."""

import pytest

from repro.model.geometry import Direction, TurnType
from repro.model.movements import Movement
from repro.model.phases import TRANSITION_PHASE_INDEX, Phase


def movement(in_road="a", out_road="b", approach=Direction.N, turn=TurnType.LEFT):
    return Movement(in_road, out_road, approach, turn)


class TestPhase:
    def test_name(self):
        assert Phase(index=2, movements=(movement(),)).name == "c2"

    def test_transition_index_reserved(self):
        assert TRANSITION_PHASE_INDEX == 0
        with pytest.raises(ValueError):
            Phase(index=0, movements=(movement(),))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Phase(index=-1, movements=(movement(),))

    def test_empty_phase_rejected(self):
        with pytest.raises(ValueError):
            Phase(index=1, movements=())

    def test_duplicate_movement_rejected(self):
        with pytest.raises(ValueError):
            Phase(index=1, movements=(movement(), movement()))

    def test_serves(self):
        phase = Phase(index=1, movements=(movement("a", "b"),))
        assert phase.serves("a", "b")
        assert not phase.serves("a", "c")

    def test_len_and_iter(self):
        moves = (movement("a", "b"), movement("a", "c", turn=TurnType.STRAIGHT))
        phase = Phase(index=1, movements=moves)
        assert len(phase) == 2
        assert tuple(phase) == moves
