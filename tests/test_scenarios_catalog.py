"""The scenario catalog: registration, determinism, spec round-trips,
and 50-step closed-loop runs on both engines for every entry."""

import pytest

from repro.experiments.runner import run_scenario
from repro.orchestration import RunSpec
from repro.scenarios import (
    Scenario,
    build_named_scenario,
    catalog_entries,
    family_names,
    is_scenario_name,
    scenario_names,
)

ALL_SCENARIOS = scenario_names()


def _demand_segments(scenario):
    return {
        road: schedule.segments for road, schedule in scenario.demand.items()
    }


class TestCatalog:
    def test_catalog_size(self):
        assert len(ALL_SCENARIOS) >= 8

    def test_entries_cover_required_families(self):
        families = set(family_names())
        assert {
            "steady", "tidal", "surge", "incident", "asymmetric"
        } <= families

    def test_entries_have_descriptions(self):
        for entry in catalog_entries():
            assert entry.description
            assert entry.grid.count("x") == 1

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_every_entry_builds(self, name):
        scenario = build_named_scenario(name, seed=7)
        assert isinstance(scenario, Scenario)
        assert scenario.name == name
        assert scenario.seed == 7
        assert scenario.default_duration > 0
        assert set(scenario.demand) <= set(scenario.network.entry_roads())
        assert scenario.demand  # at least one fed entry

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_build_is_deterministic(self, name):
        a = build_named_scenario(name, seed=5)
        b = build_named_scenario(name, seed=5)
        assert _demand_segments(a) == _demand_segments(b)
        assert set(a.network.roads) == set(b.network.roads)
        assert {
            r: road.capacity for r, road in a.network.roads.items()
        } == {r: road.capacity for r, road in b.network.roads.items()}
        assert a.turning == b.turning

    def test_unknown_name_rejected(self):
        assert not is_scenario_name("rush-hour-spiral")
        with pytest.raises(ValueError, match="unknown scenario"):
            build_named_scenario("rush-hour-spiral")

    def test_dynamic_grid_resolution(self):
        assert is_scenario_name("steady-2x5")
        scenario = build_named_scenario("steady-2x5", seed=1)
        assert len(scenario.network.intersections) == 10
        assert scenario.name == "steady-2x5"

    def test_zero_dimension_grids_rejected_eagerly(self):
        assert not is_scenario_name("steady-0x3")
        assert not is_scenario_name("steady-3x0")
        with pytest.raises(ValueError, match="unknown scenario"):
            build_named_scenario("steady-0x3")

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_duration_override_accepted_by_every_family(self, name):
        scenario = build_named_scenario(name, duration=600.0)
        assert scenario.default_duration == 600.0

    def test_load_override(self):
        base = build_named_scenario("steady-3x3")
        heavy = build_named_scenario("steady-3x3", load=2.0)
        for road, schedule in base.demand.items():
            assert heavy.demand[road].rate_at(0.0) == pytest.approx(
                2.0 * schedule.rate_at(0.0)
            )


class TestRunSpecIntegration:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_roundtrip_through_runspec(self, name):
        spec = RunSpec(
            pattern=name, duration=60.0, scenario_params={"load": 1.1}
        )
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.spec_hash() == spec.spec_hash()
        assert rebuilt.make_scenario().name == name

    def test_unknown_scenario_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="unknown pattern/scenario"):
            RunSpec(pattern="warp-9x9x9")

    def test_spec_hash_distinguishes_scenarios(self):
        hashes = {
            RunSpec(pattern=name, duration=60.0).spec_hash()
            for name in ALL_SCENARIOS
        }
        assert len(hashes) == len(ALL_SCENARIOS)


class TestClosedLoopRuns:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_runs_50_steps_on_meso(self, name):
        result = run_scenario(
            build_named_scenario(name, seed=2),
            controller="util-bp",
            duration=50.0,
            engine="meso",
        )
        assert result.duration == 50.0
        assert result.summary.vehicles_entered > 0

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_runs_50_steps_on_micro(self, name):
        result = run_scenario(
            build_named_scenario(name, seed=2),
            controller="util-bp",
            duration=50.0,
            engine="micro",
        )
        assert result.duration == 50.0

    @pytest.mark.parametrize("name", ("surge-4x4", "incident-3x3"))
    def test_run_is_deterministic_for_fixed_seed(self, name):
        def run():
            return run_scenario(
                build_named_scenario(name, seed=9),
                controller="util-bp",
                duration=50.0,
                engine="meso",
            )

        assert run().to_dict() == run().to_dict()
